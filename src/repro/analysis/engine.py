"""Rule engine: parsed-file model, rule registry, and the analysis driver.

A :class:`Rule` sees the whole analyzed file set, so rules can be local
(walk one module's AST) or cross-file (match kernels in ``src/`` against
the tests that exercise them).  Findings carry a stable location and a
message; suppression happens either inline (``# lint: ignore[rule-id]``
on the offending line) or via the committed baseline
(:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # import cycle guard: graph imports this module
    from repro.analysis.graph.project import Project

__all__ = ["AnalysisError", "Finding", "ParsedFile", "Rule",
           "UnusedIgnoreRule", "all_rules", "analyze_paths",
           "collect_files", "iter_python_files", "register_rule",
           "resolve_rules", "rule_by_id", "run_rules"]

#: Directories never descended into when collecting files.  ``corpus``
#: keeps the deliberately-violating lint fixtures out of the default
#: scan; pass a corpus directory explicitly to analyze it.
_SKIPPED_DIRS = {"__pycache__", ".git", ".hypothesis", "results",
                 ".pytest_cache", "corpus"}

#: Inline suppression: ``# lint: ignore[units]`` or
#: ``# lint: ignore[units, determinism]`` on the finding's line.  A
#: leading backtick marks a doc-prose example (like the ones above),
#: not a live suppression.
_SUPPRESS_RE = re.compile(r"(?<!`)#\s*lint:\s*ignore\[([a-z\-,\s]+)\]")


class AnalysisError(RuntimeError):
    """Raised for unusable inputs (unreadable paths, syntax errors)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation.

    Attributes:
        path: file the violation lives in, as given to the analyzer
            (normalized to forward slashes, repo-relative when possible).
        line: 1-based line number.
        col: 0-based column offset.
        rule: id of the rule that fired.
        message: human-readable explanation with the offending construct.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of the text report."""
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class ParsedFile:
    """One analyzed module: source text, AST, and per-line suppressions."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    _suppressed: dict[int, set[str]] = field(default_factory=dict)
    #: (line, rule) pairs whose suppression actually blocked a finding
    #: during the current run — the evidence the ``unused-ignore`` pass
    #: subtracts from ``_suppressed``.
    _suppression_hits: set[tuple[int, str]] = field(default_factory=set)

    @classmethod
    def parse(cls, path: Path, display_path: str) -> "ParsedFile":
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            raise AnalysisError(f"cannot read {path}: {error}") from error
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            raise AnalysisError(
                f"syntax error in {display_path}:{error.lineno}: "
                f"{error.msg}") from error
        lines = source.splitlines()
        suppressed: dict[int, set[str]] = {}
        for number, text in enumerate(lines, start=1):
            rules: set[str] = set()
            for match in _SUPPRESS_RE.finditer(text):
                rules |= {part.strip()
                          for part in match.group(1).split(",")}
            if rules:
                suppressed[number] = {r for r in rules if r}
        return cls(path=path, display_path=display_path, source=source,
                   tree=tree, lines=lines, _suppressed=suppressed)

    def line_text(self, line: int) -> str:
        """The 1-based source line (empty string out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def is_suppressed(self, line: int, rule: str) -> bool:
        """True when the line carries ``# lint: ignore[<rule>]``.

        A positive answer is recorded as a suppression *hit*, which is
        what exempts the comment from the dead-suppression pass.
        """
        if rule in self._suppressed.get(line, ()):
            self._suppression_hits.add((line, rule))
            return True
        return False

    def suppressions(self) -> Iterator[tuple[int, str]]:
        """Every ``(line, rule)`` suppressed by an inline comment."""
        for line in sorted(self._suppressed):
            for rule in sorted(self._suppressed[line]):
                yield line, rule

    def segment(self, node: ast.AST) -> str:
        """Source text of a node ('' when unavailable)."""
        return ast.get_source_segment(self.source, node) or ""


class Rule:
    """Base class for analysis rules.

    Subclasses set :attr:`rule_id` / :attr:`description` and override
    :meth:`check`, yielding findings over the project context — a
    :class:`~repro.analysis.graph.project.Project` wrapping the parsed
    file set plus lazily built whole-program structure (symbol table,
    call graph, CFGs).  Local rules just iterate it like the old file
    list; cross-file rules reach for ``project.call_graph`` /
    ``project.cfg_of``.  Helper :meth:`finding` applies inline
    suppression automatically.
    """

    rule_id: str = ""
    description: str = ""

    def check(self, project: "Project") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, parsed: ParsedFile, node: ast.AST | None,
                message: str, line: int | None = None,
                col: int | None = None) -> Finding | None:
        """Build a finding unless the line suppresses this rule."""
        if line is None:
            line = getattr(node, "lineno", 1)
        if col is None:
            col = getattr(node, "col_offset", 0)
        if parsed.is_suppressed(line, self.rule_id):
            return None
        return Finding(path=parsed.display_path, line=line, col=col,
                       rule=self.rule_id, message=message)


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"{cls.__name__} must define rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, in stable id order."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_by_id(rule_id: str) -> Rule:
    """Look up one registered rule.

    Raises:
        KeyError: for unknown rule ids.
    """
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule {rule_id!r}; "
                       f"available: {sorted(_REGISTRY)}") from None


def iter_python_files(paths: Iterable[Path | str],
                      ) -> Iterator[tuple[Path, str]]:
    """Yield ``(path, display_path)`` for every ``.py`` under ``paths``.

    Files are yielded in sorted order for deterministic reports; display
    paths are relative to the common invocation directory when possible.

    Raises:
        AnalysisError: when a given path does not exist.
    """
    seen: set[Path] = set()
    for entry in paths:
        root = Path(entry)
        if not root.exists():
            raise AnalysisError(f"no such path: {root}")
        if root.is_file():
            candidates = [root]
        else:
            # Skip directories relative to the requested root, so an
            # explicitly named corpus directory is still analyzable.
            candidates = sorted(
                p for p in root.rglob("*.py")
                if not (_SKIPPED_DIRS & set(p.relative_to(root).parts[:-1])))
        for path in candidates:
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                display = str(path.relative_to(Path.cwd()))
            except ValueError:
                display = str(path)
            yield path, display.replace("\\", "/")


def collect_files(paths: Iterable[Path | str],
                  on_file: Callable[[str], None] | None = None,
                  ) -> list[ParsedFile]:
    """Parse every Python file under ``paths`` (deterministic order)."""
    files: list[ParsedFile] = []
    for path, display in iter_python_files(paths):
        if on_file is not None:
            on_file(display)
        files.append(ParsedFile.parse(path, display))
    return files


@register_rule
class UnusedIgnoreRule(Rule):
    """Dead inline suppressions: ignores that no longer ignore anything.

    Runs after every other selected rule, so a comment is *unused* only
    when no selected rule tried to fire on its line this run.  A
    suppression naming a rule that was not selected is left alone
    (nothing ran to vouch for it); one naming a rule that does not
    exist at all is always reported.
    """

    rule_id = "unused-ignore"
    description = ("inline '# lint: ignore[...]' comment that "
                   "suppresses no finding")

    def check(self, project: "Project") -> Iterator[Finding]:
        # Intentionally empty: the engine drives the dead-suppression
        # pass via check_suppressions once the other rules have run.
        return iter(())

    def check_suppressions(self, project: Sequence[ParsedFile],
                           ran: set[str]) -> Iterator[Finding]:
        for parsed in project:
            for line, rule_id in parsed.suppressions():
                if rule_id == self.rule_id:
                    # A directive to this pass itself, never dead.
                    continue
                if rule_id not in _REGISTRY:
                    finding = self.finding(
                        parsed, None,
                        f"suppression names unknown rule "
                        f"{rule_id!r}", line=line, col=0)
                    if finding is not None:
                        yield finding
                    continue
                if rule_id not in ran:
                    continue  # rule did not run; cannot judge
                if (line, rule_id) in parsed._suppression_hits:
                    continue
                finding = self.finding(
                    parsed, None,
                    f"'# lint: ignore[{rule_id}]' suppresses no "
                    f"{rule_id} finding on this line", line=line,
                    col=0)
                if finding is not None:
                    yield finding


def run_rules(files: "Sequence[ParsedFile] | Project",
              rules: Sequence[Rule | str] | None = None,
              ) -> list[Finding]:
    """Run rules over already-parsed files.

    Args:
        files: the parsed file set — a plain sequence or an existing
            :class:`~repro.analysis.graph.project.Project` (one is
            built on the fly otherwise, so every rule shares the same
            lazily constructed program graphs).
        rules: rule subset as instances or rule-id strings (default:
            every registered rule).  String ids resolve through
            :func:`rule_by_id`, so the CLI and the API share one
            validation path.

    Returns:
        All findings, sorted by (path, line, col, rule).

    Raises:
        KeyError: for unknown rule-id strings.
    """
    from repro.analysis.graph.project import Project

    project = files if isinstance(files, Project) else Project(files)
    resolved = resolve_rules(rules)
    for parsed in project:
        parsed._suppression_hits.clear()
    findings: list[Finding] = []
    dead_pass: UnusedIgnoreRule | None = None
    for rule in resolved:
        if isinstance(rule, UnusedIgnoreRule):
            dead_pass = rule
            continue
        findings.extend(f for f in rule.check(project) if f is not None)
    if dead_pass is not None:
        ran = {rule.rule_id for rule in resolved
               if not isinstance(rule, UnusedIgnoreRule)}
        findings.extend(dead_pass.check_suppressions(project, ran))
    return sorted(findings)


def resolve_rules(rules: Sequence[Rule | str] | None) -> list[Rule]:
    """Normalize a rule selection to instances.

    ``None`` selects every registered rule; strings resolve through
    :func:`rule_by_id` (raising KeyError with the known ids for typos).
    This is the single validation point shared by :func:`run_rules` and
    the ``analyze`` CLI.
    """
    if rules is None:
        return all_rules()
    return [rule_by_id(rule) if isinstance(rule, str) else rule
            for rule in rules]


def analyze_paths(paths: Iterable[Path | str],
                  rules: Sequence[Rule | str] | None = None,
                  on_file: Callable[[str], None] | None = None,
                  ) -> list[Finding]:
    """Run rules over every Python file under ``paths``.

    Args:
        paths: files or directories to analyze.
        rules: rule subset — instances or rule-id strings (default:
            every registered rule).
        on_file: optional progress hook called with each display path.

    Returns:
        All findings, sorted by (path, line, col, rule).
    """
    return run_rules(collect_files(paths, on_file=on_file), rules)
