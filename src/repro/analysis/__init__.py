"""repro.analysis — whole-program static analyzer for the reproduction.

The MINDFUL results are analytical: every figure is only as right as the
unit discipline (mW vs W against the 40 mW/cm^2 safety budget) and seed
discipline (byte-identical parallel runs) of the code computing it.  This
package moves those conventions from prose into tooling.  It began as a
per-file AST linter; the parallel engine's cross-process protocols
(shared-memory segment lifecycles, lock discipline, pipe-transfer
safety) made it whole-program: :mod:`repro.analysis.graph` builds a
cross-module symbol table, an import/call graph, and per-function CFGs
with a bounded path-sensitive dataflow solver, and rules receive that
:class:`~repro.analysis.graph.project.Project` context.

Entry point: ``python -m repro analyze`` (see :mod:`repro.cli`), which
supports text/JSON/SARIF reporters, a call-graph dump (``--graph
json|dot``), per-rule selection (``--rule``), and a committed baseline
file for grandfathered violations — new violations fail the run (and
CI, which uploads the SARIF to code scanning).

Rules shipped (see ``docs/STATIC_ANALYSIS.md`` for the catalog):

* ``units`` — bare power-of-ten factors in arithmetic and raw scientific
  literals bound to unit-suffixed names must use :mod:`repro.units`
  helpers.
* ``determinism`` — no legacy ``np.random.*`` / stdlib ``random``
  globals, no time-derived seeds, no internal ``default_rng()``
  construction outside ``repro.obs.manifest``.
* ``parity-oracle`` — every vectorized kernel with a ``*_reference`` /
  registered scalar oracle sibling needs a test exercising both.
* ``experiment-contract`` — every registered experiment driver declares
  its CSV schema and constructs a manifest-carrying result.
* ``export-hygiene`` — ``__all__`` consistent with public definitions;
  no mutable default arguments.
* ``driver-telemetry`` — registered drivers open spans and export
  metrics.
* ``resilience`` — no bare ``except:``; retry loops stay bounded.
* ``resource-lifecycle`` — path-sensitive acquire/release balance for
  shm segments, file handles, fcntl locks, and spans.
* ``pipe-transfer`` — only allowlisted primitive shapes enter worker
  dispatch payloads (checked interprocedurally from the submit sites).
* ``worker-shared-state`` — functions reachable from worker entry
  points never write module-level mutable globals.
* ``seed-taint`` — interprocedural wall-clock/entropy provenance must
  not reach ``ExperimentResult`` / ``seed=`` arguments.
* ``unused-ignore`` — inline suppressions that no longer suppress
  anything are themselves findings.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    baseline_entry,
    fingerprint,
    fingerprint_findings,
    load_baseline,
    save_baseline,
    split_by_baseline,
    stale_entries,
)
from repro.analysis.engine import (
    AnalysisError,
    Finding,
    Rule,
    all_rules,
    analyze_paths,
    collect_files,
    iter_python_files,
    register_rule,
    resolve_rules,
    rule_by_id,
    run_rules,
)
from repro.analysis.reporters import render_json, render_sarif, render_text

# Importing the rules package registers every built-in rule.
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "AnalysisError",
    "DEFAULT_BASELINE_PATH",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "baseline_entry",
    "collect_files",
    "fingerprint",
    "fingerprint_findings",
    "iter_python_files",
    "load_baseline",
    "register_rule",
    "render_json",
    "render_sarif",
    "render_text",
    "resolve_rules",
    "rule_by_id",
    "run_rules",
    "save_baseline",
    "split_by_baseline",
    "stale_entries",
]
