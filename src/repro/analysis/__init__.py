"""repro.analysis — AST-based invariant linter for the reproduction.

The MINDFUL results are analytical: every figure is only as right as the
unit discipline (mW vs W against the 40 mW/cm^2 safety budget) and seed
discipline (byte-identical parallel runs) of the code computing it.  This
package moves those conventions from prose into tooling: a pluggable rule
engine walks the ASTs of ``src/`` and ``tests/`` and reports invariant
violations with file:line findings.

Entry point: ``python -m repro analyze`` (see :mod:`repro.cli`), which
supports text and JSON reporters and a committed baseline file for
grandfathered violations — new violations fail the run (and CI).

Rules shipped (see ``docs/STATIC_ANALYSIS.md`` for the catalog):

* ``units`` — bare power-of-ten factors in arithmetic and raw scientific
  literals bound to unit-suffixed names must use :mod:`repro.units`
  helpers.
* ``determinism`` — no legacy ``np.random.*`` / stdlib ``random``
  globals, no time-derived seeds, no internal ``default_rng()``
  construction outside ``repro.obs.manifest``.
* ``parity-oracle`` — every vectorized kernel with a ``*_reference`` /
  registered scalar oracle sibling needs a test exercising both.
* ``experiment-contract`` — every registered experiment driver declares
  its CSV schema and constructs a manifest-carrying result.
* ``export-hygiene`` — ``__all__`` consistent with public definitions;
  no mutable default arguments.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    baseline_entry,
    fingerprint,
    fingerprint_findings,
    load_baseline,
    save_baseline,
    split_by_baseline,
)
from repro.analysis.engine import (
    AnalysisError,
    Finding,
    Rule,
    all_rules,
    analyze_paths,
    collect_files,
    iter_python_files,
    register_rule,
    rule_by_id,
    run_rules,
)
from repro.analysis.reporters import render_json, render_text

# Importing the rules package registers every built-in rule.
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "AnalysisError",
    "DEFAULT_BASELINE_PATH",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "baseline_entry",
    "collect_files",
    "fingerprint",
    "fingerprint_findings",
    "iter_python_files",
    "load_baseline",
    "register_rule",
    "render_json",
    "render_text",
    "rule_by_id",
    "run_rules",
    "save_baseline",
    "split_by_baseline",
]
