"""Per-function control-flow graphs for path-sensitive rules.

:func:`build_cfg` lowers one function body into basic blocks of
*items* — plain statements plus three markers (:class:`Test` for branch
conditions, :class:`WithEnter`/:class:`WithExit` around ``with``
bodies) — connected by directed edges.  The graph is deliberately
modest but honest about the control flow the lifecycle rules care
about:

* ``if``/``while``/``for`` branch and loop edges (including the
  zero-iteration path), ``break``/``continue``/``return``;
* ``try`` bodies get exception edges from every contained block to each
  handler entry (and to the ``finally`` entry), so a release that only
  happens on the fall-through path is visibly missing from the
  exceptional one;
* ``finally`` bodies are laid out once; their exit connects to the
  normal continuation and — when the ``try`` has no handlers — to the
  function exit, modeling exceptional pass-through.

Loops are *bounded* at analysis time by the path enumerator
(:mod:`repro.analysis.graph.dataflow`), not unrolled here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CFG", "Block", "Test", "WithEnter", "WithExit", "build_cfg"]


@dataclass(frozen=True)
class Test:
    """Marker item: a branch/loop condition evaluated in this block."""

    expr: ast.expr


@dataclass(frozen=True)
class WithEnter:
    """Marker item: the context expressions of a ``with`` were entered."""

    node: ast.AST


@dataclass(frozen=True)
class WithExit:
    """Marker item: the ``with`` body completed normally."""

    node: ast.AST


@dataclass
class Block:
    """One basic block: straight-line items plus successor edges."""

    id: int
    items: list[object] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)

    def link(self, other: int) -> None:
        if other not in self.succs:
            self.succs.append(other)


@dataclass
class CFG:
    """The control-flow graph of one function."""

    func: ast.AST
    blocks: list[Block]
    entry: int
    exit: int
    #: Blocks that start an ``except`` clause.  A path entering one of
    #: these arrived via an exception edge — rules use this to discount
    #: effects of the raising statement itself (an acquisition whose
    #: constructor raised never produced a resource).
    handler_entries: set[int] = field(default_factory=set)


class _Builder:
    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.blocks: list[Block] = []
        self.entry = self._new()
        self.exit = self._new()
        self.current: int | None = self.entry
        # (continue target, break target) per enclosing loop.
        self.loops: list[tuple[int, int]] = []
        # Exceptional targets (handler/finally entries) per open try.
        self.handlers: list[list[int]] = []
        # Every except-clause entry block (CFG.handler_entries).
        self.handler_entry_ids: set[int] = set()

    # -- plumbing ---------------------------------------------------------

    def _new(self) -> int:
        block = Block(id=len(self.blocks))
        self.blocks.append(block)
        return block.id

    def _append(self, item: object) -> None:
        if self.current is not None:
            self.blocks[self.current].items.append(item)

    def _link(self, src: int | None, dst: int) -> None:
        if src is not None:
            self.blocks[src].link(dst)

    def _goto(self, dst: int) -> None:
        """End the current block by falling through to ``dst``."""
        self._link(self.current, dst)
        self.current = None

    def _start(self, block: int) -> None:
        self.current = block

    # -- statement lowering ----------------------------------------------

    def build(self) -> CFG:
        self._visit_body(self.func.body)
        if self.current is not None:
            self._goto(self.exit)
        return CFG(func=self.func, blocks=self.blocks,
                   entry=self.entry, exit=self.exit,
                   handler_entries=self.handler_entry_ids)

    def _visit_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if self.current is None:
                # Dead code after return/raise/break: parked in an
                # unreachable block so items are still inspectable.
                self._start(self._new())
            self._visit(stmt)

    def _visit(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._visit_if(stmt)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._visit_loop(stmt)
        elif isinstance(stmt, ast.Try):
            self._visit_try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
        elif isinstance(stmt, ast.Return):
            self._append(stmt)
            self._goto(self.exit)
        elif isinstance(stmt, ast.Raise):
            self._append(stmt)
            for target in (self.handlers[-1] if self.handlers
                           else [self.exit]):
                self._link(self.current, target)
            self.current = None
        elif isinstance(stmt, ast.Break):
            self._append(stmt)
            if self.loops:
                self._goto(self.loops[-1][1])
            else:
                self._goto(self.exit)
        elif isinstance(stmt, ast.Continue):
            self._append(stmt)
            if self.loops:
                self._goto(self.loops[-1][0])
            else:
                self._goto(self.exit)
        else:
            # Nested defs are separate CFGs; everything else is a
            # straight-line item of the current block.
            self._append(stmt)

    def _visit_if(self, stmt: ast.If) -> None:
        self._append(Test(stmt.test))
        head = self.current
        join = self._new()
        then_entry = self._new()
        self._link(head, then_entry)
        self._start(then_entry)
        self._visit_body(stmt.body)
        if self.current is not None:
            self._goto(join)
        if stmt.orelse:
            else_entry = self._new()
            self._link(head, else_entry)
            self._start(else_entry)
            self._visit_body(stmt.orelse)
            if self.current is not None:
                self._goto(join)
        else:
            self._link(head, join)
        self._start(join)

    def _visit_loop(self, stmt: ast.stmt) -> None:
        header = self._new()
        after = self._new()
        self._goto(header)
        self._start(header)
        if isinstance(stmt, ast.While):
            self._append(Test(stmt.test))
            infinite = (isinstance(stmt.test, ast.Constant)
                        and bool(stmt.test.value))
        else:
            self._append(stmt)  # the For node carries target+iter
            infinite = False
        head = self.current
        if not infinite:
            self._link(head, after)  # zero-iteration / loop-done path
        body_entry = self._new()
        self._link(head, body_entry)
        self.loops.append((header, after))
        self._start(body_entry)
        self._visit_body(stmt.body)
        if self.current is not None:
            self._goto(header)
        self.loops.pop()
        if stmt.orelse:
            # else runs on normal loop exit; modeled as part of after.
            self._start(after)
            self._visit_body(stmt.orelse)
            return
        self._start(after)

    def _visit_with(self, stmt: ast.stmt) -> None:
        self._append(WithEnter(stmt))
        self._visit_body(stmt.body)
        if self.current is not None:
            self._append(WithExit(stmt))

    def _visit_try(self, stmt: ast.Try) -> None:
        has_finally = bool(stmt.finalbody)
        fin_entry = self._new() if has_finally else None
        handler_entries = [self._new() for _ in stmt.handlers]
        self.handler_entry_ids.update(handler_entries)
        exceptional = list(handler_entries)
        if fin_entry is not None and not handler_entries:
            exceptional = [fin_entry]
        after = self._new()

        first_body_block = len(self.blocks)
        self.handlers.append(exceptional)
        if self.current is None:
            self._start(self._new())
        body_head = self.current
        self._visit_body(stmt.body)
        body_exit = self.current
        self.handlers.pop()
        # Exception edges: any block laid out for the body (plus the
        # block the try opened in) may jump to each handler/finally.
        body_blocks = [body_head] + list(range(first_body_block,
                                               len(self.blocks)))
        for block in body_blocks:
            for target in exceptional:
                self._link(block, target)

        normal_exits: list[int] = []
        if stmt.orelse:
            if body_exit is not None:
                self._start(body_exit)
                self._visit_body(stmt.orelse)
                body_exit = self.current
        if body_exit is not None:
            normal_exits.append(body_exit)

        for handler, entry in zip(stmt.handlers, handler_entries):
            self._start(entry)
            self._append(handler)  # the except clause itself
            self._visit_body(handler.body)
            if self.current is not None:
                normal_exits.append(self.current)

        if fin_entry is not None:
            for src in normal_exits:
                self._link(src, fin_entry)
            self._start(fin_entry)
            self._visit_body(stmt.finalbody)
            fin_exit = self.current
            if fin_exit is not None:
                self._link(fin_exit, after)
                if not stmt.handlers:
                    # Exceptional pass-through: the exception continues
                    # to propagate after the finally body runs.
                    self._link(fin_exit, self.exit)
        else:
            for src in normal_exits:
                self._link(src, after)
        self._start(after)


def build_cfg(func: ast.AST) -> CFG:
    """The control-flow graph of one function/method definition."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise TypeError(f"build_cfg expects a function def, got "
                        f"{type(func).__name__}")
    return _Builder(func).build()
