"""The whole-program context handed to analysis rules.

A :class:`Project` wraps the parsed file set with lazily built
whole-program structure: the cross-module symbol table, the import/call
graph, and per-function CFGs (cached by definition node).  Rules receive
a Project instead of a bare file list — local rules iterate
``project.files`` exactly as before, cross-file rules reach for
``project.call_graph`` / ``project.cfg_of``.

Everything is built at most once per analysis run and shared across all
rules, which is what keeps the whole-program analyzer inside its CI
wall-clock budget (``benchmarks/test_bench_analysis.py``).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.analysis.engine import ParsedFile
from repro.analysis.graph.callgraph import CallGraph
from repro.analysis.graph.cfg import CFG, build_cfg
from repro.analysis.graph.symbols import ModuleSymbols, SymbolTable

__all__ = ["Project"]


class Project(Sequence):
    """One analyzed file set plus its lazily built program graphs."""

    def __init__(self, files: Sequence[ParsedFile]) -> None:
        self.files: list[ParsedFile] = list(files)
        self._table: SymbolTable | None = None
        self._call_graph: CallGraph | None = None
        self._cfgs: dict[int, CFG] = {}

    # Sequence protocol: a Project quacks like the file list, so
    # helpers written against ``Sequence[ParsedFile]`` keep working.
    def __len__(self) -> int:
        return len(self.files)

    def __getitem__(self, index):
        return self.files[index]

    def __iter__(self) -> Iterator[ParsedFile]:
        return iter(self.files)

    # -- whole-program structure ------------------------------------------

    @property
    def table(self) -> SymbolTable:
        """The cross-module symbol table (built on first use)."""
        if self._table is None:
            self._table = SymbolTable(self.files)
        return self._table

    @property
    def call_graph(self) -> CallGraph:
        """The project call graph (built on first use)."""
        if self._call_graph is None:
            self._call_graph = CallGraph(self.table)
        return self._call_graph

    def symbols_of(self, parsed: ParsedFile) -> ModuleSymbols:
        """The symbol table entry of one analyzed file."""
        return self.table.of(parsed)

    def cfg_of(self, func_node) -> CFG:
        """The (cached) control-flow graph of one function def."""
        cfg = self._cfgs.get(id(func_node))
        if cfg is None:
            cfg = build_cfg(func_node)
            self._cfgs[id(func_node)] = cfg
        return cfg
