"""repro.analysis.graph — whole-program structure for the analyzer.

The per-file AST linter of PR 3 could not see the cross-module
invariants PR 7 introduced (shared-memory segment lifecycles split
between worker and parent, lock discipline in the cache store, transfer
safety of worker dispatch payloads).  This subpackage is the substrate
that makes those checkable:

* :mod:`symbols` — cross-module symbol table (defs, classes, imports);
* :mod:`callgraph` — resolved import/call graph with reachability and
  shortest-call-chain queries;
* :mod:`cfg` — per-function control-flow graphs;
* :mod:`dataflow` — a bounded path-sensitive solver over CFGs;
* :mod:`project` — the :class:`~repro.analysis.graph.project.Project`
  context rules receive, building all of the above lazily and once.
"""

from repro.analysis.graph.callgraph import (
    CallGraph,
    FunctionInfo,
    dotted_parts,
    qualify,
)
from repro.analysis.graph.cfg import (
    CFG,
    Block,
    Test,
    WithEnter,
    WithExit,
    build_cfg,
)
from repro.analysis.graph.dataflow import (
    DEFAULT_MAX_PATHS,
    Path,
    PathSet,
    iter_paths,
    solve_paths,
)
from repro.analysis.graph.project import Project
from repro.analysis.graph.symbols import (
    ModuleSymbols,
    SymbolTable,
    module_name_for,
)

__all__ = [
    "CFG",
    "Block",
    "CallGraph",
    "DEFAULT_MAX_PATHS",
    "FunctionInfo",
    "ModuleSymbols",
    "Path",
    "PathSet",
    "Project",
    "SymbolTable",
    "Test",
    "WithEnter",
    "WithExit",
    "build_cfg",
    "dotted_parts",
    "iter_paths",
    "module_name_for",
    "qualify",
    "solve_paths",
]
