"""Cross-module symbol table for the whole-program analyzer.

One :class:`ModuleSymbols` per analyzed file records what the module
*defines* (top-level functions, classes with their methods, module-level
assignments) and what it *imports* (local alias -> dotted target).  The
table is purely syntactic — nothing is executed — and resolution is
name-based: ``repro.perf.shm`` resolves to the analyzed file whose path
ends in ``repro/perf/shm.py``, and a plain ``import helper`` inside a
fixture directory resolves to the sibling ``helper.py``.  Unresolvable
imports (numpy, stdlib) stay as dotted strings so rules can still match
on them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.engine import ParsedFile

__all__ = ["ModuleSymbols", "SymbolTable", "module_name_for"]


def module_name_for(path: Path) -> str:
    """Dotted module name inferred from a file path.

    Files under a ``repro`` package directory get their real dotted name
    (``.../src/repro/perf/shm.py`` -> ``repro.perf.shm``); anything else
    (tests, corpus fixtures) is addressed by its stem, which is how
    sibling fixtures import each other.
    """
    parts = list(path.parts)
    stem = path.stem
    prefix = parts[:-1]
    if "repro" in prefix:
        anchor = len(prefix) - 1 - prefix[::-1].index("repro")
        dotted = list(parts[anchor:-1])
        if stem != "__init__":
            dotted.append(stem)
        return ".".join(dotted) if dotted else stem
    return stem


@dataclass
class ModuleSymbols:
    """Everything one module defines and imports, by name."""

    module: str
    parsed: ParsedFile
    #: top-level and method callables: ``"f"`` / ``"Cls.m"`` -> def node.
    functions: dict[str, ast.AST] = field(default_factory=dict)
    #: top-level classes by name.
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    #: local alias -> dotted import target (``np`` -> ``numpy``,
    #: ``span`` -> ``repro.obs.trace.span``).
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level assigned names -> their (last) value node.
    module_globals: dict[str, ast.expr] = field(default_factory=dict)
    #: aliases bound by ``import x`` (the alias names a module object).
    module_aliases: set[str] = field(default_factory=set)

    def expand(self, dotted: tuple[str, ...]) -> str:
        """Canonical dotted form of a local attribute chain.

        Substitutes the import target for the leading name, so
        ``("shared_memory", "SharedMemory")`` under ``from
        multiprocessing import shared_memory`` expands to
        ``"multiprocessing.shared_memory.SharedMemory"`` regardless of
        import style.  Unimported leading names pass through unchanged.
        """
        if not dotted:
            return ""
        head = self.imports.get(dotted[0], dotted[0])
        return ".".join((head, *dotted[1:]))

    @classmethod
    def build(cls, parsed: ParsedFile) -> "ModuleSymbols":
        symbols = cls(module=module_name_for(parsed.path), parsed=parsed)
        for node in parsed.tree.body:
            symbols._index_top(node)
        return symbols

    def _index_top(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            self.classes[node.name] = node
            for member in node.body:
                if isinstance(member, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    self.functions[f"{node.name}.{member.name}"] = member
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    self.imports[alias.asname] = alias.name
                    self.module_aliases.add(alias.asname)
                else:
                    top = alias.name.split(".", 1)[0]
                    self.imports[top] = top
                    self.module_aliases.add(top)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:  # relative: anchor at this module's package
                package = self.module.rsplit(".", node.level)
                prefix = package[0] if len(package) > node.level else ""
                base = f"{prefix}.{base}".strip(".") if base else prefix
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                target = f"{base}.{alias.name}" if base else alias.name
                self.imports[local] = target
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.module_globals[target.id] = node.value
        elif isinstance(node, ast.AnnAssign):
            if (isinstance(node.target, ast.Name)
                    and node.value is not None):
                self.module_globals[node.target.id] = node.value
        elif isinstance(node, (ast.If, ast.Try)):
            for sub in node.body:
                self._index_top(sub)


class SymbolTable:
    """All modules of one analyzed file set, resolvable by name."""

    def __init__(self, files: list[ParsedFile]) -> None:
        self.modules: dict[str, ModuleSymbols] = {}
        self.by_parsed: dict[int, ModuleSymbols] = {}
        #: stem -> modules sharing it, for sibling-fixture resolution.
        self._by_stem: dict[str, list[ModuleSymbols]] = {}
        for parsed in files:
            symbols = ModuleSymbols.build(parsed)
            # Last writer wins on (pathological) duplicate names; scans
            # are sorted, so the choice is at least deterministic.
            self.modules[symbols.module] = symbols
            self.by_parsed[id(parsed)] = symbols
            self._by_stem.setdefault(parsed.path.stem,
                                     []).append(symbols)

    def of(self, parsed: ParsedFile) -> ModuleSymbols:
        """The symbols of one analyzed file."""
        return self.by_parsed[id(parsed)]

    def resolve_module(self, dotted: str,
                       importer: ModuleSymbols | None = None,
                       ) -> ModuleSymbols | None:
        """The analyzed module a dotted import target names, if any.

        A plain single-part target (``import helper``) additionally
        matches a same-directory sibling of the importer, which is how
        multi-file corpus fixtures reference each other.
        """
        found = self.modules.get(dotted)
        if found is not None:
            return found
        if importer is not None and "." not in dotted:
            parent = importer.parsed.path.parent
            for candidate in self._by_stem.get(dotted, []):
                if candidate.parsed.path.parent == parent:
                    return candidate
        return None

    def resolve_symbol(self, dotted: str,
                       importer: ModuleSymbols | None = None,
                       ) -> tuple[ModuleSymbols, str] | None:
        """Split a dotted target into (defining module, local name).

        ``repro.perf.shm.pack_payload`` -> (shm's symbols,
        ``"pack_payload"``) when that module is in the analyzed set and
        defines the name.
        """
        module = self.resolve_module(dotted, importer)
        if module is not None:
            return None  # names a module, not a symbol within one
        if "." not in dotted:
            return None
        prefix, _, name = dotted.rpartition(".")
        module = self.resolve_module(prefix, importer)
        if module is None:
            return None
        if (name in module.functions or name in module.classes
                or name in module.module_globals
                or name in module.imports):
            return module, name
        return None
