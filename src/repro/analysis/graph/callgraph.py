"""Import/call graph over the analyzed file set.

Nodes are functions and methods (qualified as ``module:func`` /
``module:Cls.method``); edges are syntactically resolvable calls:

* ``f(...)`` — a name defined in the same module, or imported via
  ``from m import f`` from an analyzed module;
* ``mod.f(...)`` — an attribute call through a module alias bound by
  ``import mod`` / ``from pkg import mod``;
* ``self.m(...)`` / ``cls.m(...)`` — a method of the enclosing class.

Anything else (duck-typed attribute calls, ``importlib`` indirection)
stays unresolved — the graph is an under-approximation, which is the
right polarity for reachability-based rules: they may miss, they do not
hallucinate edges.  :meth:`CallGraph.reachable_from` answers the
interprocedural questions the concurrency and taint rules ask.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.engine import ParsedFile
from repro.analysis.graph.symbols import ModuleSymbols, SymbolTable

__all__ = ["CallGraph", "FunctionInfo", "dotted_parts", "qualify"]


def dotted_parts(node: ast.expr) -> tuple[str, ...]:
    """``('np', 'random', 'seed')`` for an attribute chain, else ()."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def qualify(module: str, local: str) -> str:
    """The graph-wide id of one function (``module:local``)."""
    return f"{module}:{local}"


@dataclass
class FunctionInfo:
    """One call-graph node."""

    qname: str
    module: str
    local: str  # "run" or "WarmPool.submit"
    node: ast.AST
    parsed: ParsedFile
    #: resolved callee qnames, in first-call order (deduplicated).
    calls: list[str] = field(default_factory=list)


class CallGraph:
    """Functions and resolved call edges of one analyzed project."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.functions: dict[str, FunctionInfo] = {}
        self.callers: dict[str, list[str]] = {}
        for symbols in table.modules.values():
            for local, node in symbols.functions.items():
                qname = qualify(symbols.module, local)
                self.functions[qname] = FunctionInfo(
                    qname=qname, module=symbols.module, local=local,
                    node=node, parsed=symbols.parsed)
        for info in self.functions.values():
            self._link(info)

    # -- construction -----------------------------------------------------

    def _link(self, info: FunctionInfo) -> None:
        symbols = self._scope_symbols(info)
        seen: set[str] = set()
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            for target in self.resolve_call(node, symbols, info):
                if target not in seen:
                    seen.add(target)
                    info.calls.append(target)
                    self.callers.setdefault(target, []).append(
                        info.qname)

    def _scope_symbols(self, info: FunctionInfo) -> ModuleSymbols:
        """Module symbols extended with the function's own imports.

        Worker-side code imports lazily inside function bodies (the
        fork-safe idiom of :mod:`repro.perf.pool`); those aliases must
        resolve too or the whole worker subtree falls off the graph.
        """
        base = self.table.of(info.parsed)
        overlay: dict[str, str] = {}
        for node in ast.walk(info.node):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        overlay[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".", 1)[0]
                        overlay[top] = top
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                base_mod = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    overlay[local] = (f"{base_mod}.{alias.name}"
                                      if base_mod else alias.name)
        if not overlay:
            return base
        merged = ModuleSymbols(
            module=base.module, parsed=base.parsed,
            functions=base.functions, classes=base.classes,
            imports={**base.imports, **overlay},
            module_globals=base.module_globals,
            module_aliases=base.module_aliases)
        return merged

    def resolve_call(self, call: ast.Call, symbols: ModuleSymbols,
                     info: FunctionInfo | None = None) -> list[str]:
        """Qnames a call expression resolves to (possibly empty)."""
        return self.resolve_name(call.func, symbols, info)

    def resolve_name(self, func: ast.expr, symbols: ModuleSymbols,
                     info: FunctionInfo | None = None) -> list[str]:
        """Qnames a function-valued expression resolves to.

        Used both for call targets and for bare function references
        (``Process(target=_worker_main)``).
        """
        if isinstance(func, ast.Name):
            return self._resolve_bare(func.id, symbols)
        dotted = dotted_parts(func)
        if len(dotted) < 2:
            return []
        head, rest = dotted[0], dotted[1:]
        # self.m() / cls.m(): method on the enclosing class.
        if head in ("self", "cls") and info and "." in info.local:
            cls_name = info.local.split(".", 1)[0]
            local = f"{cls_name}.{'.'.join(rest)}"
            if local in symbols.functions:
                return [qualify(symbols.module, local)]
            return []
        # mod.f() / pkg.mod.f(): through a module alias.
        target = symbols.imports.get(head)
        if target is None:
            # Cls.m(): a class defined or imported in this module.
            if head in symbols.classes:
                local = f"{head}.{'.'.join(rest)}"
                if local in symbols.functions:
                    return [qualify(symbols.module, local)]
            return []
        dotted_target = ".".join((target, *rest))
        prefix, _, name = dotted_target.rpartition(".")
        module = self.table.resolve_module(prefix, symbols)
        if module is not None and name in module.functions:
            return [qualify(module.module, name)]
        # Cls.m through an imported class: from m import Cls; Cls.m().
        resolved = self.table.resolve_symbol(
            ".".join((target, rest[0])) if rest else target, symbols)
        if resolved is not None and len(rest) >= 2:
            module, cls_name = resolved
            local = f"{cls_name}.{'.'.join(rest[1:])}"
            if local in module.functions:
                return [qualify(module.module, local)]
        return []

    def _resolve_bare(self, name: str, symbols: ModuleSymbols,
                      ) -> list[str]:
        if name in symbols.functions:
            return [qualify(symbols.module, name)]
        if name in symbols.classes:  # constructor -> __init__ if defined
            local = f"{name}.__init__"
            if local in symbols.functions:
                return [qualify(symbols.module, local)]
            return []
        target = symbols.imports.get(name)
        if target is None:
            return []
        resolved = self.table.resolve_symbol(target, symbols)
        if resolved is None:
            return []
        module, local = resolved
        if local in module.functions:
            return [qualify(module.module, local)]
        if local in module.classes:
            init = f"{local}.__init__"
            if init in module.functions:
                return [qualify(module.module, init)]
        return []

    # -- queries ----------------------------------------------------------

    def reachable_from(self, seeds: list[str]) -> set[str]:
        """Every function reachable from the seed qnames (inclusive)."""
        seen = set()
        frontier = [q for q in seeds if q in self.functions]
        while frontier:
            qname = frontier.pop()
            if qname in seen:
                continue
            seen.add(qname)
            frontier.extend(self.functions[qname].calls)
        return seen

    def call_chain(self, start: str, goal: str) -> list[str] | None:
        """A shortest start->goal call path (qnames), or None."""
        if start not in self.functions:
            return None
        parents: dict[str, str] = {start: start}
        frontier = [start]
        while frontier:
            nxt: list[str] = []
            for qname in frontier:
                for callee in self.functions[qname].calls:
                    if callee in parents:
                        continue
                    parents[callee] = qname
                    if callee == goal:
                        chain = [callee]
                        while chain[-1] != start:
                            chain.append(parents[chain[-1]])
                        return list(reversed(chain))
                    nxt.append(callee)
            frontier = nxt
        return None

    def to_json(self) -> dict[str, object]:
        """JSON-able dump (``analyze --graph json``)."""
        nodes = []
        for qname in sorted(self.functions):
            info = self.functions[qname]
            nodes.append({
                "qname": qname,
                "module": info.module,
                "name": info.local,
                "path": info.parsed.display_path,
                "line": getattr(info.node, "lineno", 1),
                "calls": sorted(info.calls),
            })
        edges = [[q, callee]
                 for q in sorted(self.functions)
                 for callee in sorted(self.functions[q].calls)]
        return {"n_functions": len(nodes), "n_edges": len(edges),
                "functions": nodes, "edges": edges}

    def to_dot(self) -> str:
        """Graphviz dump (``analyze --graph dot``)."""
        lines = ["digraph callgraph {", "  rankdir=LR;",
                 "  node [shape=box, fontsize=10];"]
        for qname in sorted(self.functions):
            lines.append(f'  "{qname}";')
        for qname in sorted(self.functions):
            for callee in sorted(self.functions[qname].calls):
                lines.append(f'  "{qname}" -> "{callee}";')
        lines.append("}")
        return "\n".join(lines) + "\n"
