"""A small path-sensitive dataflow solver over function CFGs.

:func:`iter_paths` enumerates control-flow paths (entry -> exit) with
loops bounded to one traversal per path and a global path cap, so
analysis cost stays linear in practice.  :func:`solve_paths` folds a
rule-supplied transfer function over each path's items and yields the
terminal state together with the path — the path-sensitive primitive
the resource-lifecycle rule is built on: a resource is leak-free only
when *every* enumerated path ends with it released.

When a function's branching exceeds the path cap the solver degrades
gracefully: it reports the truncated path set and sets
``PathSet.truncated`` so rules can choose to stay silent rather than
guess (a linter must not hallucinate findings on code it could not
fully enumerate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.analysis.graph.cfg import CFG

__all__ = ["DEFAULT_MAX_PATHS", "Path", "PathSet", "iter_paths",
           "solve_paths"]

#: Global bound on enumerated paths per function.
DEFAULT_MAX_PATHS = 512

#: Times one block may repeat within a single path (loop bound).
_MAX_VISITS = 2


@dataclass
class Path:
    """One control-flow path: the block ids visited, entry to exit."""

    blocks: list[int]

    def items(self, cfg: CFG) -> Iterator[object]:
        for block_id in self.blocks:
            yield from cfg.blocks[block_id].items


@dataclass
class PathSet:
    """The enumerated paths of one function."""

    paths: list[Path]
    truncated: bool


def iter_paths(cfg: CFG,
               max_paths: int = DEFAULT_MAX_PATHS) -> PathSet:
    """Bounded depth-first enumeration of entry->exit paths."""
    paths: list[Path] = []
    truncated = False
    # Explicit stack of (block, path-so-far, visit counts).
    stack: list[tuple[int, list[int], dict[int, int]]] = [
        (cfg.entry, [], {})]
    while stack:
        block_id, prefix, counts = stack.pop()
        seen = counts.get(block_id, 0)
        if seen >= _MAX_VISITS:
            continue
        path = prefix + [block_id]
        if block_id == cfg.exit:
            paths.append(Path(blocks=path))
            if len(paths) >= max_paths:
                truncated = bool(stack)
                break
            continue
        succs = cfg.blocks[block_id].succs
        if not succs:
            # Dangling block (dead code or unterminated region): the
            # path ends here without reaching exit; keep it so rules
            # still see straight-line effects.
            paths.append(Path(blocks=path))
            if len(paths) >= max_paths:
                truncated = bool(stack)
                break
            continue
        nxt = dict(counts)
        nxt[block_id] = seen + 1
        # Reversed so the natural first successor is explored first.
        for succ in reversed(succs):
            stack.append((succ, path, nxt))
    return PathSet(paths=paths, truncated=truncated)


def solve_paths(cfg: CFG,
                transfer: Callable[[Any, object], Any],
                initial: Callable[[], Any],
                max_paths: int = DEFAULT_MAX_PATHS,
                ) -> tuple[list[tuple[Any, Path]], bool]:
    """Run a transfer function over every enumerated path.

    Args:
        cfg: the function graph (:func:`build_cfg`).
        transfer: ``(state, item) -> state``; items are statements or
            the CFG marker objects (Test/WithEnter/WithExit).
        initial: factory for a fresh per-path starting state.
        max_paths: enumeration bound.

    Returns:
        ``(results, truncated)`` where results pairs each path's final
        state with the path itself.
    """
    path_set = iter_paths(cfg, max_paths=max_paths)
    results = []
    for path in path_set.paths:
        state = initial()
        for item in path.items(cfg):
            state = transfer(state, item)
        results.append((state, path))
    return results, path_set.truncated
