"""Parametric decoding datasets for the example applications.

Two dataset families mirror the paper's motivating workloads:

* **Cursor kinematics** (Section 2, "online applications"): a 2-D latent
  cursor velocity drives cosine-tuned channel activity; the decoding task is
  to reconstruct velocity.  This is the classic workload for the Kalman
  filter baseline (Wu et al., NeurIPS 2002).
* **Speech spectrogram** (Berezutskaya et al.): latent articulatory states
  drive high-gamma band power across an ECoG grid; the decoding task is a
  40-bin log-mel-like spectral target, matching the 40-label output of the
  paper's MLP and DN-CNN workloads.

Both are generated, not recorded — see DESIGN.md substitution 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.signals.lfp import pink_noise

#: Output dimensionality of the speech workload (paper Section 5.3: "The
#: output of both networks consists of 40 labels").
SPEECH_OUTPUT_BINS = 40


@dataclass(frozen=True)
class CursorDataset:
    """Neural features paired with latent 2-D cursor kinematics.

    Attributes:
        features: (n_timesteps, n_channels) smoothed channel activity.
        velocity: (n_timesteps, 2) latent cursor velocity.
        position: (n_timesteps, 2) integrated cursor position.
        dt_s: timestep in seconds.
    """

    features: np.ndarray
    velocity: np.ndarray
    position: np.ndarray
    dt_s: float


@dataclass(frozen=True)
class SpeechDataset:
    """Windowed neural features paired with 40-bin spectral targets.

    Attributes:
        features: (n_frames, n_channels * window) flattened input windows.
        targets: (n_frames, SPEECH_OUTPUT_BINS) spectral envelopes.
        n_channels: channels per frame.
        window: samples per channel per frame.
    """

    features: np.ndarray
    targets: np.ndarray
    n_channels: int
    window: int


def make_cursor_dataset(n_channels: int,
                        n_timesteps: int,
                        rng: np.random.Generator,
                        dt_s: float = 0.02,
                        noise_rms: float = 0.3) -> CursorDataset:
    """Generate a cosine-tuned cursor-control dataset.

    Each channel has a preferred direction; its activity is a rectified
    cosine tuning of the latent velocity plus noise, temporally smoothed to
    mimic binned firing rates.
    """
    _check_positive(n_channels=n_channels, n_timesteps=n_timesteps)
    # Smooth random-walk velocity with spring-back so it stays bounded.
    velocity = np.zeros((n_timesteps, 2))
    for t in range(1, n_timesteps):
        velocity[t] = (0.95 * velocity[t - 1]
                       + 0.3 * rng.standard_normal(2))
    position = np.cumsum(velocity * dt_s, axis=0)

    angles = rng.uniform(0, 2 * np.pi, size=n_channels)
    preferred = np.stack([np.cos(angles), np.sin(angles)], axis=1)
    baselines = rng.uniform(0.2, 1.0, size=n_channels)
    gains = rng.uniform(0.5, 2.0, size=n_channels)

    drive = velocity @ preferred.T  # (T, C)
    rates = np.maximum(baselines + gains * drive, 0.0)
    features = rates + noise_rms * rng.standard_normal(rates.shape)
    # Exponential smoothing ~ 3-bin window, like binned spike counts.
    for t in range(1, n_timesteps):
        features[t] = 0.6 * features[t] + 0.4 * features[t - 1]
    return CursorDataset(features=features, velocity=velocity,
                         position=position, dt_s=dt_s)


def make_speech_dataset(n_channels: int,
                        n_frames: int,
                        rng: np.random.Generator,
                        window: int = 4,
                        n_latents: int = 8,
                        noise_rms: float = 0.25) -> SpeechDataset:
    """Generate a speech-synthesis-like dataset.

    A small set of slowly varying latent articulatory states linearly drives
    both the neural features and the 40-bin spectral targets, so the mapping
    is learnable by the MLP / DN-CNN substrates but not trivial (channel
    mixing plus nonlinearity plus noise).
    """
    _check_positive(n_channels=n_channels, n_frames=n_frames, window=window,
                    n_latents=n_latents)
    latents = np.empty((n_frames, n_latents))
    for k in range(n_latents):
        latents[:, k] = pink_noise(n_frames, rng)

    neural_mix = rng.standard_normal((n_latents, n_channels * window))
    neural_mix /= np.sqrt(n_latents)
    features = np.tanh(latents @ neural_mix)
    features = features + noise_rms * rng.standard_normal(features.shape)

    target_mix = rng.standard_normal((n_latents, SPEECH_OUTPUT_BINS))
    target_mix /= np.sqrt(n_latents)
    targets = np.tanh(latents @ target_mix)
    return SpeechDataset(features=features, targets=targets,
                         n_channels=n_channels, window=window)


def _check_positive(**values: int) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")
