"""Spectral feature extraction for ECoG decoding.

The speech-decoding workloads the paper evaluates consume *band-power*
features, not raw samples: Welch power spectral density per channel,
band-power integration (the high-gamma band carries most articulatory
information), and a sliding-window envelope extractor that produces the
frame stream a decoder ingests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sp_signal

#: The canonical ECoG analysis bands [Hz].
CANONICAL_BANDS: dict[str, tuple[float, float]] = {
    "delta": (1.0, 4.0),
    "theta": (4.0, 8.0),
    "alpha": (8.0, 13.0),
    "beta": (13.0, 30.0),
    "gamma": (30.0, 70.0),
    "high_gamma": (70.0, 170.0),
}


def welch_psd(data: np.ndarray, sampling_rate_hz: float,
              segment_s: float = 0.25) -> tuple[np.ndarray, np.ndarray]:
    """Welch PSD along the last axis.

    Args:
        data: (..., n_samples) waveforms.
        sampling_rate_hz: sampling rate.
        segment_s: Welch segment length in seconds.

    Returns:
        (frequencies, psd) with psd shaped (..., n_freqs).

    Raises:
        ValueError: if the segment is longer than the data.
    """
    data = np.asarray(data, dtype=float)
    nperseg = int(round(segment_s * sampling_rate_hz))
    if nperseg < 8:
        raise ValueError("segment too short for a meaningful PSD")
    if data.shape[-1] < nperseg:
        raise ValueError("data shorter than one Welch segment")
    freqs, psd = sp_signal.welch(data, fs=sampling_rate_hz,
                                 nperseg=nperseg, axis=-1)
    return freqs, psd


def band_power(data: np.ndarray, sampling_rate_hz: float,
               low_hz: float, high_hz: float,
               segment_s: float = 0.25) -> np.ndarray:
    """Integrated PSD power within a band, per channel.

    Raises:
        ValueError: for an empty band or band above Nyquist.
    """
    if not 0.0 <= low_hz < high_hz:
        raise ValueError("need 0 <= low < high")
    if high_hz > sampling_rate_hz / 2.0:
        raise ValueError("band extends beyond Nyquist")
    freqs, psd = welch_psd(data, sampling_rate_hz, segment_s)
    mask = (freqs >= low_hz) & (freqs <= high_hz)
    if not np.any(mask):
        raise ValueError("no PSD bins inside the requested band")
    return np.trapezoid(psd[..., mask], freqs[mask], axis=-1)


def band_power_features(data: np.ndarray, sampling_rate_hz: float,
                        bands: dict[str, tuple[float, float]] | None = None,
                        segment_s: float = 0.25) -> np.ndarray:
    """Stacked per-band powers: (n_channels, n_bands).

    Bands beyond Nyquist are skipped (low-rate NIs cannot carry
    high-gamma), so the feature width adapts to the interface.
    """
    data = np.atleast_2d(np.asarray(data, dtype=float))
    bands = bands or CANONICAL_BANDS
    nyquist = sampling_rate_hz / 2.0
    columns = []
    for low, high in bands.values():
        if high > nyquist:
            continue
        columns.append(band_power(data, sampling_rate_hz, low, high,
                                  segment_s))
    if not columns:
        raise ValueError("no band fits below Nyquist")
    return np.stack(columns, axis=-1)


@dataclass(frozen=True)
class EnvelopeExtractor:
    """Sliding-window band-power envelope (the decoder's frame stream).

    Attributes:
        band_hz: analysis band (defaults to high gamma).
        frame_s: frame hop / window size.
    """

    band_hz: tuple[float, float] = CANONICAL_BANDS["high_gamma"]
    frame_s: float = 0.05

    def __post_init__(self) -> None:
        if self.frame_s <= 0:
            raise ValueError("frame length must be positive")
        low, high = self.band_hz
        if not 0.0 <= low < high:
            raise ValueError("invalid analysis band")

    def frames(self, data: np.ndarray,
               sampling_rate_hz: float) -> np.ndarray:
        """Envelope frames of shape (n_frames, n_channels).

        Band-pass -> rectify -> per-frame mean; the standard high-gamma
        envelope pipeline.

        Raises:
            ValueError: when the band exceeds Nyquist or the recording is
                shorter than one frame.
        """
        from repro.signals.filters import bandpass
        data = np.atleast_2d(np.asarray(data, dtype=float))
        low, high = self.band_hz
        nyquist = sampling_rate_hz / 2.0
        high = min(high, 0.95 * nyquist)
        if low >= high:
            raise ValueError("analysis band collapses below Nyquist")
        filtered = bandpass(data, low, high, sampling_rate_hz)
        rectified = np.abs(filtered)
        frame_len = int(round(self.frame_s * sampling_rate_hz))
        if frame_len < 1 or data.shape[-1] < frame_len:
            raise ValueError("recording shorter than one frame")
        n_frames = data.shape[-1] // frame_len
        trimmed = rectified[:, :n_frames * frame_len]
        framed = trimmed.reshape(data.shape[0], n_frames, frame_len)
        return framed.mean(axis=-1).T
