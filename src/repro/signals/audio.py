"""Audio synthesis from decoded spectral envelopes.

The final stage of the paper's speech workload: "The output of both
networks consists of 40 labels, each corresponding to a speech frequency
that can be used to generate audio."  This module is that vocoder — a
sinusoidal bank with one oscillator per decoded frequency bin, amplitude-
modulated by the frame stream, with phase continuity across frames so the
output is click-free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def mel_like_frequencies(n_bins: int = 40,
                         low_hz: float = 100.0,
                         high_hz: float = 6000.0) -> np.ndarray:
    """Log-spaced synthesis frequencies for the 40 output labels."""
    if n_bins < 1:
        raise ValueError("need at least one bin")
    if not 0.0 < low_hz < high_hz:
        raise ValueError("need 0 < low < high")
    return np.geomspace(low_hz, high_hz, n_bins)


@dataclass(frozen=True)
class SinusoidalVocoder:
    """Bank-of-oscillators vocoder.

    Attributes:
        frequencies_hz: per-bin oscillator frequencies.
        sampling_rate_hz: output audio rate.
        frame_rate_hz: decoded-frame rate.
    """

    frequencies_hz: np.ndarray
    sampling_rate_hz: float = 16_000.0
    frame_rate_hz: float = 100.0

    def __post_init__(self) -> None:
        freqs = np.asarray(self.frequencies_hz, dtype=float)
        if freqs.ndim != 1 or freqs.size == 0:
            raise ValueError("frequencies must be a non-empty vector")
        if np.any(freqs <= 0):
            raise ValueError("frequencies must be positive")
        if np.any(freqs >= self.sampling_rate_hz / 2.0):
            raise ValueError("frequencies must stay below Nyquist")
        if self.frame_rate_hz <= 0:
            raise ValueError("frame rate must be positive")
        object.__setattr__(self, "frequencies_hz", freqs)

    @property
    def samples_per_frame(self) -> int:
        """Audio samples rendered per decoded frame."""
        return int(round(self.sampling_rate_hz / self.frame_rate_hz))

    def synthesize(self, frames: np.ndarray) -> np.ndarray:
        """Render a frame stream to audio.

        Args:
            frames: (n_frames, n_bins) non-negative per-bin amplitudes
                (decoder outputs are clipped at zero).

        Returns:
            1-D waveform of length n_frames * samples_per_frame,
            normalized to peak 1.0 (silent input stays silent).
        """
        frames = np.asarray(frames, dtype=float)
        if frames.ndim != 2 or frames.shape[1] != self.frequencies_hz.size:
            raise ValueError(
                f"frames must be (n_frames, {self.frequencies_hz.size})")
        amplitudes = np.maximum(frames, 0.0)
        hop = self.samples_per_frame
        n_samples = frames.shape[0] * hop
        t = np.arange(n_samples) / self.sampling_rate_hz
        # Smooth per-sample amplitude tracks: linear ramp between frames.
        frame_positions = (np.arange(frames.shape[0]) + 0.5) * hop
        sample_positions = np.arange(n_samples)
        audio = np.zeros(n_samples)
        for bin_idx, freq in enumerate(self.frequencies_hz):
            envelope = np.interp(sample_positions, frame_positions,
                                 amplitudes[:, bin_idx])
            audio += envelope * np.sin(2 * np.pi * freq * t)
        peak = np.max(np.abs(audio))
        if peak > 0:
            audio = audio / peak
        return audio

    def analyze(self, audio: np.ndarray) -> np.ndarray:
        """Rough inverse: per-frame band amplitudes via Goertzel-style
        correlation — used by tests to confirm synthesis round trips."""
        audio = np.asarray(audio, dtype=float)
        hop = self.samples_per_frame
        n_frames = audio.size // hop
        frames = np.zeros((n_frames, self.frequencies_hz.size))
        t = np.arange(hop) / self.sampling_rate_hz
        for frame in range(n_frames):
            chunk = audio[frame * hop:(frame + 1) * hop]
            for bin_idx, freq in enumerate(self.frequencies_hz):
                i_corr = np.mean(chunk * np.cos(2 * np.pi * freq * t))
                q_corr = np.mean(chunk * np.sin(2 * np.pi * freq * t))
                frames[frame, bin_idx] = 2 * np.hypot(i_corr, q_corr)
        return frames
