"""Field-potential synthesis: 1/f background plus band-limited oscillations.

ECoG and LFP recordings are dominated by a power-law ("pink") background with
superimposed oscillatory bands (theta, alpha, beta, gamma...).  The MINDFUL
workloads decode from exactly this kind of signal, so the synthetic ECoG here
gives the examples and decoder substrate realistic inputs without in-vivo
data (DESIGN.md substitution 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class OscillatoryBand:
    """A narrow-band oscillation mixed into the synthetic field potential.

    Attributes:
        center_hz: center frequency of the band.
        bandwidth_hz: 3 dB width; the oscillation's instantaneous frequency
            wanders within roughly this band.
        amplitude: RMS amplitude relative to unit-RMS pink background.
    """

    center_hz: float
    bandwidth_hz: float
    amplitude: float

    def __post_init__(self) -> None:
        if self.center_hz <= 0 or self.bandwidth_hz <= 0:
            raise ValueError("band frequencies must be positive")
        if self.amplitude < 0:
            raise ValueError("band amplitude must be non-negative")


#: A standard cortical band mix used by the dataset builders.
DEFAULT_BANDS = (
    OscillatoryBand(center_hz=10.0, bandwidth_hz=4.0, amplitude=0.8),
    OscillatoryBand(center_hz=22.0, bandwidth_hz=8.0, amplitude=0.5),
    OscillatoryBand(center_hz=75.0, bandwidth_hz=40.0, amplitude=0.35),
)


def pink_noise(n_samples: int, rng: np.random.Generator,
               exponent: float = 1.0) -> np.ndarray:
    """Generate 1/f^exponent noise with unit RMS via spectral shaping.

    Args:
        n_samples: output length.
        rng: random generator.
        exponent: spectral slope; 0 gives white noise, 1 pink, 2 brown.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    white = rng.standard_normal(n_samples)
    spectrum = np.fft.rfft(white)
    freqs = np.fft.rfftfreq(n_samples)
    # Avoid dividing by zero at DC; pin DC gain to the first non-zero bin.
    scale = np.ones_like(freqs)
    nonzero = freqs > 0
    scale[nonzero] = freqs[nonzero] ** (-exponent / 2.0)
    if n_samples > 1:
        scale[0] = scale[1]
    shaped = np.fft.irfft(spectrum * scale, n=n_samples)
    rms = np.sqrt(np.mean(shaped ** 2))
    if rms == 0:
        return shaped
    return shaped / rms


def _band_oscillation(band: OscillatoryBand, n_samples: int,
                      sampling_rate_hz: float,
                      rng: np.random.Generator) -> np.ndarray:
    """One band-limited oscillation with randomly wandering phase."""
    t = np.arange(n_samples) / sampling_rate_hz
    # Random-walk frequency modulation bounded by the bandwidth.
    fm = np.cumsum(rng.standard_normal(n_samples))
    fm = fm / (np.max(np.abs(fm)) + 1e-12) * band.bandwidth_hz / 2.0
    phase = 2 * np.pi * np.cumsum(band.center_hz + fm) / sampling_rate_hz
    envelope = 1.0 + 0.3 * pink_noise(n_samples, rng, exponent=1.0)
    osc = envelope * np.sin(phase + rng.uniform(0, 2 * np.pi))
    rms = np.sqrt(np.mean(osc ** 2))
    del t
    return band.amplitude * osc / (rms + 1e-12)


def synthesize_ecog(n_channels: int,
                    duration_s: float,
                    sampling_rate_hz: float,
                    rng: np.random.Generator,
                    bands: tuple[OscillatoryBand, ...] = DEFAULT_BANDS,
                    spatial_correlation: float = 0.5,
                    noise_rms: float = 0.2) -> np.ndarray:
    """Synthesize a multi-channel ECoG-like array.

    Each channel is a mixture of shared (spatially correlated) activity and
    channel-private activity, matching the redundancy across neighbouring
    electrodes that motivates the paper's channel-dropout optimization
    (Section 6.2).

    Args:
        n_channels: number of electrodes.
        duration_s: recording length in seconds.
        sampling_rate_hz: NI sampling rate.
        rng: random generator.
        bands: oscillatory bands to mix in.
        spatial_correlation: in [0, 1]; fraction of each channel's variance
            drawn from the shared source.
        noise_rms: RMS of additive white sensor noise.

    Returns:
        Array of shape (n_channels, n_samples).
    """
    if n_channels <= 0:
        raise ValueError("n_channels must be positive")
    if not 0.0 <= spatial_correlation <= 1.0:
        raise ValueError("spatial_correlation must be within [0, 1]")
    n_samples = int(round(duration_s * sampling_rate_hz))
    if n_samples <= 0:
        raise ValueError("duration too short for the sampling rate")

    shared = pink_noise(n_samples, rng)
    for band in bands:
        shared = shared + _band_oscillation(band, n_samples,
                                            sampling_rate_hz, rng)
    shared /= np.sqrt(np.mean(shared ** 2)) + 1e-12

    data = np.empty((n_channels, n_samples))
    w_shared = np.sqrt(spatial_correlation)
    w_private = np.sqrt(1.0 - spatial_correlation)
    for ch in range(n_channels):
        private = pink_noise(n_samples, rng)
        data[ch] = (w_shared * shared + w_private * private
                    + noise_rms * rng.standard_normal(n_samples))
    return data
