"""Spiking-unit models: Poisson trains and extracellular waveform templates.

Single units are the atoms of invasive neural recordings.  We model a unit as
a (possibly inhomogeneous) Poisson process with an absolute refractory
period, and render its extracellular footprint by convolving the spike train
with a stereotyped action-potential template.  The templates here are the
standard parametric shapes used in spike-sorting literature (biphasic
difference-of-exponentials), which is all the template-matching substrate in
:mod:`repro.decoders.spikesort` needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def exponential_spike_template(sampling_rate_hz: float,
                               duration_s: float = 2e-3,
                               decay_s: float = 4e-4,
                               amplitude: float = 1.0) -> np.ndarray:
    """A simple monophasic spike template: instant rise, exponential decay.

    Args:
        sampling_rate_hz: waveform sampling rate.
        duration_s: total template duration.
        decay_s: exponential decay time constant.
        amplitude: peak (absolute) amplitude; the template is negative-going,
            as extracellular spikes are.

    Returns:
        1-D array of length ``round(duration_s * sampling_rate_hz)``.
    """
    _validate_rate(sampling_rate_hz)
    n = max(1, int(round(duration_s * sampling_rate_hz)))
    t = np.arange(n) / sampling_rate_hz
    return -amplitude * np.exp(-t / decay_s)


def biphasic_spike_template(sampling_rate_hz: float,
                            duration_s: float = 2e-3,
                            depolarization_s: float = 2e-4,
                            repolarization_s: float = 6e-4,
                            amplitude: float = 1.0) -> np.ndarray:
    """Biphasic extracellular spike: sharp trough, slow positive hump.

    The shape is a difference of two exponential-rise/decay lobes, normalized
    so the trough magnitude equals ``amplitude``.
    """
    _validate_rate(sampling_rate_hz)
    n = max(2, int(round(duration_s * sampling_rate_hz)))
    t = np.arange(n) / sampling_rate_hz
    trough = -np.exp(
        -0.5 * ((t - 2 * depolarization_s) / depolarization_s) ** 2)
    hump = 0.35 * np.exp(
        -0.5 * ((t - 2 * depolarization_s - 2 * repolarization_s)
                / repolarization_s) ** 2)
    shape = trough + hump
    peak = np.max(np.abs(shape))
    return amplitude * shape / peak


def poisson_spike_train(rate_hz: float | np.ndarray,
                        duration_s: float,
                        sampling_rate_hz: float,
                        rng: np.random.Generator,
                        refractory_s: float = 1e-3) -> np.ndarray:
    """Sample a binary spike train from a (possibly time-varying) Poisson rate.

    Args:
        rate_hz: scalar rate, or an array of instantaneous rates with one
            entry per output sample.
        duration_s: train duration (ignored if ``rate_hz`` is an array, whose
            length then defines the duration).
        sampling_rate_hz: resolution of the output binary train.
        rng: NumPy random generator (callers own the seed).
        refractory_s: absolute refractory period; spikes closer than this to
            the previous spike are suppressed.

    Returns:
        Binary (0/1) array with one entry per sample.
    """
    _validate_rate(sampling_rate_hz)
    if np.isscalar(rate_hz):
        n = int(round(duration_s * sampling_rate_hz))
        rates = np.full(n, float(rate_hz))
    else:
        rates = np.asarray(rate_hz, dtype=float)
        n = rates.size
    if np.any(rates < 0):
        raise ValueError("firing rates must be non-negative")
    p = np.clip(rates / sampling_rate_hz, 0.0, 1.0)
    train = (rng.random(n) < p).astype(np.int8)
    refractory_samples = int(round(refractory_s * sampling_rate_hz))
    if refractory_samples > 0:
        last_spike = -refractory_samples - 1
        spike_idx = np.flatnonzero(train)
        for idx in spike_idx:
            if idx - last_spike <= refractory_samples:
                train[idx] = 0
            else:
                last_spike = idx
    return train


@dataclass
class SpikeUnit:
    """A single spiking unit observed by one or more channels.

    Attributes:
        rate_hz: mean firing rate.
        amplitude: spike amplitude at its best channel (arbitrary units,
            typically interpreted as uV after front-end gain normalization).
        template: waveform rendered for each spike.
        channel_weights: per-channel attenuation of the template (1.0 at the
            closest channel, decaying with distance).  Empty mapping means
            the unit is rendered on whichever single channel the caller
            chooses.
    """

    rate_hz: float
    amplitude: float = 1.0
    template: np.ndarray | None = None
    channel_weights: dict[int, float] = field(default_factory=dict)

    def spike_times(self, duration_s: float, sampling_rate_hz: float,
                    rng: np.random.Generator) -> np.ndarray:
        """Sample spike sample-indices over ``duration_s``."""
        train = poisson_spike_train(self.rate_hz, duration_s,
                                    sampling_rate_hz, rng)
        return np.flatnonzero(train)


def render_spike_waveform(spike_indices: np.ndarray,
                          template: np.ndarray,
                          n_samples: int,
                          amplitude: float = 1.0) -> np.ndarray:
    """Convolve a set of spike sample-indices with a waveform template.

    Spikes whose template would extend past the end of the buffer are
    truncated rather than dropped, so late spikes still contribute energy.
    """
    waveform = np.zeros(n_samples)
    t_len = template.size
    for idx in np.asarray(spike_indices, dtype=int):
        if idx < 0 or idx >= n_samples:
            raise ValueError(f"spike index {idx} outside waveform of "
                             f"length {n_samples}")
        end = min(idx + t_len, n_samples)
        waveform[idx:end] += amplitude * template[:end - idx]
    return waveform


def _validate_rate(sampling_rate_hz: float) -> None:
    if sampling_rate_hz <= 0:
        raise ValueError("sampling rate must be positive")
