"""Synthetic neural data substrate.

The MINDFUL analysis itself depends only on channel counts, sampling rates,
and bit widths — but the substrates it reasons about (spike sorting, DNN
decoders, packetized wireless streaming) operate on actual waveforms.  This
package synthesizes those waveforms: Poisson spiking units with extracellular
templates, ECoG/LFP-like field potentials (1/f background plus band-limited
oscillations), and parametric decoding datasets that stand in for the in-vivo
recordings the paper's workloads were trained on (see DESIGN.md,
substitution 4).
"""

from repro.signals.spikes import (
    SpikeUnit,
    exponential_spike_template,
    biphasic_spike_template,
    poisson_spike_train,
    render_spike_waveform,
)
from repro.signals.lfp import OscillatoryBand, pink_noise, synthesize_ecog
from repro.signals.filters import (
    bandpass,
    common_average_reference,
    lfp_band,
    notch,
    spike_band,
)
from repro.signals.spectral import (
    CANONICAL_BANDS,
    EnvelopeExtractor,
    band_power,
    band_power_features,
    welch_psd,
)
from repro.signals.audio import SinusoidalVocoder, mel_like_frequencies
from repro.signals.datasets import (
    CursorDataset,
    SpeechDataset,
    make_cursor_dataset,
    make_speech_dataset,
)

__all__ = [
    "SpikeUnit",
    "exponential_spike_template",
    "biphasic_spike_template",
    "poisson_spike_train",
    "render_spike_waveform",
    "OscillatoryBand",
    "pink_noise",
    "synthesize_ecog",
    "CursorDataset",
    "SpeechDataset",
    "make_cursor_dataset",
    "make_speech_dataset",
    "bandpass",
    "common_average_reference",
    "lfp_band",
    "notch",
    "spike_band",
    "CANONICAL_BANDS",
    "EnvelopeExtractor",
    "band_power",
    "band_power_features",
    "welch_psd",
    "SinusoidalVocoder",
    "mel_like_frequencies",
]
