"""DSP front-end filters for neural recordings.

The standard conditioning chain applied before any decoding: band-pass
filtering into the physiological band of interest (LFP 1-300 Hz, spikes
300-6000 Hz), mains-notch removal, and common-average referencing (CAR)
to reject signals shared across the array.  Built on scipy's IIR design,
applied with zero-phase filtering so decoders see no group delay.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal


def bandpass(data: np.ndarray, low_hz: float, high_hz: float,
             sampling_rate_hz: float, order: int = 4) -> np.ndarray:
    """Zero-phase Butterworth band-pass along the last axis.

    Args:
        data: (..., n_samples) waveforms.
        low_hz / high_hz: pass-band edges.
        sampling_rate_hz: sampling rate.
        order: filter order (doubled by the forward-backward pass).

    Raises:
        ValueError: for invalid band edges.
    """
    nyquist = sampling_rate_hz / 2.0
    if not 0.0 < low_hz < high_hz < nyquist:
        raise ValueError(
            f"need 0 < low ({low_hz}) < high ({high_hz}) < nyquist "
            f"({nyquist})")
    sos = sp_signal.butter(order, [low_hz / nyquist, high_hz / nyquist],
                           btype="band", output="sos")
    return sp_signal.sosfiltfilt(sos, np.asarray(data, dtype=float),
                                 axis=-1)


def notch(data: np.ndarray, freq_hz: float, sampling_rate_hz: float,
          quality: float = 30.0) -> np.ndarray:
    """Zero-phase IIR notch (mains interference removal).

    Raises:
        ValueError: for a notch at or above Nyquist.
    """
    nyquist = sampling_rate_hz / 2.0
    if not 0.0 < freq_hz < nyquist:
        raise ValueError(f"notch frequency must lie in (0, {nyquist})")
    if quality <= 0:
        raise ValueError("quality factor must be positive")
    b, a = sp_signal.iirnotch(freq_hz / nyquist, quality)
    return sp_signal.filtfilt(b, a, np.asarray(data, dtype=float),
                              axis=-1)


def common_average_reference(data: np.ndarray) -> np.ndarray:
    """Subtract the instantaneous across-channel mean (CAR).

    Args:
        data: (n_channels, n_samples) array.

    Raises:
        ValueError: for non-2-D input or a single channel.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError("CAR expects (n_channels, n_samples)")
    if data.shape[0] < 2:
        raise ValueError("CAR needs at least two channels")
    return data - data.mean(axis=0, keepdims=True)


def spike_band(data: np.ndarray, sampling_rate_hz: float) -> np.ndarray:
    """The conventional spike band (300 Hz - min(6 kHz, 0.45 fs))."""
    high = min(6000.0, 0.45 * sampling_rate_hz)
    return bandpass(data, 300.0, high, sampling_rate_hz)


def lfp_band(data: np.ndarray, sampling_rate_hz: float) -> np.ndarray:
    """The conventional LFP band (1 - min(300, 0.45 fs) Hz)."""
    high = min(300.0, 0.45 * sampling_rate_hz)
    return bandpass(data, 1.0, high, sampling_rate_hz)
