"""SPAD neural imager model (Table 1 designs 2 and 11).

Optical neural interfaces replace electrodes with single-photon avalanche
diodes: optogenetically labelled neurons emit fluorescence photons whose
arrival at each pixel is a Poisson process.  The imager integrates photon
counts over a frame period, so the "channel" of the MINDFUL analysis is a
pixel and the sampling rate is the frame rate.  The model here captures:

* Poisson photon statistics (signal + dark counts) per pixel per frame,
* shot-noise-limited SNR = signal / sqrt(signal + dark),
* counter-width driven data rate (bits/pixel/frame), and
* a per-pixel power model (quench/recharge energy per avalanche plus
  readout), matching the nW/pixel regime of published devices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.units import khz, pj


@dataclass(frozen=True)
class SpadImager:
    """A SPAD pixel array acting as an optical neural interface.

    Attributes:
        n_pixels: number of SPAD pixels (the NI channel count).
        frame_rate_hz: frame (sampling) rate f.
        signal_rate_hz: mean fluorescence photon rate per active pixel.
        dark_rate_hz: dark-count rate per pixel.
        counter_bits: per-pixel counter width; saturating counts clip.
        avalanche_energy_j: quench/recharge energy per detected photon.
        readout_energy_per_bit_j: energy to shift one bit off-array.
    """

    n_pixels: int
    frame_rate_hz: float = khz(1.0)
    signal_rate_hz: float = khz(50.0)
    dark_rate_hz: float = khz(2.0)
    counter_bits: int = 8
    avalanche_energy_j: float = pj(5.0)
    readout_energy_per_bit_j: float = pj(0.5)

    def __post_init__(self) -> None:
        if self.n_pixels <= 0:
            raise ValueError("pixel count must be positive")
        if self.frame_rate_hz <= 0:
            raise ValueError("frame rate must be positive")
        if self.signal_rate_hz < 0 or self.dark_rate_hz < 0:
            raise ValueError("photon rates must be non-negative")
        if self.counter_bits < 1:
            raise ValueError("counter width must be >= 1")

    @property
    def frame_period_s(self) -> float:
        """Integration time of one frame."""
        return 1.0 / self.frame_rate_hz

    @property
    def mean_signal_counts(self) -> float:
        """Expected fluorescence photons per pixel per frame."""
        return self.signal_rate_hz * self.frame_period_s

    @property
    def mean_dark_counts(self) -> float:
        """Expected dark counts per pixel per frame."""
        return self.dark_rate_hz * self.frame_period_s

    @property
    def shot_noise_snr(self) -> float:
        """Shot-noise-limited SNR of one frame's count."""
        total = self.mean_signal_counts + self.mean_dark_counts
        if total == 0:
            return 0.0
        return self.mean_signal_counts / math.sqrt(total)

    @property
    def throughput_bps(self) -> float:
        """Eq. 6 analogue: counter_bits * n_pixels * frame_rate."""
        return self.counter_bits * self.n_pixels * self.frame_rate_hz

    @property
    def saturation_counts(self) -> int:
        """Largest count the per-pixel counter can hold."""
        return 2 ** self.counter_bits - 1

    @property
    def saturation_probability(self) -> float:
        """Probability a pixel's Poisson count clips in one frame.

        Gaussian tail approximation around the Poisson mean; exact enough
        for the design check (is the counter wide enough?).
        """
        mean = self.mean_signal_counts + self.mean_dark_counts
        if mean == 0:
            return 0.0
        z = (self.saturation_counts + 0.5 - mean) / math.sqrt(mean)
        return 0.5 * math.erfc(z / math.sqrt(2.0))

    def pixel_power_w(self) -> float:
        """Average per-pixel power: avalanches plus counter readout."""
        avalanche_rate = self.signal_rate_hz + self.dark_rate_hz
        avalanche = avalanche_rate * self.avalanche_energy_j
        readout = (self.counter_bits * self.frame_rate_hz
                   * self.readout_energy_per_bit_j)
        return avalanche + readout

    def sensing_power_w(self) -> float:
        """Total array power (linear in pixel count, as Eq. 5 assumes)."""
        return self.n_pixels * self.pixel_power_w()

    def capture_frame(self, rng: np.random.Generator,
                      activity: np.ndarray | None = None) -> np.ndarray:
        """Draw one frame of Poisson counts.

        Args:
            rng: random generator.
            activity: optional per-pixel activity scaling of the signal
                rate (1.0 = nominal); shape (n_pixels,).

        Returns:
            Integer counts clipped to the counter width.
        """
        if activity is None:
            signal = np.full(self.n_pixels, self.mean_signal_counts)
        else:
            activity = np.asarray(activity, dtype=float)
            if activity.shape != (self.n_pixels,):
                raise ValueError(
                    f"activity must have shape ({self.n_pixels},)")
            if np.any(activity < 0):
                raise ValueError("activity must be non-negative")
            signal = activity * self.mean_signal_counts
        counts = rng.poisson(signal + self.mean_dark_counts)
        return np.minimum(counts, self.saturation_counts).astype(np.int32)

    def with_frame_rate(self, frame_rate_hz: float) -> "SpadImager":
        """Same imager at a different (e.g. reduced) frame rate — the
        configurable-sampling trade-off the paper notes for 49k-pixel
        devices."""
        return SpadImager(
            n_pixels=self.n_pixels, frame_rate_hz=frame_rate_hz,
            signal_rate_hz=self.signal_rate_hz,
            dark_rate_hz=self.dark_rate_hz,
            counter_bits=self.counter_bits,
            avalanche_energy_j=self.avalanche_energy_j,
            readout_energy_per_bit_j=self.readout_energy_per_bit_j)
