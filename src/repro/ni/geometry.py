"""Electrode-array geometry and volumetric-efficiency metrics.

The paper's area requirements (Section 3.2) reduce to two geometric
quantities: the channel spacing (target <= 20 um for one channel per neuron)
and the *volumetric efficiency* — the fraction of implant area devoted to
sensing, which Eq. 4 demands approach 1 as channel count grows.  This module
provides concrete array geometries (planar grids for ECoG/SPAD implants,
shank stacks for Neuropixels-style probes) plus the two metrics as free
functions usable on raw areas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def channel_spacing(sensing_area_m2: float, n_channels: int) -> float:
    """Average center-to-center channel spacing on a planar sensing area.

    Assumes channels tile the sensing area on a square lattice, so the
    spacing is ``sqrt(area / n)``.

    Raises:
        ValueError: on non-positive area or channel count.
    """
    if sensing_area_m2 <= 0:
        raise ValueError("sensing area must be positive")
    if n_channels <= 0:
        raise ValueError("channel count must be positive")
    return math.sqrt(sensing_area_m2 / n_channels)


def volumetric_efficiency(sensing_area_m2: float,
                          total_area_m2: float) -> float:
    """Fraction of implant area in contact-sensing use (Eq. 4 numerator ratio).

    Raises:
        ValueError: if areas are non-positive or sensing exceeds total.
    """
    if total_area_m2 <= 0:
        raise ValueError("total area must be positive")
    if sensing_area_m2 < 0:
        raise ValueError("sensing area must be non-negative")
    if sensing_area_m2 > total_area_m2 * (1 + 1e-12):
        raise ValueError("sensing area cannot exceed total area")
    return min(1.0, sensing_area_m2 / total_area_m2)


@dataclass(frozen=True)
class ArrayGeometry:
    """Base description of an NI array.

    Attributes:
        n_channels: number of simultaneously recordable channels.
        sensing_area_m2: area in sensing contact with tissue.
        overhead_area_m2: non-sensing area (routing, pads, transceiver...).
    """

    n_channels: int
    sensing_area_m2: float
    overhead_area_m2: float

    def __post_init__(self) -> None:
        if self.n_channels <= 0:
            raise ValueError("n_channels must be positive")
        if self.sensing_area_m2 <= 0:
            raise ValueError("sensing_area_m2 must be positive")
        if self.overhead_area_m2 < 0:
            raise ValueError("overhead_area_m2 must be non-negative")

    @property
    def total_area_m2(self) -> float:
        """Total tissue-contact area of the implant."""
        return self.sensing_area_m2 + self.overhead_area_m2

    @property
    def spacing_m(self) -> float:
        """Average channel spacing."""
        return channel_spacing(self.sensing_area_m2, self.n_channels)

    @property
    def volumetric_efficiency(self) -> float:
        """Sensing / total area fraction."""
        return volumetric_efficiency(self.sensing_area_m2, self.total_area_m2)

    def meets_spacing_target(self, target_m: float = 20e-6) -> bool:
        """True when spacing satisfies the one-channel-per-neuron goal."""
        return self.spacing_m <= target_m


class GridArray(ArrayGeometry):
    """A planar rectangular grid of channels (ECoG MEA or SPAD imager)."""

    def __init__(self, rows: int, cols: int, pitch_m: float,
                 overhead_area_m2: float = 0.0) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("grid dimensions must be positive")
        if pitch_m <= 0:
            raise ValueError("pitch must be positive")
        sensing = rows * cols * pitch_m ** 2
        super().__init__(n_channels=rows * cols,
                         sensing_area_m2=sensing,
                         overhead_area_m2=overhead_area_m2)
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "pitch_m", pitch_m)

    def channel_position(self, channel: int) -> tuple[float, float]:
        """(x, y) position of a channel's center, row-major indexing."""
        if not 0 <= channel < self.n_channels:
            raise ValueError(f"channel {channel} out of range")
        row, col = divmod(channel, self.cols)
        return ((col + 0.5) * self.pitch_m, (row + 0.5) * self.pitch_m)


class ShankArray(ArrayGeometry):
    """A stack of penetrating shanks, each carrying a fixed channel strip.

    Matches the paper's special case for Neuropixels (Section 4.1): the
    design scales by *adding shanks*, so area and power scale linearly with
    channel count rather than by Eq. 1.
    """

    def __init__(self, n_shanks: int, channels_per_shank: int,
                 shank_area_m2: float, overhead_area_m2: float = 0.0) -> None:
        if n_shanks <= 0 or channels_per_shank <= 0:
            raise ValueError("shank counts must be positive")
        if shank_area_m2 <= 0:
            raise ValueError("shank area must be positive")
        super().__init__(n_channels=n_shanks * channels_per_shank,
                         sensing_area_m2=n_shanks * shank_area_m2,
                         overhead_area_m2=overhead_area_m2)
        object.__setattr__(self, "n_shanks", n_shanks)
        object.__setattr__(self, "channels_per_shank", channels_per_shank)
        object.__setattr__(self, "shank_area_m2", shank_area_m2)

    def with_shanks(self, n_shanks: int) -> "ShankArray":
        """A new array with a different shank count (linear scaling)."""
        return ShankArray(n_shanks=n_shanks,
                          channels_per_shank=self.channels_per_shank,
                          shank_area_m2=self.shank_area_m2,
                          overhead_area_m2=self.overhead_area_m2)
