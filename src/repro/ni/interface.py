"""NeuralInterface facade: analog array -> digitized frames -> throughput.

Binds the geometry, front-end, and ADC models into the sensing stage of the
implanted SoC pipeline (paper Fig. 3, left block), and exposes Eq. 6:

    T_sensing(n) = d * n / t_s  =  d * n * f        [bit/s]
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ni.adc import AdcModel
from repro.ni.afe import AnalogFrontEnd
from repro.ni.geometry import ArrayGeometry


def sensing_throughput(n_channels: int, sample_bits: int,
                       sampling_rate_hz: float) -> float:
    """Eq. 6: raw digitized data rate of the NI [bit/s].

    Raises:
        ValueError: on non-positive arguments.
    """
    if n_channels <= 0:
        raise ValueError("channel count must be positive")
    if sample_bits <= 0:
        raise ValueError("sample bitwidth must be positive")
    if sampling_rate_hz <= 0:
        raise ValueError("sampling rate must be positive")
    return float(sample_bits) * n_channels * sampling_rate_hz


@dataclass
class NeuralInterface:
    """The full sensing subsystem of an implanted SoC.

    Attributes:
        geometry: electrode/SPAD array geometry.
        afe: analog front-end model (per-channel power).
        adc: digitization model (bitwidth, rate).
    """

    geometry: ArrayGeometry
    afe: AnalogFrontEnd = field(default_factory=AnalogFrontEnd)
    adc: AdcModel = field(default_factory=AdcModel)

    @property
    def n_channels(self) -> int:
        """Number of parallel recording channels."""
        return self.geometry.n_channels

    @property
    def throughput_bps(self) -> float:
        """Eq. 6 sensing throughput for this interface."""
        return sensing_throughput(self.n_channels, self.adc.bits,
                                  self.adc.sampling_rate_hz)

    @property
    def sensing_power_w(self) -> float:
        """Total AFE power across channels (linear in n, Eq. 5 basis)."""
        return self.afe.total_power_w(self.n_channels)

    def acquire(self, analog: np.ndarray) -> np.ndarray:
        """Digitize a block of analog channel data.

        Args:
            analog: array of shape (n_channels, n_samples).

        Returns:
            Integer codes of the same shape.

        Raises:
            ValueError: if the channel dimension does not match the array.
        """
        analog = np.asarray(analog, dtype=float)
        if analog.ndim != 2:
            raise ValueError("expected (n_channels, n_samples) array")
        if analog.shape[0] != self.n_channels:
            raise ValueError(
                f"array has {self.n_channels} channels, data has "
                f"{analog.shape[0]}")
        return self.adc.convert(analog)

    def frame_bits(self, n_samples: int) -> int:
        """Total bits produced by a block of ``n_samples`` per channel."""
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        return self.n_channels * n_samples * self.adc.bits
