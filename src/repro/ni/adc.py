"""ADC digitization model: mid-rise quantization and SQNR accounting.

The digitized sample bitwidth ``d`` enters MINDFUL's throughput equation
(Eq. 6: T_sensing = d * n / t_s) and therefore every communication-power
result downstream.  This module provides the actual quantizer the simulation
substrate uses, plus the signal-to-quantization-noise metric that justifies
the 8-16 bit range used in published designs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import khz


def quantize(signal: np.ndarray, bits: int,
             full_scale: float = 1.0) -> np.ndarray:
    """Quantize to signed integer codes with a mid-rise uniform quantizer.

    Values outside +/- full_scale clip to the extreme codes.

    Args:
        signal: analog samples.
        bits: resolution; codes span [-2^(bits-1), 2^(bits-1) - 1].
        full_scale: analog amplitude mapped to the positive full-scale code.

    Returns:
        Integer codes with dtype int32.
    """
    if bits < 1:
        raise ValueError("bit depth must be >= 1")
    if full_scale <= 0:
        raise ValueError("full scale must be positive")
    levels = 2 ** bits
    lsb = 2.0 * full_scale / levels
    codes = np.floor(np.asarray(signal, dtype=float) / lsb)
    return np.clip(codes, -levels // 2, levels // 2 - 1).astype(np.int32)


def dequantize(codes: np.ndarray, bits: int,
               full_scale: float = 1.0) -> np.ndarray:
    """Map integer codes back to analog mid-points of their cells."""
    if bits < 1:
        raise ValueError("bit depth must be >= 1")
    levels = 2 ** bits
    lsb = 2.0 * full_scale / levels
    return (np.asarray(codes, dtype=float) + 0.5) * lsb


def sqnr_db(signal: np.ndarray, bits: int, full_scale: float = 1.0) -> float:
    """Empirical signal-to-quantization-noise ratio in dB.

    Raises:
        ValueError: if the signal has zero power.
    """
    signal = np.asarray(signal, dtype=float)
    power = np.mean(signal ** 2)
    if power == 0:
        raise ValueError("signal has zero power; SQNR undefined")
    reconstructed = dequantize(quantize(signal, bits, full_scale),
                               bits, full_scale)
    noise = np.mean((signal - reconstructed) ** 2)
    if noise == 0:
        return float("inf")
    return 10.0 * np.log10(power / noise)


@dataclass(frozen=True)
class AdcModel:
    """A per-channel ADC description.

    Attributes:
        bits: sample bitwidth ``d`` of Eq. 6.
        sampling_rate_hz: conversion rate ``f`` (1/t_s).
        full_scale: analog full-scale amplitude.
    """

    bits: int = 10
    sampling_rate_hz: float = khz(8.0)
    full_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("bit depth must be >= 1")
        if self.sampling_rate_hz <= 0:
            raise ValueError("sampling rate must be positive")
        if self.full_scale <= 0:
            raise ValueError("full scale must be positive")

    @property
    def bits_per_second_per_channel(self) -> float:
        """Digital output rate of a single channel [bit/s]."""
        return self.bits * self.sampling_rate_hz

    def convert(self, signal: np.ndarray) -> np.ndarray:
        """Quantize an already-sampled waveform."""
        return quantize(signal, self.bits, self.full_scale)

    def ideal_sqnr_db(self) -> float:
        """Textbook 6.02*d + 1.76 dB SQNR for a full-scale sinusoid."""
        return 6.02 * self.bits + 1.76
