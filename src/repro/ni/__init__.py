"""Neural interface (NI) substrate.

Models the sensing side of the implanted SoC (paper Section 2.1/3.2):
electrode-array geometry with channel-spacing and volumetric-efficiency
metrics, the analog front end's noise-efficiency-factor power model, the ADC
digitization stage, and a `NeuralInterface` facade that turns analog
waveforms into digitized frames at the sensing throughput of Eq. 6.
"""

from repro.ni.geometry import (
    ArrayGeometry,
    GridArray,
    ShankArray,
    channel_spacing,
    volumetric_efficiency,
)
from repro.ni.afe import AnalogFrontEnd, nef_input_current, afe_channel_power
from repro.ni.adc import AdcModel, quantize, sqnr_db
from repro.ni.interface import NeuralInterface, sensing_throughput
from repro.ni.spad import SpadImager

__all__ = [
    "ArrayGeometry",
    "GridArray",
    "ShankArray",
    "channel_spacing",
    "volumetric_efficiency",
    "AnalogFrontEnd",
    "nef_input_current",
    "afe_channel_power",
    "AdcModel",
    "quantize",
    "sqnr_db",
    "NeuralInterface",
    "sensing_throughput",
    "SpadImager",
]
