"""Analog front-end (AFE) power model based on the noise efficiency factor.

Simmich et al. (cited in paper Section 4.1) show that implantable-BCI power
scales roughly linearly with channel count *at constant signal quality*,
where quality is captured by the amplifier's noise efficiency factor (NEF):

    NEF = V_rms_in * sqrt(2 * I_total / (pi * U_T * 4kT * BW))

Rearranged, the supply current a channel's amplifier must burn to reach a
target input-referred noise V_rms over bandwidth BW is:

    I_total = NEF^2 * (pi * U_T * 4kT * BW) / (2 * V_rms^2)

This module exposes that relation and a per-channel AFE power estimate
(amplifier + ADC share), which is the physical basis for MINDFUL's linear
sensing-power scaling (Eq. 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import BOLTZMANN, BODY_TEMPERATURE_K, khz

#: Thermal voltage kT/q at body temperature [V].
THERMAL_VOLTAGE = BOLTZMANN * BODY_TEMPERATURE_K / 1.602176634e-19


def nef_input_current(nef: float,
                      input_noise_vrms: float,
                      bandwidth_hz: float,
                      temperature_k: float = BODY_TEMPERATURE_K) -> float:
    """Total amplifier supply current implied by a target NEF [A].

    Args:
        nef: noise efficiency factor (>= 1 in theory; ~2-5 in practice).
        input_noise_vrms: target input-referred noise, e.g. 5e-6 V.
        bandwidth_hz: amplifier noise bandwidth.
        temperature_k: physical temperature.

    Raises:
        ValueError: on non-physical arguments.
    """
    if nef < 1.0:
        raise ValueError("NEF below 1 is non-physical (BJT limit)")
    if input_noise_vrms <= 0 or bandwidth_hz <= 0 or temperature_k <= 0:
        raise ValueError("noise, bandwidth and temperature must be positive")
    ut = BOLTZMANN * temperature_k / 1.602176634e-19
    kt4 = 4.0 * BOLTZMANN * temperature_k
    return nef ** 2 * (math.pi * ut * kt4 * bandwidth_hz) / (
        2.0 * input_noise_vrms ** 2)


def afe_channel_power(nef: float,
                      input_noise_vrms: float,
                      bandwidth_hz: float,
                      supply_v: float = 1.2,
                      adc_overhead: float = 0.35) -> float:
    """Per-channel AFE power [W]: amplifier plus a fractional ADC share.

    Args:
        nef: amplifier noise efficiency factor.
        input_noise_vrms: target input-referred noise.
        bandwidth_hz: recording bandwidth (~ sampling rate / 2).
        supply_v: analog supply voltage.
        adc_overhead: ADC + biasing power as a fraction of amplifier power.
    """
    if supply_v <= 0:
        raise ValueError("supply voltage must be positive")
    if adc_overhead < 0:
        raise ValueError("ADC overhead must be non-negative")
    current = nef_input_current(nef, input_noise_vrms, bandwidth_hz)
    return current * supply_v * (1.0 + adc_overhead)


@dataclass(frozen=True)
class AnalogFrontEnd:
    """A bank of identical per-channel AFEs.

    Attributes:
        nef: noise efficiency factor of each amplifier.
        input_noise_vrms: input-referred noise target.
        bandwidth_hz: recording bandwidth per channel.
        supply_v: analog supply.
        adc_overhead: ADC power as a fraction of amplifier power.
    """

    nef: float = 3.0
    input_noise_vrms: float = 5e-6
    bandwidth_hz: float = khz(5.0)
    supply_v: float = 1.2
    adc_overhead: float = 0.35

    @property
    def channel_power_w(self) -> float:
        """Power of one channel's front end."""
        return afe_channel_power(self.nef, self.input_noise_vrms,
                                 self.bandwidth_hz, self.supply_v,
                                 self.adc_overhead)

    def total_power_w(self, n_channels: int) -> float:
        """Linear sensing-power scaling (the basis of Eq. 5)."""
        if n_channels <= 0:
            raise ValueError("channel count must be positive")
        return n_channels * self.channel_power_w

    def with_noise_target(self, input_noise_vrms: float) -> "AnalogFrontEnd":
        """Same AFE at a different noise target (power ~ 1/V_rms^2)."""
        return AnalogFrontEnd(nef=self.nef,
                              input_noise_vrms=input_noise_vrms,
                              bandwidth_hz=self.bandwidth_hz,
                              supply_v=self.supply_v,
                              adc_overhead=self.adc_overhead)
