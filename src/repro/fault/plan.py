"""Fault plans: the declarative spec of what to break, and how hard.

A :class:`FaultPlan` is the single input to the fault-injection layer
(:mod:`repro.fault.injector`): per-domain fault rates for the wireless
link, the result cache, and the experiment workers, plus the recovery
policy (bounded retries, backoff, per-driver timeout) the engines apply.
Plans serialize to/from JSON (``python -m repro evaluate --fault-plan
plan.json``; schema in ``docs/ROBUSTNESS.md``) and carry one base seed
from which every injection decision derives — same plan, same faults,
byte-identical fault logs (the acceptance contract of ``python -m repro
chaos``).

Seed derivation mirrors :mod:`repro.perf.seeds`: each fault domain hashes
``(seed, domain)`` so the link injector's draws never depend on how many
cache faults fired before it — fault streams are order-independent by
construction, exactly like the per-driver experiment seeds.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Mapping

__all__ = ["CacheFaults", "FaultPlan", "InjectedWorkerFault",
           "LinkFaults", "RetryPolicy", "WorkerFaults",
           "default_chaos_plan", "derive_fault_seed"]

#: Cache corruption modes the injector knows how to apply.
CACHE_FAULT_MODES = ("truncate", "garbage", "key_mismatch")

#: Worker fault kinds, in injection priority order.
WORKER_FAULT_KINDS = ("crash", "slow", "hang")


class InjectedWorkerFault(RuntimeError):
    """Deliberate worker crash raised by the fault injector.

    Picklable across the process-pool boundary (workers raise it, the
    parent engine catches it and retries).
    """

    def __init__(self, driver: str, attempt: int) -> None:
        super().__init__(f"injected crash in driver {driver!r} "
                         f"(attempt {attempt})")
        self.driver = driver
        self.attempt = attempt

    def __reduce__(self):
        return (InjectedWorkerFault, (self.driver, self.attempt))


def derive_fault_seed(base_seed: int, domain: str) -> int:
    """Stable 63-bit seed for one fault domain under a plan seed.

    Same construction as :func:`repro.perf.seeds.derive_driver_seed`
    but namespaced with a ``fault:`` prefix so fault streams never
    collide with experiment streams derived from the same base seed.
    """
    digest = hashlib.sha256(
        f"fault:{base_seed}:{domain}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _rate(name: str, value: float) -> float:
    if not 0.0 <= float(value) < 1.0:
        raise ValueError(f"{name} must lie in [0, 1); got {value!r}")
    return float(value)


@dataclass(frozen=True)
class LinkFaults:
    """Wireless-link fault rates applied to serialized packets.

    Attributes:
        ber: per-bit flip probability (models residual channel errors).
        drop_rate: per-packet erasure probability.
        truncate_rate: per-packet probability of losing a random tail.
        reorder_rate: probability of swapping a packet with its
            successor during stream delivery.
    """

    ber: float = 0.0
    drop_rate: float = 0.0
    truncate_rate: float = 0.0
    reorder_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("ber", "drop_rate", "truncate_rate", "reorder_rate"):
            _rate(f"link.{name}", getattr(self, name))

    @property
    def any_enabled(self) -> bool:
        """True when at least one link fault can fire."""
        return any(getattr(self, name) > 0.0 for name in
                   ("ber", "drop_rate", "truncate_rate", "reorder_rate"))


@dataclass(frozen=True)
class CacheFaults:
    """Result-cache corruption drill configuration.

    Attributes:
        corrupt_rate: probability each drilled entry gets corrupted.
        modes: corruption modes to draw from (see
            :data:`CACHE_FAULT_MODES`).
    """

    corrupt_rate: float = 0.0
    modes: tuple[str, ...] = CACHE_FAULT_MODES

    def __post_init__(self) -> None:
        _rate("cache.corrupt_rate", self.corrupt_rate)
        object.__setattr__(self, "modes", tuple(self.modes))
        if not self.modes:
            raise ValueError("cache.modes must not be empty")
        unknown = set(self.modes) - set(CACHE_FAULT_MODES)
        if unknown:
            raise ValueError(f"unknown cache fault modes {sorted(unknown)}; "
                             f"known: {CACHE_FAULT_MODES}")


@dataclass(frozen=True)
class WorkerFaults:
    """Per-driver worker faults for the experiment engines.

    Attributes:
        crash: driver name -> number of leading attempts that raise an
            :class:`InjectedWorkerFault` (attempt k crashes while
            ``k < crash[name]``; the run recovers iff the retry budget
            outlasts the crash budget).
        slow_s: driver name -> injected sleep (seconds) before every
            attempt; the driver still succeeds.
        hang_s: driver name -> injected sleep meant to exceed the
            engine's per-driver ``timeout_s`` so the attempt is
            abandoned.
    """

    crash: Mapping[str, int] = field(default_factory=dict)
    slow_s: Mapping[str, float] = field(default_factory=dict)
    hang_s: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, count in self.crash.items():
            if int(count) < 0:
                raise ValueError(
                    f"worker.crash[{name!r}] must be >= 0; got {count!r}")
        for attr in ("slow_s", "hang_s"):
            for name, seconds in getattr(self, attr).items():
                if float(seconds) < 0:
                    raise ValueError(
                        f"worker.{attr}[{name!r}] must be >= 0; "
                        f"got {seconds!r}")

    @property
    def any_enabled(self) -> bool:
        """True when at least one driver has a worker fault."""
        return bool(self.crash or self.slow_s or self.hang_s)

    def fault_for(self, driver: str,
                  attempt: int) -> tuple[str | None, float]:
        """The fault injected into one (driver, attempt), if any.

        Returns:
            ``(kind, seconds)`` where kind is one of
            :data:`WORKER_FAULT_KINDS` or None; ``seconds`` is the
            injected delay for slow/hang faults (0.0 otherwise).
        """
        if attempt < int(self.crash.get(driver, 0)):
            return "crash", 0.0
        if driver in self.slow_s:
            return "slow", float(self.slow_s[driver])
        if driver in self.hang_s:
            return "hang", float(self.hang_s[driver])
        return None, 0.0


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery policy the engines apply around each driver.

    Attributes:
        max_retries: extra attempts after the first failure (the total
            attempt budget is ``max_retries + 1``); always bounded.
        backoff_s: base of the exponential backoff slept between
            attempts (``backoff_s * 2**attempt``); 0 disables sleeping.
        timeout_s: per-driver wall-clock bound enforced by the parallel
            engine (serial runs cannot preempt a hung driver); None
            disables the bound.
    """

    max_retries: int = 2
    backoff_s: float = 0.25
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if int(self.max_retries) < 0:
            raise ValueError("retry.max_retries must be >= 0")
        if float(self.backoff_s) < 0:
            raise ValueError("retry.backoff_s must be >= 0")
        if self.timeout_s is not None and float(self.timeout_s) <= 0:
            raise ValueError("retry.timeout_s must be positive or null")

    def backoff_for(self, attempt: int) -> float:
        """Seconds to sleep before retrying after ``attempt`` failed."""
        return float(self.backoff_s) * (2.0 ** attempt)


@dataclass(frozen=True)
class FaultPlan:
    """One seeded, composable fault-injection plan.

    Attributes:
        seed: base seed every injection decision derives from.
        link: wireless-link fault rates.
        cache: result-cache corruption drill settings.
        worker: per-driver worker faults.
        retry: the recovery policy the engines apply.
    """

    seed: int = 0
    link: LinkFaults = field(default_factory=LinkFaults)
    cache: CacheFaults = field(default_factory=CacheFaults)
    worker: WorkerFaults = field(default_factory=WorkerFaults)
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able representation (the fault-plan schema)."""
        record = asdict(self)
        record["cache"]["modes"] = list(self.cache.modes)
        return record

    def to_json(self) -> str:
        """Canonical JSON text of the plan."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from parsed JSON, validating every field.

        Raises:
            ValueError: for unknown keys or out-of-range rates.
        """
        known = {"seed", "link", "cache", "worker", "retry"}
        unknown = set(record) - known
        if unknown:
            raise ValueError(f"unknown fault-plan keys {sorted(unknown)}; "
                             f"known: {sorted(known)}")

        def section(name: str, cls_: type, **renames: str) -> Any:
            payload = dict(record.get(name) or {})
            for json_key, attr in renames.items():
                if json_key in payload:
                    payload[attr] = payload.pop(json_key)
            try:
                return cls_(**payload)
            except TypeError as error:
                raise ValueError(
                    f"bad fault-plan section {name!r}: {error}") from error

        plan = cls(
            seed=int(record.get("seed", 0)),
            link=section("link", LinkFaults),
            cache=section("cache", CacheFaults),
            worker=section("worker", WorkerFaults),
            retry=section("retry", RetryPolicy),
        )
        return plan

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON text."""
        try:
            record = json.loads(text)
        except ValueError as error:
            raise ValueError(f"fault plan is not valid JSON: {error}"
                             ) from error
        if not isinstance(record, dict):
            raise ValueError("fault plan must be a JSON object")
        return cls.from_dict(record)

    @classmethod
    def from_file(cls, path: Path | str) -> "FaultPlan":
        """Load a plan from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def default_chaos_plan(seed: int = 0) -> FaultPlan:
    """The stock plan behind ``python -m repro chaos``.

    Moderate link noise (every fault kind enabled so the chaos drills
    exercise each path), a 50 % cache corruption drill, no worker
    faults (the chaos sweep runs in-process), bounded retries with no
    backoff sleeping.
    """
    return FaultPlan(
        seed=seed,
        link=LinkFaults(ber=0.002, drop_rate=0.1, truncate_rate=0.05,
                        reorder_rate=0.05),
        cache=CacheFaults(corrupt_rate=0.5),
        worker=WorkerFaults(),
        retry=RetryPolicy(max_retries=2, backoff_s=0.0, timeout_s=None),
    )
