"""Chaos drills: canned exercises of the recovery paths.

Each drill pushes deterministic data through one subsystem with the
injector's faults enabled and returns JSON-able accounting.  They are
what ``python -m repro chaos`` runs and what the golden fault-log
regression test replays — so their inputs are synthesized (a fixed code
ramp, fixed cache payloads), never drawn from ambient entropy, and every
identifier they log is stable across machines and temp directories.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from repro.cache.keys import value_digest
from repro.cache.store import CacheStore
from repro.fault.injector import FaultInjector
from repro.link.packetizer import Packetizer
from repro.link.protocol import simulate_arq_with_faults
from repro.obs.trace import span

__all__ = ["cache_drill", "link_drill", "run_chaos_drills"]

#: Samples pushed through the link drill (a few dozen packets' worth).
_LINK_DRILL_SAMPLES = 2048

#: Payload size used by the drills (small packets -> many fault draws).
_LINK_DRILL_PAYLOAD_BYTES = 32

#: Entries exercised by the cache corruption drill.
_CACHE_DRILL_ENTRIES = 16


def _drill_codes(n_samples: int, sample_bits: int = 10) -> np.ndarray:
    """A deterministic full-scale ramp of ADC codes (no RNG: the drill
    data must be identical for every plan seed)."""
    lo = -(1 << (sample_bits - 1))
    hi = (1 << (sample_bits - 1)) - 1
    return (np.arange(n_samples, dtype=np.int64)
            % (hi - lo + 1) + lo).astype(np.int32)


def link_drill(injector: FaultInjector) -> dict[str, Any]:
    """Exercise the lossy receive path and the faulted ARQ model.

    Packetizes a fixed code ramp, damages the stream per the plan, and
    reassembles best-effort; then replays delivery under bounded-retry
    ARQ to account goodput.

    Returns:
        ``{"loss": StreamLossReport dict, "arq": FaultedArqReport
        dict, "samples_sent": ..., "samples_recovered": ...}``.
    """
    with span("fault.link_drill"):
        codes = _drill_codes(_LINK_DRILL_SAMPLES)
        packetizer = Packetizer(
            payload_bytes=_LINK_DRILL_PAYLOAD_BYTES)
        raw_packets = [packet.to_bytes()
                       for packet in packetizer.packetize(codes)]
        damaged = injector.inject_packet_stream(raw_packets)
        recovered, loss = packetizer.depacketize_lossy(damaged)
        arq = simulate_arq_with_faults(
            codes, injector,
            payload_bytes=_LINK_DRILL_PAYLOAD_BYTES)
        return {
            "samples_sent": int(codes.size),
            "samples_recovered": int(recovered.size),
            "loss": loss.to_dict(),
            "arq": arq.to_dict(),
        }


def cache_drill(injector: FaultInjector, root: Path | str,
                ) -> dict[str, Any]:
    """Exercise cache corruption, quarantine, and self-healing.

    Writes a batch of entries into a scratch store under ``root``,
    corrupts a plan-driven subset in place, then reads everything back:
    corrupt entries must miss and quarantine, intact ones must hit.  A
    second put/get round proves every damaged slot healed.

    Args:
        injector: seeded injector (draws corruption decisions/modes).
        root: directory for the scratch store (a chaos output dir).

    Returns:
        Drill counters (entries, corrupted, healed, quarantined).
    """
    with span("fault.cache_drill"):
        store = CacheStore(Path(root) / "cache-drill")
        keys = [value_digest({"drill": "cache", "index": index})
                for index in range(_CACHE_DRILL_ENTRIES)]
        for index, key in enumerate(keys):
            store.put(key, {"index": index}, kind="stage",
                      label="fault.cache_drill")
        corrupted: dict[str, str] = {}
        for index, key in enumerate(keys):
            if injector.should_corrupt_entry():
                mode = injector.corrupt_cache_entry(
                    store.entry_path(key), target=f"entry:{index}")
                corrupted[key] = mode
        survivors = 0
        for key in keys:
            entry = store.get(key)
            if key in corrupted:
                assert entry is None, "corrupt entry must read as a miss"
            elif entry is not None:
                survivors += 1
        quarantined = (len(list(store.quarantine_dir.glob("*.json")))
                       if store.quarantine_dir.is_dir() else 0)
        healed = 0
        for index, key in enumerate(keys):
            if key not in corrupted:
                continue
            store.put(key, {"index": index}, kind="stage",
                      label="fault.cache_drill")
            if store.get(key) is not None:
                healed += 1
                injector.record_recovered("cache",
                                          target=f"entry:{index}")
            else:  # pragma: no cover - heal never fails on POSIX
                injector.record_failed("cache", target=f"entry:{index}")
        return {
            "entries": len(keys),
            "intact_hits": survivors,
            "corrupted": len(corrupted),
            "quarantined": quarantined,
            "healed": healed,
        }


def run_chaos_drills(injector: FaultInjector,
                     output_dir: Path | str) -> dict[str, Any]:
    """Run every drill and return the combined JSON-able report."""
    return {
        "link": link_drill(injector),
        "cache": cache_drill(injector, output_dir),
    }
