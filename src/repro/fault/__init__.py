"""repro.fault: seeded fault injection and the recovery paths it tests.

The chaos layer of the reproduction pipeline (``docs/ROBUSTNESS.md``):

* :mod:`repro.fault.plan` — :class:`FaultPlan`, the declarative JSON
  spec of per-domain fault rates plus the retry policy;
* :mod:`repro.fault.injector` — :class:`FaultInjector`, which applies a
  plan deterministically and logs every event;
* :mod:`repro.fault.drills` — canned link/cache drills behind
  ``python -m repro chaos``.
"""

from repro.fault.drills import cache_drill, link_drill, run_chaos_drills
from repro.fault.injector import FaultEvent, FaultInjector
from repro.fault.plan import (CacheFaults, FaultPlan, InjectedWorkerFault,
                              LinkFaults, RetryPolicy, WorkerFaults,
                              default_chaos_plan, derive_fault_seed)

__all__ = [
    "CacheFaults",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InjectedWorkerFault",
    "LinkFaults",
    "RetryPolicy",
    "WorkerFaults",
    "cache_drill",
    "default_chaos_plan",
    "derive_fault_seed",
    "link_drill",
    "run_chaos_drills",
]
