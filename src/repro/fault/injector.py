"""Seeded fault injector: applies a :class:`FaultPlan` and logs events.

One :class:`FaultInjector` owns every injection decision of a run.  Each
fault domain draws from its own generator seeded by
:func:`repro.fault.plan.derive_fault_seed`, so the link stream's draws
are independent of how many cache faults fired first — replaying a plan
reproduces the exact same fault sequence, which is what makes the chaos
suite's golden fault-log regression possible.

Every injected fault, recovery, and terminal failure is appended to an
in-order event log of :class:`FaultEvent` records (no wall-clock
timestamps, so logs are byte-stable across runs) and counted into the
``injected``/``recovered``/``failed`` counters that the run manifests
and ``python -m repro chaos`` report.  Events mirror into the
observability layer as ``fault.*`` metrics (:mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.fault.plan import FaultPlan, derive_fault_seed
from repro.obs.events import emit as emit_event
from repro.obs.events import events_enabled
from repro.obs.metrics import inc

__all__ = ["FaultEvent", "FaultInjector"]


@dataclass(frozen=True)
class FaultEvent:
    """One entry of the fault log.

    Attributes:
        seq: injection-order index (0-based, gapless).
        domain: fault domain ("link", "cache", "worker").
        kind: what happened ("bit_flip", "drop", "crash",
            "recovered", "failed", ...).
        target: what it happened to (packet index, cache key prefix,
            driver name).
        detail: JSON-able specifics (flip counts, modes, attempts).
    """

    seq: int
    domain: str
    kind: str
    target: str
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able representation, detail keys sorted."""
        return {"seq": self.seq, "domain": self.domain, "kind": self.kind,
                "target": self.target,
                "detail": dict(sorted(self.detail.items()))}


#: Event kinds that count as recoveries/failures rather than injections.
_OUTCOME_KINDS = ("recovered", "failed")


class FaultInjector:
    """Applies a fault plan deterministically and records what it did.

    Args:
        plan: the fault plan; its ``seed`` drives every decision.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.events: list[FaultEvent] = []
        self.counters = {"injected": 0, "recovered": 0, "failed": 0}
        self._rngs: dict[str, np.random.Generator] = {}

    # -- seeded streams ---------------------------------------------------

    def rng(self, domain: str) -> np.random.Generator:
        """The (cached) generator for one fault domain.

        The only RNG construction site of the fault layer: generators
        are derived from the plan seed, never ambient entropy, so the
        whole injection sequence replays from the plan alone.
        """
        if domain not in self._rngs:
            seed = derive_fault_seed(self.plan.seed, domain)
            rng = np.random.default_rng(seed)  # lint: ignore[determinism]
            self._rngs[domain] = rng
        return self._rngs[domain]

    # -- event log --------------------------------------------------------

    def record(self, domain: str, kind: str, target: str,
               **detail: Any) -> FaultEvent:
        """Append one event; injections bump the ``injected`` counter."""
        event = FaultEvent(seq=len(self.events), domain=domain, kind=kind,
                           target=target, detail=detail)
        self.events.append(event)
        if kind in _OUTCOME_KINDS:
            self.counters[kind] += 1
            inc(f"fault.{kind}")
        else:
            self.counters["injected"] += 1
            inc("fault.injected")
            inc(f"fault.{domain}.injected")
        if events_enabled():
            emit_event("fault", f"{domain}.{kind}", target=target,
                       **detail)
        return event

    def record_recovered(self, domain: str, target: str,
                         **detail: Any) -> FaultEvent:
        """Log that a faulted operation ultimately succeeded."""
        return self.record(domain, "recovered", target, **detail)

    def record_failed(self, domain: str, target: str,
                      **detail: Any) -> FaultEvent:
        """Log that a faulted operation exhausted its recovery budget."""
        return self.record(domain, "failed", target, **detail)

    def log_dict(self) -> dict[str, Any]:
        """The full fault log (plan, counters, events) as JSON-able data."""
        return {
            "plan": self.plan.to_dict(),
            "counters": dict(self.counters),
            "events": [event.to_dict() for event in self.events],
        }

    def to_json(self) -> str:
        """Canonical fault-log text (byte-stable for a fixed plan)."""
        return json.dumps(self.log_dict(), indent=2, sort_keys=True) + "\n"

    def write_log(self, path: Path | str) -> Path:
        """Write the fault log to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    # -- link faults ------------------------------------------------------

    def corrupt_bytes(self, raw: bytes, target: str,
                      ber: float | None = None) -> bytes:
        """Flip each bit of ``raw`` independently with probability
        ``ber`` (default: the plan's link BER); logs when bits flipped.
        """
        rate = self.plan.link.ber if ber is None else ber
        if rate <= 0.0 or not raw:
            return raw
        bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8))
        mask = self.rng("link").random(bits.size) < rate
        flips = int(np.count_nonzero(mask))
        if flips == 0:
            return raw
        self.record("link", "bit_flip", target, n_flips=flips,
                    n_bits=int(bits.size))
        return np.packbits(bits ^ mask.astype(np.uint8)).tobytes()

    def flip_burst(self, raw: bytes, target: str,
                   max_burst_bits: int = 16) -> bytes:
        """Flip one contiguous bit burst of random length
        ``1..max_burst_bits`` at a random offset (the CRC-detectability
        drill: CRC-16 catches every burst no longer than 16 bits).
        """
        if not raw:
            return raw
        bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8))
        rng = self.rng("link")
        length = int(rng.integers(1, max_burst_bits + 1))
        length = min(length, bits.size)
        start = int(rng.integers(0, bits.size - length + 1))
        bits[start:start + length] ^= 1
        self.record("link", "burst_flip", target, start_bit=start,
                    burst_bits=length)
        return np.packbits(bits).tobytes()

    def perturb_packet(self, raw: bytes, target: str) -> bytes | None:
        """Push one serialized packet through the plan's link faults.

        Decision order is fixed (drop, truncate, corrupt) and the
        drop/truncate uniforms are always drawn, so the fault stream
        is a pure function of the plan seed and the call sequence.

        Returns:
            The (possibly damaged) bytes, or None when dropped.
        """
        spec = self.plan.link
        rng = self.rng("link")
        u_drop, u_trunc = rng.random(2)
        if u_drop < spec.drop_rate:
            self.record("link", "drop", target, n_bytes=len(raw))
            return None
        if u_trunc < spec.truncate_rate and len(raw) > 1:
            keep = int(rng.integers(1, len(raw)))
            self.record("link", "truncate", target, n_bytes=len(raw),
                        kept_bytes=keep)
            raw = raw[:keep]
        return self.corrupt_bytes(raw, target)

    def inject_packet_stream(self,
                             raw_packets: Sequence[bytes]) -> list[bytes]:
        """Apply per-packet faults plus stream-level reordering.

        Dropped packets vanish from the returned stream; surviving
        neighbours swap with probability ``link.reorder_rate``.
        """
        survivors: list[bytes] = []
        for index, raw in enumerate(raw_packets):
            damaged = self.perturb_packet(raw, target=f"packet:{index}")
            if damaged is not None:
                survivors.append(damaged)
        spec = self.plan.link
        if spec.reorder_rate > 0.0:
            rng = self.rng("link")
            for index in range(len(survivors) - 1):
                if rng.random() < spec.reorder_rate:
                    survivors[index], survivors[index + 1] = (
                        survivors[index + 1], survivors[index])
                    self.record("link", "reorder",
                                target=f"stream:{index}")
        return survivors

    # -- cache faults -----------------------------------------------------

    def corrupt_cache_entry(self, path: Path, target: str,
                            mode: str | None = None) -> str:
        """Damage one on-disk cache entry in place.

        Args:
            path: the entry's JSON file.
            target: stable id for the log (use a key prefix, not the
                path — paths embed temp directories and would break
                byte-stable logs).
            mode: corruption mode; default draws one from the plan's
                ``cache.modes``.

        Returns:
            The mode applied ("truncate", "garbage", "key_mismatch").
        """
        modes = self.plan.cache.modes
        if mode is None:
            mode = modes[int(self.rng("cache").integers(len(modes)))]
        path = Path(path)
        if mode == "truncate":
            text = path.read_text(encoding="utf-8")
            path.write_text(text[:max(1, len(text) // 3)],
                            encoding="utf-8")
        elif mode == "garbage":
            path.write_text("{this is not json", encoding="utf-8")
        elif mode == "key_mismatch":
            entry = json.loads(path.read_text(encoding="utf-8"))
            entry["key"] = "0" * 64
            path.write_text(json.dumps(entry, sort_keys=True),
                            encoding="utf-8")
        else:
            raise ValueError(f"unknown cache fault mode {mode!r}")
        self.record("cache", "corrupt", target, mode=mode)
        return mode

    def should_corrupt_entry(self) -> bool:
        """Draw one drill decision at the plan's ``cache.corrupt_rate``."""
        if self.plan.cache.corrupt_rate <= 0.0:
            return False
        return bool(self.rng("cache").random()
                    < self.plan.cache.corrupt_rate)

    # -- worker faults ----------------------------------------------------

    def record_worker_fault(self, driver: str, attempt: int,
                            kind: str, seconds: float = 0.0) -> FaultEvent:
        """Log one plan-driven worker fault (decisions live in
        :meth:`repro.fault.plan.WorkerFaults.fault_for`; the engines
        call this so the log stays single-process and deterministic
        even when the fault executes inside a pool worker)."""
        detail: dict[str, Any] = {"attempt": attempt}
        if seconds:
            detail["seconds"] = seconds
        return self.record("worker", kind, target=driver, **detail)
