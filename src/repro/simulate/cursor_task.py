"""Closed-loop center-out cursor task with a simulated user.

The loop per timestep:

1. the simulated user intends a velocity toward the current target,
2. cosine-tuned channels encode that intent (plus noise),
3. the decoder — fitted offline on open-loop data — maps features to a
   cursor velocity command,
4. the command is applied after a configurable *loop latency* (the
   acquisition + decode + actuation delay the MINDFUL analysis budgets),
5. the trial ends on target acquisition or timeout.

Because the user reacts to the *decoded* cursor, decoder errors and
latency feed back — the dynamic the paper says must be evaluated at the
application level rather than by data rate alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class SimulatedUser:
    """Cosine-tuned neural encoder of movement intent.

    Attributes:
        n_channels: number of recorded channels.
        gain: intent-to-rate gain.
        noise_rms: additive feature noise.
        intent_speed: preferred cursor speed toward the target.
    """

    n_channels: int = 64
    gain: float = 1.5
    noise_rms: float = 0.3
    intent_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.n_channels < 2:
            raise ValueError("need at least two channels")
        if self.intent_speed <= 0:
            raise ValueError("intent speed must be positive")

    def preferred_directions(self,
                             rng: np.random.Generator) -> np.ndarray:
        """(n_channels, 2) unit preferred directions."""
        angles = rng.uniform(0, 2 * np.pi, self.n_channels)
        return np.stack([np.cos(angles), np.sin(angles)], axis=1)

    def intend(self, cursor: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Intended velocity: straight at the target, speed-limited."""
        delta = target - cursor
        distance = float(np.linalg.norm(delta))
        if distance == 0:
            return np.zeros(2)
        speed = min(self.intent_speed, distance)
        return delta / distance * speed

    def encode(self, intent: np.ndarray, preferred: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        """Noisy rectified-cosine-tuned feature vector."""
        drive = preferred @ intent
        rates = np.maximum(0.5 + self.gain * drive, 0.0)
        return rates + self.noise_rms * rng.standard_normal(
            self.n_channels)


@dataclass(frozen=True)
class CursorTask:
    """Center-out reaching task configuration.

    Attributes:
        target_radius: acquisition radius around the target.
        target_distance: distance of targets from the origin.
        dt_s: control timestep.
        timeout_s: trial abandonment time.
    """

    target_radius: float = 0.5
    target_distance: float = 4.0
    dt_s: float = 0.02
    timeout_s: float = 8.0

    def __post_init__(self) -> None:
        if self.target_radius <= 0 or self.target_distance <= 0:
            raise ValueError("geometry must be positive")
        if self.dt_s <= 0 or self.timeout_s <= self.dt_s:
            raise ValueError("need 0 < dt < timeout")

    def targets(self, n_trials: int,
                rng: np.random.Generator) -> np.ndarray:
        """Random center-out targets, one per trial."""
        angles = rng.uniform(0, 2 * np.pi, n_trials)
        return self.target_distance * np.stack(
            [np.cos(angles), np.sin(angles)], axis=1)


@dataclass
class TaskOutcome:
    """Aggregate results of a closed-loop session.

    Attributes:
        hits: trials that acquired the target.
        trials: total trials run.
        times_to_target_s: acquisition times of successful trials.
        mean_path_efficiency: straight-line / travelled distance of hits.
        dropped_windows: control windows lost to link faults (the
            decoder held its last output; see ``drop_rate``).
        total_windows: control windows executed across all trials.
    """

    hits: int
    trials: int
    times_to_target_s: list[float] = field(default_factory=list)
    mean_path_efficiency: float = 0.0
    dropped_windows: int = 0
    total_windows: int = 0

    @property
    def dropped_fraction(self) -> float:
        """Fraction of control windows lost (0 when none ran)."""
        if self.total_windows == 0:
            return 0.0
        return self.dropped_windows / self.total_windows

    @property
    def hit_rate(self) -> float:
        """Fraction of successful trials."""
        if self.trials == 0:
            return 0.0
        return self.hits / self.trials

    @property
    def mean_time_to_target_s(self) -> float:
        """Mean acquisition time over successful trials (0 if none)."""
        if not self.times_to_target_s:
            return 0.0
        return float(np.mean(self.times_to_target_s))


def run_closed_loop_session(decoder,
                            user: SimulatedUser,
                            task: CursorTask,
                            rng: np.random.Generator,
                            n_trials: int = 20,
                            latency_steps: int = 0,
                            train_timesteps: int = 3000,
                            drop_rate: float = 0.0,
                            drop_rng: np.random.Generator | None = None,
                            ) -> TaskOutcome:
    """Run an offline-calibration + closed-loop-control session.

    Args:
        decoder: any object with ``fit(states, observations)`` and
            ``decode(observations) -> states`` (Kalman, Wiener, ...).
        user: the simulated neural encoder.
        task: task geometry and timing.
        rng: random generator.
        n_trials: closed-loop trials to run.
        latency_steps: control-loop delay in timesteps (the MINDFUL
            latency budget expressed at the application level).
        train_timesteps: open-loop calibration data length.
        drop_rate: probability each control window's feature packet is
            lost on the link.  The decoder degrades gracefully: it
            holds its last command for the dropped window instead of
            failing (the neural data — and hence the ``rng`` stream —
            is unchanged, so sessions at different drop rates share
            common random numbers).
        drop_rng: dedicated generator for drop decisions; required
            when ``drop_rate`` > 0 so the main stream stays
            byte-identical to a no-fault session.

    Raises:
        ValueError: for negative latency, no trials, or an
            out-of-range/under-specified drop configuration.
    """
    if latency_steps < 0:
        raise ValueError("latency must be non-negative")
    if n_trials <= 0:
        raise ValueError("need at least one trial")
    if not 0.0 <= drop_rate < 1.0:
        raise ValueError("drop_rate must lie in [0, 1)")
    if drop_rate > 0.0 and drop_rng is None:
        raise ValueError("drop_rate > 0 requires a dedicated drop_rng "
                         "(the session rng stream must not change)")
    preferred = user.preferred_directions(rng)

    # Offline calibration: random smooth intents, open loop.
    velocity = np.zeros((train_timesteps, 2))
    for t in range(1, train_timesteps):
        velocity[t] = 0.95 * velocity[t - 1] + 0.1 * rng.standard_normal(2)
    features = np.stack([user.encode(v, preferred, rng)
                         for v in velocity])
    decoder.fit(velocity, features)

    outcome = TaskOutcome(hits=0, trials=n_trials)
    efficiencies = []
    max_steps = int(task.timeout_s / task.dt_s)
    for target in task.targets(n_trials, rng):
        cursor = np.zeros(2)
        pending: list[np.ndarray] = [np.zeros(2)] * latency_steps
        travelled = 0.0
        held_command = np.zeros(2)
        for step in range(max_steps):
            intent = user.intend(cursor, target)
            feature = user.encode(intent, preferred, rng)
            outcome.total_windows += 1
            if drop_rate > 0.0 and drop_rng.random() < drop_rate:
                # Feature packet lost: hold the last decoded command
                # (graceful degradation, not a crash or a zero output).
                outcome.dropped_windows += 1
                command = held_command
            else:
                command = decoder.decode(feature[None, :])[0]
                held_command = command
            pending.append(command)
            applied = pending.pop(0)
            move = applied * task.dt_s * 10.0
            travelled += float(np.linalg.norm(move))
            cursor = cursor + move
            if np.linalg.norm(target - cursor) <= task.target_radius:
                outcome.hits += 1
                outcome.times_to_target_s.append((step + 1) * task.dt_s)
                straight = task.target_distance - task.target_radius
                if travelled > 0:
                    efficiencies.append(straight / travelled)
                break
    outcome.mean_path_efficiency = (float(np.mean(efficiencies))
                                    if efficiencies else 0.0)
    return outcome


def run_closed_loop_cohort(spec, base_seed=None):
    """Vectorized cohort form of :func:`run_closed_loop_session`.

    Runs ``spec.n_sessions`` concurrent closed-loop sessions as batched
    NumPy state (see :mod:`repro.fleet.engine`) and returns the list of
    per-session :class:`repro.fleet.result.SessionResult`.  A 1-session
    cohort is bit-exact against :func:`run_closed_loop_session` driven
    by the same derived cohort stream — that single-session function is
    the registered parity oracle for the fleet engine.
    """
    from repro.fleet.engine import simulate_cohort

    return simulate_cohort(spec, base_seed)


#: Batched entry points and the scalar oracles they must match
#: bit-for-bit (checked by the parity-oracle lint rule and
#: tests/fleet/test_parity.py).
PARITY_ORACLES = {
    "run_closed_loop_cohort": "run_closed_loop_session",
}
