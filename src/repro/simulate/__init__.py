"""Online closed-loop task simulation.

Section 2's real-time requirement ("the system must detect, interpret,
and respond to brain activity before the user perceives any delay") is
ultimately about closed-loop task performance, and the paper's Section 8
calls for evaluating real-time behaviour "at the application level".
This package provides that evaluation harness: a simulated user whose
neural activity encodes intended movement (the closed-loop human
simulator of Cunningham et al., cited in Section 2), a cursor plant, and
a task loop measuring what architects actually care about — hit rate and
time-to-target as functions of decoder quality and loop latency.
"""

from repro.simulate.cursor_task import (
    CursorTask,
    SimulatedUser,
    TaskOutcome,
    run_closed_loop_session,
)

__all__ = [
    "CursorTask",
    "SimulatedUser",
    "TaskOutcome",
    "run_closed_loop_session",
]
