"""Benchmark: disabled-instrumentation overhead on the fig7 driver.

The ``repro.obs`` contract is that instrumentation left in the hot paths
costs < 5 % when disabled (the default), so later perf PRs can trust the
un-traced numbers.  This benchmark verifies the contract two ways:

1. micro: the per-call cost of a disabled ``span()`` / ``inc()`` is
   measured directly and must stay under 2 microseconds;
2. macro: the number of instrumentation events one fig7 run emits is
   counted under full tracing, and (events x per-call disabled cost)
   must stay under 5 % of the driver's measured runtime.
"""

from __future__ import annotations

import timeit

from repro import obs
from repro.experiments import fig7, run_module
from repro.obs import metrics, trace

#: Contract: disabled instrumentation must cost < 5 % of runtime.
MAX_OVERHEAD_FRACTION = 0.05

#: Sanity ceiling on one disabled span()/inc() call (seconds).
MAX_DISABLED_CALL_S = 2e-6


def _disabled_span_cost_s() -> float:
    """Per-call cost of entering+exiting a disabled span."""
    n = 20_000

    def one_span() -> None:
        with trace.span("bench.noop"):
            pass

    return min(timeit.repeat(one_span, number=n, repeat=5)) / n


def _disabled_inc_cost_s() -> float:
    """Per-call cost of a disabled counter increment."""
    n = 20_000
    return min(timeit.repeat(lambda: metrics.inc("bench.noop"),
                             number=n, repeat=5)) / n


def _count_instrumentation_events() -> int:
    """Spans + metric updates emitted by one fully-traced fig7 run."""
    obs.enable_all()
    obs.reset_all()
    try:
        run_module(fig7)
        n_spans = trace.TRACER.span_count()
        n_metric_updates = sum(
            metrics.REGISTRY.snapshot()["counters"].values())
    finally:
        obs.disable_all()
        obs.reset_all()
    # Each counter increment is at most one call site; histograms and
    # gauges are negligible next to the counters here.
    return n_spans + int(n_metric_updates)


def test_bench_obs_disabled_overhead(benchmark):
    assert not trace.tracing_enabled()
    assert not metrics.metrics_enabled()

    runtime_s = benchmark(fig7.run)  # noqa: F841 - timing via .stats
    baseline_s = benchmark.stats.stats.min

    span_cost = _disabled_span_cost_s()
    inc_cost = _disabled_inc_cost_s()
    assert span_cost < MAX_DISABLED_CALL_S, (
        f"disabled span costs {span_cost * 1e9:.0f} ns/call")
    assert inc_cost < MAX_DISABLED_CALL_S, (
        f"disabled inc costs {inc_cost * 1e9:.0f} ns/call")

    n_events = _count_instrumentation_events()
    worst_case_overhead_s = n_events * max(span_cost, inc_cost)
    fraction = worst_case_overhead_s / baseline_s
    print(f"\nfig7: {n_events} instrumentation events, "
          f"{baseline_s * 1e3:.1f} ms baseline, worst-case disabled "
          f"overhead {worst_case_overhead_s * 1e6:.1f} us "
          f"({fraction * 100:.3f}%)")
    assert fraction < MAX_OVERHEAD_FRACTION
