"""Benchmark: second-order factors (memory + routing) vs the Eq. 13 margin.

The paper argues its MAC-only lower bound is conclusive because
second-order microarchitectural factors fit "using the margin between the
lower bound and the total power budget".  This bench folds the activation
memory and interconnect models into the Fig. 10 feasibility check at the
1024-channel standard and measures how much margin they actually consume.
"""

from repro.accel.interconnect import InterconnectModel
from repro.accel.memory import MemoryModel
from repro.accel.schedule import best_schedule
from repro.accel.tech import TECH_45NM
from repro.core.comp_centric import Workload, evaluate_comp_centric
from repro.core.scaling import scale_to_standard
from repro.core.socs import soc_by_number
from repro.dnn.models import build_speech_mlp


def test_bench_second_order_overheads(benchmark):
    def run():
        rows = []
        memory = MemoryModel()
        interconnect = InterconnectModel()
        for number in (1, 2, 5):  # SoCs whose MLP fits at 1024
            soc = scale_to_standard(soc_by_number(number))
            net = build_speech_mlp(1024)
            point = evaluate_comp_centric(soc, Workload.MLP, 1024)
            schedule = best_schedule(net.mac_profiles(),
                                     1.0 / soc.sampling_hz, TECH_45NM)
            margin = point.budget_w - point.total_power_w
            mem_power = memory.power_w(net, schedule, soc.sampling_hz)
            ic_power = interconnect.power_w(net, schedule,
                                            soc.sampling_hz)
            rows.append({
                "soc": soc.name,
                "mac_mw": point.comp_power_w * 1e3,
                "memory_mw": mem_power * 1e3,
                "routing_mw": ic_power * 1e3,
                "margin_mw": margin * 1e3,
                "second_order_fits": mem_power + ic_power <= margin,
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # The paper's premise must hold at the 1024-channel anchor.
    for row in rows:
        assert row["second_order_fits"], row["soc"]
        overhead = row["memory_mw"] + row["routing_mw"]
        assert overhead < row["mac_mw"]
    print()
    from repro.experiments.report import format_table
    print(format_table(rows))
