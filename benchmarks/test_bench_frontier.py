"""Benchmark: the extension strategy-frontier synthesis table."""

from repro.experiments import frontier


def test_bench_frontier(benchmark):
    result = benchmark.pedantic(frontier.run, rounds=1, iterations=1)
    # Every wireless SoC appears with every strategy plus tiling.
    socs = {r["soc"] for r in result.rows}
    assert len(socs) == 8
    # Somebody feasible at 2048 exists for the flagship designs.
    best = result.summary["best_strategy_at_2048"]
    assert best["BISC"] is not None
    print()
    print(frontier.render(result))
