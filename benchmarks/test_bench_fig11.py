"""Benchmark: Fig. 11 — partitioning channel gains."""

import pytest

from repro.experiments import fig11


def test_bench_fig11(benchmark):
    result = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    assert 1.10 <= result.summary["mlp_avg_gain"] <= 1.35
    assert result.summary["dncnn_avg_gain"] == pytest.approx(1.0)
    print()
    print(fig11.render(result))
