"""Benchmark: Fig. 5 — naive vs high-margin power scaling."""

from repro.experiments import fig5


def test_bench_fig5(benchmark):
    result = benchmark(fig5.run)
    assert result.summary["naive_ratio_constant"]
    assert result.summary["high_margin_all_cross"]
    print()
    print(fig5.render(result))
