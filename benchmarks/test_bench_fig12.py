"""Benchmark: Fig. 12 — optimization-ladder model sizes."""

import pytest

from repro.experiments import fig12


def test_bench_fig12(benchmark):
    result = benchmark.pedantic(fig12.run, rounds=1, iterations=1)
    summary = result.summary
    assert summary["avg_model_size_pct_2048_ChDr"] == pytest.approx(
        32.0, abs=12.0)
    assert summary["avg_model_size_pct_8192_ChDr"] == pytest.approx(
        2.0, abs=3.0)
    print()
    print(fig12.render(result))
