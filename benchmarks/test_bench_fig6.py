"""Benchmark: Fig. 6 — sensing-area fraction scaling."""

from repro.experiments import fig6


def test_bench_fig6(benchmark):
    result = benchmark(fig6.run)
    assert result.summary["naive_flat"]
    assert result.summary["high_margin_monotone"]
    assert result.summary["high_margin_mean_at_8192"] > 0.8
    print()
    print(fig6.render(result))
