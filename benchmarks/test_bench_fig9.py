"""Benchmark: Fig. 9 — accelerator design-point power study."""

import pytest

from repro.experiments import fig9


def test_bench_fig9(benchmark):
    result = benchmark(fig9.run)
    assert result.summary["pe_fraction_designs_1_5"] == pytest.approx(
        0.25, abs=0.05)
    assert result.summary["pe_fraction_design_12"] == pytest.approx(
        0.96, abs=0.03)
    print()
    print(fig9.render(result))
