"""Benchmark: Fig. 10 — on-implant DNN power vs budget."""

from repro.experiments import fig10


def test_bench_fig10(benchmark):
    result = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    summary = result.summary
    assert "BISC" in summary["dncnn_fits_at_1024"]
    assert 1300 <= summary["mlp_avg_max_channels"] <= 2100
    assert 1100 <= summary["dncnn_avg_max_channels"] <= 1700
    print()
    print(fig10.render(result))
