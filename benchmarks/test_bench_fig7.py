"""Benchmark: Fig. 7 — minimum QAM efficiency vs channel count."""

import pytest

from repro.experiments import fig7


def test_bench_fig7(benchmark):
    result = benchmark(fig7.run)
    # Paper: ~2x channels at 20 % efficiency, ~4x at 100 %.
    assert result.summary["multiplier_at_20pct"] == pytest.approx(
        2.0, rel=0.15)
    assert result.summary["multiplier_at_100pct"] == pytest.approx(
        4.0, rel=0.20)
    print()
    print(fig7.render(result))
