"""Cold-vs-warm cache benchmarks, persisted to ``BENCH_cache.json``.

Times the full ``evaluate --seed 7`` pipeline through the
content-addressed cache (:mod:`repro.cache`): a cold run that computes
and publishes every driver, then a warm run that replays all of them.
The issue's contract — warm >= 5x faster than cold with byte-identical
CSVs — is asserted on the full run; ``REPRO_BENCH_QUICK=1`` (CI) keeps
the same JSON shape but asserts only sanity (warm faster than cold and
all drivers hitting), since shared runners make tight wall-clock ratios
flaky.

A second entry times the stage layer in isolation: a Monte-Carlo BER
sweep, cold vs warm, through a dedicated store.
"""

from __future__ import annotations

import json
import os
import shutil
import time
import timeit
from pathlib import Path

import numpy as np

from repro.cache import CacheStore, stage_caching
from repro.experiments import run_all
from repro.link.channel import measure_ber_sweep
from repro.link.modulation import MQAM

#: Where the cold/warm numbers land (repo root, next to BENCH_perf.json).
BENCH_CACHE_PATH = Path(__file__).resolve().parents[1] / "BENCH_cache.json"

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Contract from the cache issue: warm full evaluation >= 5x cold.
MIN_WARM_SPEEDUP = 5.0


def _entry(name: str, cold_s: float, warm_s: float, **extra) -> dict:
    return {"name": name,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": cold_s / warm_s if warm_s else float("inf"),
            **extra}


def _csv_bytes(directory: Path) -> dict[str, bytes]:
    return {path.name: path.read_bytes()
            for path in sorted(directory.glob("*.csv"))}


def _bench_run_all(entries: list[dict], tmp_path: Path) -> None:
    output_dir = tmp_path / "cached"
    plain_dir = tmp_path / "plain"
    run_all(output_dir=plain_dir, seed=7)

    start = time.perf_counter()
    cold = run_all(output_dir=output_dir, seed=7, cache=True)
    cold_s = time.perf_counter() - start
    assert all(not r.cache_info["hit"] for r in cold)
    assert _csv_bytes(output_dir) == _csv_bytes(plain_dir)

    start = time.perf_counter()
    warm = run_all(output_dir=output_dir, seed=7, cache=True)
    warm_s = time.perf_counter() - start
    assert all(r.cache_info["hit"] for r in warm)
    assert _csv_bytes(output_dir) == _csv_bytes(plain_dir)

    entries.append(_entry("evaluate_seed7", cold_s, warm_s,
                          drivers=len(warm), artifacts_identical=True))
    assert warm_s < cold_s, (
        f"warm evaluate ({warm_s:.3f}s) not faster than cold "
        f"({cold_s:.3f}s)")
    if not QUICK:
        assert cold_s / warm_s >= MIN_WARM_SPEEDUP, (
            f"warm evaluate only {cold_s / warm_s:.1f}x faster")
    shutil.rmtree(output_dir, ignore_errors=True)
    shutil.rmtree(plain_dir, ignore_errors=True)


def _bench_stage(entries: list[dict], tmp_path: Path) -> None:
    store = CacheStore(tmp_path / "stage-cache")
    scheme = MQAM(4)
    grid = np.linspace(2.0, 12.0, 4 if QUICK else 11)
    n_bits = 20_000 if QUICK else 400_000

    def sweep() -> np.ndarray:
        with stage_caching(store):
            return measure_ber_sweep(scheme, grid, n_bits,
                                     rng=np.random.default_rng(3))

    cold_s = timeit.timeit(sweep, number=1)
    cold_result = sweep()  # second call: warm (same key), kept to check
    warm_s = min(timeit.repeat(sweep, number=1, repeat=3))
    assert np.array_equal(cold_result, sweep())
    entries.append(_entry("ber_sweep_stage", cold_s, warm_s,
                          points=len(grid), n_bits=n_bits))


def test_bench_cache(tmp_path):
    """Time cold vs warm runs and persist ``BENCH_cache.json``."""
    entries: list[dict] = []
    _bench_run_all(entries, tmp_path)
    _bench_stage(entries, tmp_path)

    for entry in entries:
        assert entry["warm_s"] > 0
    payload = {
        "quick": QUICK,
        "cpus": os.cpu_count() or 1,
        "entries": entries,
    }
    BENCH_CACHE_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    from repro.obs.manifest import build_manifest, write_manifest
    manifest = build_manifest(
        "bench_cache",
        extra={"quick": QUICK,
               "speedups": {e["name"]: round(e["speedup"], 2)
                            for e in entries}})
    write_manifest(Path("results") / "bench_cache_manifest.json",
                   manifest)

    lines = [f"{e['name']:>20}: {e['cold_s'] * 1e3:9.2f} ms cold -> "
             f"{e['warm_s'] * 1e3:9.2f} ms warm ({e['speedup']:6.1f}x)"
             for e in entries]
    print("\n" + "\n".join(lines))
