"""Benchmark: the Section 3.2 uniform-dissipation assumption, quantified.

Solves the 2-D chip heat equation for a worst-case concentrated power map
and reports the hotspot ratio across die thicknesses — the condition
under which a single 40 mW/cm^2 density figure is a faithful safety
metric.
"""

from repro.experiments.report import format_table
from repro.thermal.grid import ChipThermalGrid

BISC_POWER_W = 38.9e-3


def test_bench_thermal_uniformity(benchmark):
    def run():
        rows = []
        for thickness_um in (10, 25, 100, 300):
            grid = ChipThermalGrid(nx=24, ny=24,
                                   thickness_m=thickness_um * 1e-6)
            rows.append({
                "die_thickness_um": thickness_um,
                "hotspot_ratio": grid.hotspot_ratio(BISC_POWER_W, 0.05),
                "uniform_rise_k": float(
                    grid.solve(grid.uniform_map(BISC_POWER_W)).mean()),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    ratios = [row["hotspot_ratio"] for row in rows]
    # Thicker silicon -> flatter temperature field (monotone).
    assert ratios == sorted(ratios, reverse=True)
    # A standard-thickness die keeps the hotspot within ~2x of uniform.
    assert rows[-1]["hotspot_ratio"] < 2.0
    # The uniform field matches the 1-D model the budget relies on.
    assert abs(rows[0]["uniform_rise_k"] - rows[-1]["uniform_rise_k"]) \
        < 1e-9
    print()
    print(format_table(rows))
