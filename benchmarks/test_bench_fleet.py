"""Before/after benchmark for the vectorized fleet engine, persisted
to ``BENCH_fleet.json`` at the repo root.

The *before* case is the honest population-scale baseline: a Python
loop running one :func:`repro.simulate.cursor_task.
run_closed_loop_session` per session, each with its own derived
stream — exactly how PR 8 and earlier would have simulated a cohort.
The *after* case is :func:`repro.fleet.simulate_cohort`: the same
number of sessions carried as ``(n_sessions, …)`` batched NumPy state
with one batched decode per control window.  Bit-level agreement of
the two paths is asserted separately (tests/fleet/test_parity.py);
this file measures the speedup on the shipping configuration
(10k-session Kalman cohort; contract >= 5x, target >= 20x).

Set ``REPRO_BENCH_QUICK=1`` (CI does) for a reduced-size smoke run:
same comparison and the same JSON shape, fewer sessions and no
speedup assertion beyond basic sanity.
"""

from __future__ import annotations

import json
import os
import timeit
from pathlib import Path

from repro.decoders import KalmanFilterDecoder
from repro.fleet import CohortSpec, simulate_cohort
from repro.obs.manifest import seeded_rng
from repro.perf.seeds import derive_stream_seed
from repro.simulate.cursor_task import run_closed_loop_session

#: Where the before/after numbers land (repo root, next to ROADMAP.md).
BENCH_FLEET_PATH = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Fleet-engine contract: the batched cohort must beat the looped
#: single-session baseline by at least this much at 10k sessions.
MIN_FLEET_SPEEDUP = 5.0

#: The issue's stated target (recorded in the JSON, not asserted —
#: host-dependent BLAS throughput decides how far past 5x it lands).
TARGET_FLEET_SPEEDUP = 20.0

#: Sessions in the measured cohort.
N_SESSIONS = 256 if QUICK else 10_000

#: Shared session shape (matches the fleet driver's default cohorts).
SESSION_KW = dict(n_trials=4, train_timesteps=160, timeout_s=2.0,
                  n_channels=16)


def _looped_sessions(n_sessions: int, base_seed: int) -> list:
    """The before case: one scalar closed-loop session per stream."""
    spec = CohortSpec(name="bench", **SESSION_KW)
    outcomes = []
    for index in range(n_sessions):
        rng = seeded_rng(derive_stream_seed(base_seed, "bench",
                                            str(index)))
        outcomes.append(run_closed_loop_session(
            KalmanFilterDecoder(), spec.user(), spec.task(), rng,
            n_trials=spec.n_trials,
            train_timesteps=spec.train_timesteps))
    return outcomes


def _best_seconds(func, *, repeat: int) -> float:
    """Minimum wall-clock seconds per call across repeats."""
    return min(timeit.repeat(func, number=1, repeat=repeat))


def test_bench_fleet_cohort():
    """Time looped scalar sessions vs the batched cohort engine."""
    spec = CohortSpec(name="bench", n_sessions=N_SESSIONS,
                      decoder="kalman", **SESSION_KW)

    # The scalar loop is minutes at 10k sessions — time one honest
    # pass; the fleet path is cheap enough to take the best of three.
    before = _best_seconds(lambda: _looped_sessions(N_SESSIONS, 7),
                           repeat=1)
    after = _best_seconds(lambda: simulate_cohort(spec, 7),
                          repeat=1 if QUICK else 3)

    sessions = simulate_cohort(spec, 7)
    assert len(sessions) == N_SESSIONS
    assert sum(s.hits for s in sessions) > 0

    speedup = before / after if after else float("inf")
    payload = {
        "quick": QUICK,
        "cpus": os.cpu_count() or 1,
        "entries": [{
            "name": f"fleet_cohort_{N_SESSIONS}",
            "before_s": before,
            "after_s": after,
            "speedup": speedup,
            "sessions": N_SESSIONS,
            "decoder": "kalman",
            "n_trials": SESSION_KW["n_trials"],
            "train_timesteps": SESSION_KW["train_timesteps"],
            "min_speedup": MIN_FLEET_SPEEDUP,
            "target_speedup": TARGET_FLEET_SPEEDUP,
        }],
    }
    BENCH_FLEET_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    from repro.obs.manifest import build_manifest, write_manifest
    manifest = build_manifest(
        "bench_fleet",
        extra={"quick": QUICK, "sessions": N_SESSIONS,
               "speedup": round(speedup, 2)})
    write_manifest(Path("results") / "bench_fleet_manifest.json",
                   manifest)

    from repro.obs.bench import append_history, history_record
    append_history(history_record(payload["entries"], quick=QUICK,
                                  cpus=payload["cpus"]),
                   Path("results") / "bench_history.jsonl")

    print(f"\nfleet_cohort_{N_SESSIONS}: {before:8.2f} s -> "
          f"{after:8.3f} s  ({speedup:6.1f}x)")
    if not QUICK:
        assert speedup >= MIN_FLEET_SPEEDUP, (
            f"fleet cohort only {speedup:.1f}x over looped "
            f"single-session at {N_SESSIONS} sessions")
