"""Ablation benchmarks for the framework's design choices.

Each benchmark varies one modeling decision and reports its effect on a
headline result, quantifying the sensitivity of the reproduction:

* pipelined vs non-pipelined MAC scheduling (Eq. 11 vs Eq. 14),
* receiver noise figure (the Fig. 7 calibration knob),
* earliest-layer vs power-optimal partitioning,
* input-window size of the workloads,
* wireless-power-transfer losses applied to the Fig. 10 frontier,
* lossless-compression ratio on the raw-streaming frontier.
"""

import pytest

from repro.accel.schedule import schedule_non_pipelined, schedule_pipelined
from repro.accel.tech import TECH_45NM
from repro.core.comp_centric import Workload, max_feasible_channels
from repro.core.partitioning import max_feasible_channels_partitioned
from repro.core.qam_design import max_channels_at_efficiency
from repro.core.scaling import scale_to_standard
from repro.core.socs import soc_by_number
from repro.dnn.models import build_speech_mlp
from repro.link.budget import LinkBudget
from repro.link.wpt import InductiveLink


@pytest.fixture(scope="module")
def bisc():
    return scale_to_standard(soc_by_number(1))


def test_bench_ablation_scheduling_mode(benchmark, bisc):
    """Pipelining reduces the MAC-unit count for the deep MLP."""

    def run():
        results = {}
        deadline = 1.0 / bisc.sampling_hz
        for n in (1024, 2048):
            profiles = build_speech_mlp(n).mac_profiles()
            pooled = schedule_non_pipelined(profiles, deadline, TECH_45NM)
            piped = schedule_pipelined(profiles, deadline, TECH_45NM)
            results[n] = (pooled.mac_units if pooled else None,
                          piped.mac_units if piped else None)
        return results

    results = benchmark(run)
    for n, (pooled, piped) in results.items():
        assert pooled is not None and piped is not None
        # The best-of-both rule exists because neither dominates a priori;
        # for this workload the pipeline should never be more than ~2x
        # the pool and usually wins.
        assert piped <= 2 * pooled
    print()
    print(f"MAC units (pooled, pipelined) per n: {results}")


def test_bench_ablation_noise_figure(benchmark, bisc):
    """Fig. 7 multipliers shift by <2x across plausible noise figures."""

    def run():
        out = {}
        for nf in (5.0, 7.0, 9.0):
            budget = LinkBudget(noise_figure_db=nf)
            out[nf] = max_channels_at_efficiency(bisc, 0.20, budget)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    values = list(results.values())
    assert values == sorted(values, reverse=True)  # lower NF -> more ch
    assert values[0] <= 2 * values[-1]
    print()
    print(f"max channels at 20% efficiency by NF: {results}")


def test_bench_ablation_partition_rule(benchmark, bisc):
    """Power-optimal partitioning never trails the earliest-layer rule."""

    def run():
        earliest = max_feasible_channels_partitioned(
            bisc, Workload.MLP, rule="earliest")
        optimal = max_feasible_channels_partitioned(
            bisc, Workload.MLP, rule="optimal")
        return earliest, optimal

    earliest, optimal = benchmark.pedantic(run, rounds=1, iterations=1)
    assert optimal >= earliest
    print()
    print(f"partitioned max channels: earliest={earliest} "
          f"optimal={optimal}")


def test_bench_ablation_input_window(benchmark, bisc):
    """Doubling the input window shrinks the MLP frontier (bigger first
    layer), but sublinearly — later layers dominate at scale."""

    def run():
        import repro.core.comp_centric as comp

        def limit(window):
            def builder(n):
                return build_speech_mlp(n, window=window)
            original = comp._BUILDERS[Workload.MLP]
            comp._BUILDERS[Workload.MLP] = builder
            try:
                return max_feasible_channels(bisc, Workload.MLP)
            finally:
                comp._BUILDERS[Workload.MLP] = original

        return {window: limit(window) for window in (2, 4)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results[4] < results[2]
    assert results[4] > results[2] / 2
    print()
    print(f"MLP max channels by input window: {results}")


def test_bench_ablation_wpt_budget(benchmark, bisc):
    """WPT receive losses shrink the Fig. 10 frontier measurably."""

    def run():
        wired = max_feasible_channels(bisc, Workload.MLP)
        # Fold the WPT receive chain into the budget and re-run: only
        # eta_rx of the thermal budget is available as useful power.
        from repro.core import comp_centric

        eta = InductiveLink().implant_chain_efficiency

        def frontier_with_wpt():
            best, n = 0, 64
            while n <= 8192:
                point = comp_centric.evaluate_comp_centric(
                    bisc, Workload.MLP, n)
                budget = point.budget_w * eta
                if point.total_power_w <= budget:
                    best = n
                elif best:
                    break
                n += 64
            return best

        return wired, frontier_with_wpt()

    wired, wpt = benchmark.pedantic(run, rounds=1, iterations=1)
    assert wpt < wired
    print()
    print(f"MLP max channels: wired budget={wired}, WPT-derated={wpt}")


def test_bench_ablation_compression_ratio(benchmark, bisc):
    """Streaming frontier scales with the lossless compression ratio."""

    def run():
        from repro.core.explorer import _max_channels_compressed
        return {ratio: _max_channels_compressed(bisc, ratio, 2e-7)
                for ratio in (1.0, 1.5, 2.0, 3.0)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    values = list(results.values())
    assert values == sorted(values)
    print()
    print(f"compressed-streaming frontier by ratio: {results}")
