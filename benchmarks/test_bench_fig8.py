"""Benchmark: Fig. 8 — MAC decomposition worked examples."""

from repro.experiments import fig8


def test_bench_fig8(benchmark):
    result = benchmark(fig8.run)
    assert result.summary["matmul_matches_paper"]
    assert result.summary["conv_matches_paper"]
    print()
    print(fig8.render(result))
