"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure under pytest-benchmark
timing and asserts its headline shape, so `pytest benchmarks/
--benchmark-only` doubles as the full-evaluation reproduction run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.scaling import scale_to_standard
from repro.core.socs import wireless_socs

#: Where the per-session benchmark manifest lands.
BENCH_MANIFEST_PATH = Path("results") / "bench_manifest.json"


@pytest.fixture(scope="session")
def wireless_scaled():
    """SoCs 1-8 at the 1024-channel anchor."""
    return [scale_to_standard(record) for record in wireless_socs()]


def pytest_sessionfinish(session, exitstatus):
    """Write one ``results/bench_manifest.json`` per benchmark session.

    Every benchmark's timing flows through the metrics layer
    (histograms named ``bench.<test>.seconds``) and the snapshot is
    persisted with full run provenance, so ``BENCH_*.json``-style
    trajectories can always be correlated against the code and
    environment that produced them.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None)
    if not benchmarks:
        return
    from repro.obs.manifest import build_manifest, write_manifest
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    for bench in benchmarks:
        try:
            stats = bench.stats
            name = bench.name
            mean_s = float(stats.mean)
            min_s = float(stats.min)
        except Exception:  # stats absent (e.g. --benchmark-disable)
            continue
        registry.inc("bench.runs")
        registry.observe(f"bench.{name}.seconds", mean_s)
        registry.observe(f"bench.{name}.min_seconds", min_s)
    manifest = build_manifest(
        "bench",
        extra={"exit_status": int(exitstatus),
               "n_benchmarks": len(benchmarks),
               "metrics": registry.snapshot()})
    write_manifest(BENCH_MANIFEST_PATH, manifest)
