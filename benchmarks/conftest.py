"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure under pytest-benchmark
timing and asserts its headline shape, so `pytest benchmarks/
--benchmark-only` doubles as the full-evaluation reproduction run.
"""

from __future__ import annotations

import pytest

from repro.core.scaling import scale_to_standard
from repro.core.socs import wireless_socs


@pytest.fixture(scope="session")
def wireless_scaled():
    """SoCs 1-8 at the 1024-channel anchor."""
    return [scale_to_standard(record) for record in wireless_socs()]
