"""Benchmark: Table 1 regeneration."""

from repro.experiments import table1


def test_bench_table1(benchmark):
    result = benchmark(table1.run)
    assert len(result.rows) == 11
    assert result.summary["n_wireless"] == 8
    print()
    print(table1.render(result))
