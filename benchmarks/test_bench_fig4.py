"""Benchmark: Fig. 4 — power vs area at 1024 channels."""

from repro.experiments import fig4


def test_bench_fig4(benchmark):
    result = benchmark(fig4.run)
    assert result.summary["all_safe"]
    assert result.summary["max_density_mw_cm2"] <= 40.0 + 1e-9
    print()
    print(fig4.render(result))
