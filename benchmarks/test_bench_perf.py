"""Before/after benchmarks for the vectorized kernels and the parallel
experiment engine, persisted to ``BENCH_perf.json`` at the repo root.

Each entry times the retained reference implementation (the parity
oracle) against the vectorized production path on the same inputs, so the
JSON records honest speedups for the exact code in the tree:

* ``rice_encode`` / ``rice_decode`` — string oracle vs packed ``uint8``
  codec on a 64k-sample residual block (the contract is >= 10x encode);
* ``optimal_rice_parameter`` — per-k Python loop vs the all-k array pass;
* ``thermal_assemble`` — lil-matrix double loop vs vectorized coo
  assembly;
* ``compressed_frontier`` — scalar step-scan vs vectorized grid
  narrowing;
* ``ber_sweep`` — per-point ``measure_ber`` calls vs the batched
  common-random-numbers sweep;
* ``mc_grid_batch`` — per-(scheme, point) ``measure_ber`` calls vs one
  whole-grid ``measure_ber_grid`` pass (>= 5x contract);
* ``run_all_jobs4`` — serial vs a *cold* ``jobs=4`` run (pool startup
  included);
* ``run_all_warm_jobs4`` — serial vs a second ``jobs=4`` run against
  the already-warm persistent pool (the >= 2.5x contract only applies
  on multi-core hosts; single-CPU runners record the honest number
  without asserting it).

Set ``REPRO_BENCH_QUICK=1`` (CI does) for a reduced-size smoke run: same
comparisons and the same JSON shape, smaller inputs and no speedup
assertions beyond basic sanity.
"""

from __future__ import annotations

import json
import os
import shutil
import timeit
from pathlib import Path

import numpy as np

from repro.compress.rice import (
    optimal_rice_parameter,
    rice_decode,
    rice_decode_packed,
    rice_encode,
    rice_encode_packed,
    zigzag,
)
from repro.core.explorer import (
    _compressed_stream_ratio,
    _max_channels_compressed,
)
from repro.core.scaling import scale_to_standard
from repro.core.socs import soc_by_number
from repro.experiments import run_all
from repro.link.channel import (measure_ber, measure_ber_grid,
                                measure_ber_sweep)
from repro.link.modulation import BPSK, MQAM, OOK, QPSK
from repro.perf.pool import shutdown_pool
from repro.thermal.grid import ChipThermalGrid

#: Where the before/after numbers land (repo root, next to ROADMAP.md).
BENCH_PERF_PATH = Path(__file__).resolve().parents[1] / "BENCH_perf.json"

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: Contract from the perf issue: packed Rice encode >= 10x on 64k blocks.
MIN_RICE_SPEEDUP = 10.0

#: Parallel fan-out contract — only meaningful with real parallelism.
MIN_RUN_ALL_SPEEDUP = 2.0

#: Warm-pool contract: with workers already up, ``jobs=4`` must beat
#: serial by more than the cold pool does (no startup to amortize).
MIN_RUN_ALL_WARM_SPEEDUP = 2.5

#: Whole-grid Monte-Carlo batching contract.
MIN_MC_GRID_SPEEDUP = 5.0


def _best_seconds(func, *, repeat: int = 3, number: int = 1) -> float:
    """Minimum wall-clock seconds per call across repeats."""
    return min(timeit.repeat(func, number=number, repeat=repeat)) / number


def _entry(name: str, before_s: float, after_s: float,
           **extra) -> dict:
    return {"name": name,
            "before_s": before_s,
            "after_s": after_s,
            "speedup": before_s / after_s if after_s else float("inf"),
            **extra}


def _bench_rice(entries: list[dict]) -> None:
    n = 4096 if QUICK else 65536
    rng = np.random.default_rng(7)
    # Delta-coded neural samples: small residuals (k around 5).
    residuals = rng.integers(-200, 200, size=n).astype(np.int64)
    k = optimal_rice_parameter(residuals)

    encode_before = _best_seconds(lambda: rice_encode(residuals, k))
    encode_after = _best_seconds(lambda: rice_encode_packed(residuals, k))
    bits = rice_encode(residuals, k)
    stream = rice_encode_packed(residuals, k)
    decode_before = _best_seconds(lambda: rice_decode(bits, k, n))
    decode_after = _best_seconds(
        lambda: rice_decode_packed(stream, k, n), number=3)

    entries.append(_entry("rice_encode_64k", encode_before, encode_after,
                          block_samples=n, k=int(k)))
    entries.append(_entry("rice_decode_64k", decode_before, decode_after,
                          block_samples=n, k=int(k)))
    if not QUICK:
        assert encode_before / encode_after >= MIN_RICE_SPEEDUP, (
            f"packed Rice encode only "
            f"{encode_before / encode_after:.1f}x on {n} samples")
        assert decode_before / decode_after >= MIN_RICE_SPEEDUP, (
            f"packed Rice decode only "
            f"{decode_before / decode_after:.1f}x on {n} samples")


def _reference_optimal_k(values: np.ndarray, max_k: int = 24) -> int:
    """The original per-k float scan (the before case — also the float64
    exactness bug the integer rewrite fixed)."""
    unsigned = zigzag(values).astype(np.float64)
    best_k, best_bits = 0, float("inf")
    for k in range(max_k + 1):
        bits = float(np.sum(np.floor(unsigned / (1 << k))) +
                     unsigned.size * (1 + k))
        if bits < best_bits:
            best_k, best_bits = k, bits
    return best_k


def _bench_optimal_k(entries: list[dict]) -> None:
    n = 4096 if QUICK else 65536
    rng = np.random.default_rng(11)
    residuals = rng.integers(-500, 500, size=n).astype(np.int64)
    assert _reference_optimal_k(residuals) == optimal_rice_parameter(
        residuals)
    before = _best_seconds(lambda: _reference_optimal_k(residuals))
    after = _best_seconds(lambda: optimal_rice_parameter(residuals))
    entries.append(_entry("optimal_rice_parameter", before, after,
                          block_samples=n))


def _bench_thermal(entries: list[dict]) -> None:
    grid = ChipThermalGrid(nx=16, ny=16) if QUICK else ChipThermalGrid()
    power = grid.hotspot_map(30e-3)
    before = _best_seconds(lambda: grid._assemble_reference(power))
    after = _best_seconds(lambda: grid._assemble(power),
                          number=5)
    entries.append(_entry("thermal_assemble", before, after,
                          nx=grid.nx, ny=grid.ny))


def _bench_frontier(entries: list[dict]) -> None:
    soc = scale_to_standard(soc_by_number(1))
    ratio, codec = 3.0, 2e-7  # the explore() defaults
    n_limit = 1 << 14 if QUICK else 1 << 18

    def before_scan() -> int:
        best, n = 0, 1
        while n <= n_limit:
            if _compressed_stream_ratio(soc, n, ratio, codec) <= 1.0:
                best = n
            elif best:
                break
            n += 64
        return best

    after_exact = _max_channels_compressed(soc, ratio, codec,
                                           n_limit=n_limit)
    # The step scan under-reports by up to step-1; exact must dominate.
    assert 0 <= after_exact - before_scan() < 64
    before = _best_seconds(before_scan)
    after = _best_seconds(
        lambda: _max_channels_compressed(soc, ratio, codec,
                                         n_limit=n_limit))
    entries.append(_entry("compressed_frontier", before, after,
                          n_limit=n_limit, step_before=64))


def _bench_ber_sweep(entries: list[dict]) -> None:
    scheme = MQAM(4)
    grid = np.linspace(2.0, 12.0, 4 if QUICK else 11)
    n_bits = 20_000 if QUICK else 400_000
    rng = np.random.default_rng(3)

    def per_point() -> None:
        for point in grid:
            measure_ber(scheme, float(point), n_bits,
                        rng=np.random.default_rng(3))

    before = _best_seconds(per_point, repeat=2)
    after = _best_seconds(
        lambda: measure_ber_sweep(scheme, grid, n_bits,
                                  rng=np.random.default_rng(3)),
        repeat=2)
    entries.append(_entry("ber_sweep", before, after,
                          points=len(grid), n_bits=n_bits))
    del rng


def _bench_mc_grid(entries: list[dict]) -> None:
    """Whole-grid Monte-Carlo batching vs per-(scheme, point) calls."""
    schemes = [OOK(), BPSK(), QPSK()]
    grid = np.linspace(2.0, 12.0, 4 if QUICK else 21)
    n_bits = 20_000 if QUICK else 400_000

    def per_point() -> None:
        for index, scheme in enumerate(schemes):
            rng = np.random.default_rng(100 + index)
            for point in grid:
                measure_ber(scheme, float(point), n_bits, rng=rng)

    before = _best_seconds(per_point, repeat=2)
    after = _best_seconds(
        lambda: measure_ber_grid(schemes, grid, n_bits, seed=3),
        repeat=2)
    entries.append(_entry("mc_grid_batch", before, after,
                          schemes=len(schemes), points=len(grid),
                          n_bits=n_bits))
    if not QUICK:
        assert before / after >= MIN_MC_GRID_SPEEDUP, (
            f"measure_ber_grid only {before / after:.2f}x over "
            f"per-point calls")


def _bench_run_all(entries: list[dict], tmp_path: Path) -> None:
    jobs = 4
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    warm_dir = tmp_path / "warm"
    before = _best_seconds(
        lambda: run_all(output_dir=serial_dir, seed=2026,
                        include_extensions=True),
        repeat=1)
    shutdown_pool()  # cold number includes warm-pool startup
    after = _best_seconds(
        lambda: run_all(output_dir=parallel_dir, seed=2026,
                        include_extensions=True, jobs=jobs),
        repeat=1)
    # The pool persisted across the cold run; every worker is now warm.
    warm_after = _best_seconds(
        lambda: run_all(output_dir=warm_dir, seed=2026,
                        include_extensions=True, jobs=jobs),
        repeat=1)
    shutdown_pool()

    serial_csvs = {p.name: p.read_bytes()
                   for p in sorted(serial_dir.glob("*.csv"))}
    parallel_csvs = {p.name: p.read_bytes()
                     for p in sorted(parallel_dir.glob("*.csv"))}
    warm_csvs = {p.name: p.read_bytes()
                 for p in sorted(warm_dir.glob("*.csv"))}
    assert serial_csvs and serial_csvs == parallel_csvs == warm_csvs

    cpus = os.cpu_count() or 1
    # On a single-CPU host jobs=4 cannot beat serial; record the
    # honest number but tag it gated so the perf-trajectory gate
    # neither fails on it nor bakes it into a baseline.
    gated = cpus < 2
    entries.append(_entry("run_all_jobs4", before, after,
                          jobs=jobs, cpus=cpus,
                          artifacts_identical=True, gated=gated))
    entries.append(_entry("run_all_warm_jobs4", before, warm_after,
                          jobs=jobs, cpus=cpus,
                          artifacts_identical=True, gated=gated))
    if not QUICK and cpus >= 2:
        assert before / after >= MIN_RUN_ALL_SPEEDUP, (
            f"run_all(jobs={jobs}) only {before / after:.2f}x "
            f"on {cpus} CPUs")
        assert before / warm_after >= MIN_RUN_ALL_WARM_SPEEDUP, (
            f"warm run_all(jobs={jobs}) only "
            f"{before / warm_after:.2f}x on {cpus} CPUs")
    shutil.rmtree(serial_dir, ignore_errors=True)
    shutil.rmtree(parallel_dir, ignore_errors=True)
    shutil.rmtree(warm_dir, ignore_errors=True)


def test_bench_perf_kernels(tmp_path):
    """Time every before/after pair and persist ``BENCH_perf.json``."""
    entries: list[dict] = []
    _bench_rice(entries)
    _bench_optimal_k(entries)
    _bench_thermal(entries)
    _bench_frontier(entries)
    _bench_ber_sweep(entries)
    _bench_mc_grid(entries)
    _bench_run_all(entries, tmp_path)

    for entry in entries:
        assert entry["after_s"] > 0
    payload = {
        "quick": QUICK,
        "cpus": os.cpu_count() or 1,
        "entries": entries,
    }
    BENCH_PERF_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    from repro.obs.manifest import build_manifest, write_manifest
    manifest = build_manifest(
        "bench_perf",
        extra={"quick": QUICK,
               "speedups": {e["name"]: round(e["speedup"], 2)
                            for e in entries}})
    write_manifest(Path("results") / "bench_manifest.json", manifest)

    # Every run also extends the perf trajectory the CI bench-gate
    # compares against (keyed by git SHA + quick/cpus config, so smoke
    # runs never pollute full-run baselines).
    from repro.obs.bench import append_history, history_record
    append_history(history_record(entries, quick=QUICK,
                                  cpus=payload["cpus"]),
                   Path("results") / "bench_history.jsonl")

    lines = [f"{e['name']:>24}: {e['before_s'] * 1e3:9.2f} ms -> "
             f"{e['after_s'] * 1e3:9.2f} ms  ({e['speedup']:6.1f}x)"
             for e in entries]
    print("\n" + "\n".join(lines))
