"""Analyzer-performance guard: whole-repo analysis stays under budget.

The whole-program analyzer (symbol table, call graph, per-function CFGs,
path-sensitive lifecycle walk, two interprocedural fixpoints) runs as a
blocking CI gate, so its wall-clock cost is a product property: if a
refactor makes path enumeration explode, CI should say so *here*, not
as a mysteriously slow ``analyze`` job.  The full ``src/ + tests/``
scan with all twelve rules must finish inside ``MAX_ANALYZE_S``, and
the measured timing is appended to the perf-trajectory ledger
(``results/bench_history.jsonl``) alongside the kernel benchmarks so
``repro obs bench-gate`` watches analyzer drift too.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.analysis import all_rules, collect_files, run_rules
from repro.obs.bench import append_history, history_record

REPO_ROOT = Path(__file__).resolve().parents[1]

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: CI wall-clock budget for one full-repo analysis (issue contract).
MAX_ANALYZE_S = 30.0


def test_full_repo_analysis_stays_under_budget():
    paths = [REPO_ROOT / "src", REPO_ROOT / "tests"]

    start = time.perf_counter()
    files = collect_files(paths)
    parse_s = time.perf_counter() - start

    start = time.perf_counter()
    findings = run_rules(files)
    rules_s = time.perf_counter() - start

    total_s = parse_s + rules_s
    assert files, "the repo scan found no files"
    assert total_s < MAX_ANALYZE_S, (
        f"full-repo analyze took {total_s:.1f}s "
        f"(budget {MAX_ANALYZE_S:.0f}s); the analyzer gate would "
        f"dominate CI")
    # The repo itself must stay gate-clean modulo the baseline: only
    # the grandfathered lda.py epsilon may surface.
    assert all(finding.path.endswith("decoders/lda.py")
               for finding in findings), [
        f"{f.path}:{f.line} [{f.rule}]" for f in findings
        if not f.path.endswith("decoders/lda.py")]

    record = history_record(
        entries=[{"name": "analyze_full_repo", "after_s": total_s,
                  "speedup": 1.0}],
        quick=QUICK,
        cpus=os.cpu_count() or 1)
    record["kernels"]["analyze_full_repo"]["n_files"] = len(files)
    record["kernels"]["analyze_full_repo"]["n_rules"] = len(all_rules())
    append_history(record, REPO_ROOT / "results" / "bench_history.jsonl")
