"""Hypothesis property tests for the extension substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress.delta import delta_decode, delta_encode
from repro.compress.rice import (
    encoded_length_bits,
    optimal_rice_parameter,
    rice_decode,
    rice_encode,
    unzigzag,
    zigzag,
)
from repro.dnn.quantize import quantize_tensor
from repro.link.wpt import InductiveLink


# ---------------------------------------------------------------- zigzag
@given(st.lists(st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
                min_size=1, max_size=100))
def test_zigzag_round_trip(values):
    array = np.array(values, dtype=np.int64)
    np.testing.assert_array_equal(unzigzag(zigzag(array)), array)


@given(st.lists(st.integers(min_value=-1000, max_value=1000),
                min_size=1, max_size=50))
def test_zigzag_is_non_negative(values):
    assert np.all(zigzag(np.array(values)) >= 0)


# ------------------------------------------------------------------ rice
@given(st.lists(st.integers(min_value=-500, max_value=500),
                min_size=1, max_size=40),
       st.integers(min_value=0, max_value=8))
@settings(max_examples=50)
def test_rice_round_trip(values, k):
    array = np.array(values, dtype=np.int64)
    bits = rice_encode(array, k)
    np.testing.assert_array_equal(rice_decode(bits, k, array.size), array)


@given(st.lists(st.integers(min_value=-500, max_value=500),
                min_size=1, max_size=40),
       st.integers(min_value=0, max_value=8))
@settings(max_examples=50)
def test_rice_length_formula_exact(values, k):
    array = np.array(values, dtype=np.int64)
    assert len(rice_encode(array, k)) == encoded_length_bits(array, k)


@given(st.lists(st.integers(min_value=-2000, max_value=2000),
                min_size=4, max_size=64))
@settings(max_examples=40)
def test_optimal_parameter_dominates(values):
    array = np.array(values, dtype=np.int64)
    best = encoded_length_bits(array, optimal_rice_parameter(array))
    for k in range(14):
        assert best <= encoded_length_bits(array, k)


# ----------------------------------------------------------------- delta
@given(st.lists(st.integers(min_value=-(2 ** 20), max_value=2 ** 20),
                min_size=1, max_size=128))
def test_delta_round_trip(values):
    array = np.array(values, dtype=np.int64)
    np.testing.assert_array_equal(delta_decode(delta_encode(array)), array)


# -------------------------------------------------------------- quantize
@given(st.integers(min_value=2, max_value=16),
       st.integers(0, 2 ** 32 - 1))
@settings(max_examples=40)
def test_quantize_error_bound(bits, seed):
    rng = np.random.default_rng(seed)
    tensor = rng.standard_normal(64)
    quantized = quantize_tensor(tensor, bits)
    step = np.max(np.abs(tensor)) / (2 ** (bits - 1) - 1)
    assert np.max(np.abs(tensor - quantized)) <= step / 2 + 1e-12


@given(st.integers(min_value=2, max_value=16),
       st.integers(0, 2 ** 32 - 1))
@settings(max_examples=30)
def test_quantize_idempotent(bits, seed):
    rng = np.random.default_rng(seed)
    tensor = rng.standard_normal(32)
    once = quantize_tensor(tensor, bits)
    twice = quantize_tensor(once, bits)
    np.testing.assert_allclose(twice, once, atol=1e-12)


# ------------------------------------------------------------------- wpt
@given(st.floats(min_value=0.01, max_value=0.5),
       st.floats(min_value=0.3, max_value=1.0),
       st.floats(min_value=0.3, max_value=1.0),
       st.floats(min_value=1e-4, max_value=1.0))
@settings(max_examples=50)
def test_wpt_budget_dissipation_inverse(coupling, rect, reg, budget):
    link = InductiveLink(coupling=coupling, rectifier_efficiency=rect,
                         regulator_efficiency=reg)
    load = link.effective_budget(budget)
    assert link.implant_dissipation(load) == pytest.approx(budget)


@given(st.floats(min_value=0.01, max_value=0.5),
       st.floats(min_value=1e-4, max_value=0.1))
@settings(max_examples=40)
def test_wpt_conservation(coupling, load):
    # Delivered power never exceeds transmitted power.
    link = InductiveLink(coupling=coupling)
    assert link.transmit_power_for(load) >= load
