"""Hypothesis property tests over the core scaling framework."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.comm_centric import (
    DesignHypothesis,
    budget_crossing_channels,
    evaluate_comm_centric,
)
from repro.core.qam_design import evaluate_qam_design
from repro.core.scaling import scale_to_standard
from repro.core.socs import wireless_socs

SCALED = [scale_to_standard(record) for record in wireless_socs()]
soc_strategy = st.sampled_from(SCALED)
channels_strategy = st.integers(min_value=1024, max_value=16384)


@given(soc_strategy, channels_strategy)
@settings(max_examples=60)
def test_naive_ratio_invariant(soc, n):
    anchor = evaluate_comm_centric(soc, 1024, DesignHypothesis.NAIVE)
    point = evaluate_comm_centric(soc, n, DesignHypothesis.NAIVE)
    assert point.power_ratio == pytest.approx(anchor.power_ratio)


@given(soc_strategy, channels_strategy)
@settings(max_examples=60)
def test_high_margin_crossing_consistent_with_pointwise(soc, n):
    crossing = budget_crossing_channels(soc, DesignHypothesis.HIGH_MARGIN)
    point = evaluate_comm_centric(soc, n, DesignHypothesis.HIGH_MARGIN)
    if crossing is None or n < crossing:
        assert point.within_budget
    elif n >= crossing:
        # Beyond the closed-form crossing the pointwise check must fail
        # (allow the integer-rounding boundary itself).
        if n > crossing:
            assert not point.within_budget


@given(soc_strategy, channels_strategy)
@settings(max_examples=60)
def test_power_split_adds_up(soc, n):
    for hypothesis in DesignHypothesis:
        point = evaluate_comm_centric(soc, n, hypothesis)
        assert point.total_power_w == pytest.approx(
            point.sensing_power_w + point.non_sensing_power_w)
        assert point.sensing_area_m2 <= point.total_area_m2


@given(soc_strategy, channels_strategy)
@settings(max_examples=60)
def test_sensing_fraction_order(soc, n):
    naive = evaluate_comm_centric(soc, n, DesignHypothesis.NAIVE)
    margin = evaluate_comm_centric(soc, n, DesignHypothesis.HIGH_MARGIN)
    # Frozen non-sensing area can only raise the sensing share.
    assert margin.sensing_area_fraction >= \
        naive.sensing_area_fraction - 1e-12


@given(soc_strategy, st.integers(min_value=1024, max_value=8192),
       st.integers(min_value=0, max_value=1024))
@settings(max_examples=60)
def test_qam_min_efficiency_monotone(soc, n, delta):
    a = evaluate_qam_design(soc, n)
    b = evaluate_qam_design(soc, n + delta)
    if math.isfinite(a.min_efficiency) and math.isfinite(b.min_efficiency):
        # Within and across blocks, more channels never need less
        # efficiency (Eb is non-decreasing in the block index).
        assert b.min_efficiency >= a.min_efficiency - 1e-9


@given(soc_strategy, channels_strategy)
@settings(max_examples=60)
def test_eq6_linearity(soc, n):
    assert soc.sensing_throughput_bps(n) == pytest.approx(
        n * soc.sample_bits * soc.sampling_hz)


@given(soc_strategy, st.integers(min_value=1, max_value=16))
@settings(max_examples=40)
def test_sensing_scaling_linear(soc, factor):
    n = 1024 * factor
    assert soc.sensing_power_w(n) == pytest.approx(
        factor * soc.sensing_power_anchor_w)
    assert soc.sensing_area_m2(n) == pytest.approx(
        factor * soc.sensing_area_anchor_m2)
