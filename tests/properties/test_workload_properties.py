"""Hypothesis property tests over the DNN workload family."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnn.models import (
    alpha_scaling_factor,
    build_speech_dncnn,
    build_speech_mlp,
)

channels_strategy = st.integers(min_value=2, max_value=64).map(
    lambda k: 64 * k)  # 128..4096 in steps of 64


@given(channels_strategy)
@settings(max_examples=30, deadline=None)
def test_mlp_output_always_40_labels(n):
    assert build_speech_mlp(n).output_values == 40


@given(channels_strategy)
@settings(max_examples=30, deadline=None)
def test_dncnn_output_always_40_labels(n):
    assert build_speech_dncnn(n).output_values == 40


@given(channels_strategy, st.integers(min_value=1, max_value=4))
@settings(max_examples=25, deadline=None)
def test_macs_superlinear_in_channels(n, factor):
    # Doubling-class growth: scaling channels by k multiplies MACs by
    # more than k (the curse-of-dimensionality premise of Section 5.3).
    if factor == 1:
        return
    small = build_speech_mlp(n).total_macs
    large = build_speech_mlp(n * factor).total_macs
    assert large > factor * small


@given(channels_strategy)
@settings(max_examples=25, deadline=None)
def test_dncnn_heavier_than_mlp(n):
    assert build_speech_dncnn(n).total_macs > build_speech_mlp(n).total_macs


@given(channels_strategy)
@settings(max_examples=20, deadline=None)
def test_head_tail_macs_partition(n):
    net = build_speech_mlp(n)
    for split in range(1, net.n_compute_layers):
        head = net.head(split).total_macs
        tail = net.tail(split).total_macs
        assert head + tail == net.total_macs


@given(channels_strategy)
@settings(max_examples=20, deadline=None)
def test_profiles_positive_and_consistent(n):
    for builder in (build_speech_mlp, build_speech_dncnn):
        net = builder(n)
        profiles = net.mac_profiles()
        assert len(profiles) == net.n_compute_layers
        assert all(p.mac_seq > 0 and p.mac_ops > 0 for p in profiles)
        assert sum(p.total_macs for p in profiles) == net.total_macs


@given(st.integers(min_value=1, max_value=1 << 20))
@settings(max_examples=40)
def test_alpha_linear_in_channels(n):
    assert alpha_scaling_factor(2 * n) == pytest.approx(
        2 * alpha_scaling_factor(n))
