"""Hypothesis property-based tests on core invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.schedule import (
    schedule_non_pipelined,
    schedule_pipelined,
)
from repro.accel.tech import TECH_45NM, TechnologyNode
from repro.dnn.macs import LayerMacs, fmac_conv1d, fmac_dense
from repro.link.ber import ber_mqam, required_ebn0
from repro.link.modulation import MQAM, modulation_for_bits_per_symbol
from repro.link.packetizer import Packetizer
from repro.ni.adc import dequantize, quantize
from repro.thermal.budget import power_budget, power_density
from repro.units import db_to_linear, linear_to_db


# ---------------------------------------------------------------- units
@given(st.floats(min_value=-100, max_value=100))
def test_db_round_trip(db):
    assert linear_to_db(db_to_linear(db)) == pytest_approx(db)


def pytest_approx(value, rel=1e-9):
    import pytest
    return pytest.approx(value, rel=rel, abs=1e-9)


# ------------------------------------------------------------------ BER
@given(st.integers(min_value=1, max_value=10),
       st.floats(min_value=0.1, max_value=1e4))
def test_ber_is_probability(bits, ebn0):
    ber = ber_mqam(ebn0, bits)
    assert 0.0 <= ber <= 0.5


@given(st.integers(min_value=1, max_value=8),
       st.floats(min_value=1.0, max_value=100.0))
def test_ber_monotone_decreasing_in_ebn0(bits, ebn0):
    assert ber_mqam(2 * ebn0, bits) <= ber_mqam(ebn0, bits) + 1e-15


@given(st.integers(min_value=1, max_value=8),
       st.floats(min_value=1e-9, max_value=1e-2))
def test_required_ebn0_inverts_ber(bits, target):
    ebn0 = required_ebn0(target, bits)
    assert ber_mqam(ebn0, bits) == pytest_approx(target, rel=1e-4)


# ----------------------------------------------------------- modulation
@given(st.integers(min_value=1, max_value=4), st.integers(0, 2 ** 32 - 1))
@settings(max_examples=30)
def test_modulation_round_trip(half_order, seed):
    bits_per_symbol = 2 * half_order
    scheme = MQAM(bits_per_symbol)
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=40 * bits_per_symbol).astype(np.int8)
    recovered = scheme.demodulate(scheme.modulate(bits))
    assert np.array_equal(recovered, bits)


@given(st.integers(min_value=1, max_value=12))
def test_factory_order_at_least_requested(order):
    scheme = modulation_for_bits_per_symbol(order)
    assert scheme.bits_per_symbol >= order


# ------------------------------------------------------------ quantizer
@given(st.integers(min_value=2, max_value=16), st.integers(0, 2 ** 32 - 1))
@settings(max_examples=40)
def test_quantizer_error_bounded(bits, seed):
    rng = np.random.default_rng(seed)
    signal = rng.uniform(-0.999, 0.999, size=64)
    recon = dequantize(quantize(signal, bits), bits)
    lsb = 2.0 / 2 ** bits
    assert np.max(np.abs(signal - recon)) <= lsb / 2 + 1e-12


@given(st.integers(min_value=1, max_value=16))
def test_quantizer_codes_in_range(bits):
    signal = np.linspace(-5, 5, 101)
    codes = quantize(signal, bits)
    assert codes.min() >= -(2 ** (bits - 1))
    assert codes.max() <= 2 ** (bits - 1) - 1


# ------------------------------------------------------------ packetizer
@given(st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=16),
       st.integers(0, 2 ** 32 - 1))
@settings(max_examples=40)
def test_packetizer_round_trip(payload, bits, seed):
    rng = np.random.default_rng(seed)
    packetizer = Packetizer(payload_bytes=payload, sample_bits=bits)
    lo = -(2 ** (bits - 1))
    hi = 2 ** (bits - 1)
    codes = rng.integers(lo, hi, size=50).astype(np.int32)
    recovered = packetizer.depacketize(packetizer.packetize(codes))
    assert np.array_equal(recovered, codes)


# --------------------------------------------------------------- budget
@given(st.floats(min_value=1e-6, max_value=1.0),
       st.floats(min_value=1e-6, max_value=10.0))
def test_budget_density_duality(area, power):
    # power_density(power_budget(A), A) == limit for any area.
    budget = power_budget(area)
    assert power_density(budget, area) == pytest_approx(400.0)


@given(st.floats(min_value=1e-6, max_value=0.5),
       st.floats(min_value=1.1, max_value=3.0))
def test_budget_monotone_in_area(area, factor):
    assert power_budget(area * factor) > power_budget(area)


# -------------------------------------------------------------- MAC math
@given(st.integers(min_value=1, max_value=4096),
       st.integers(min_value=1, max_value=4096))
def test_dense_profile_total(in_f, out_f):
    profile = fmac_dense(in_f, out_f)
    assert profile.total_macs == in_f * out_f


@given(st.integers(min_value=1, max_value=16),
       st.integers(min_value=1, max_value=32),
       st.integers(min_value=1, max_value=9),
       st.integers(min_value=1, max_value=512))
def test_conv_profile_total(in_ch, out_ch, kernel, length):
    profile = fmac_conv1d(in_ch, out_ch, kernel, length)
    assert profile.total_macs == in_ch * out_ch * kernel * length


# -------------------------------------------------------------- schedule
@st.composite
def profiles_strategy(draw):
    n_layers = draw(st.integers(min_value=1, max_value=5))
    return [LayerMacs(mac_seq=draw(st.integers(1, 200)),
                      mac_ops=draw(st.integers(1, 200)))
            for _ in range(n_layers)]


@given(profiles_strategy(),
       st.floats(min_value=1e-6, max_value=1e-2))
@settings(max_examples=60)
def test_schedules_respect_deadline_and_caps(profiles, deadline):
    pooled = schedule_non_pipelined(profiles, deadline, TECH_45NM)
    if pooled is not None:
        assert pooled.runtime_s <= deadline
        assert pooled.mac_units <= max(p.mac_ops for p in profiles)
    piped = schedule_pipelined(profiles, deadline, TECH_45NM)
    if piped is not None:
        assert piped.runtime_s <= deadline
        for units, profile in zip(piped.per_layer_units, profiles):
            assert 1 <= units <= profile.mac_ops


@given(profiles_strategy(),
       st.floats(min_value=1e-5, max_value=1e-2))
@settings(max_examples=40)
def test_non_pipelined_minimality(profiles, deadline):
    # One fewer unit must violate the deadline (minimality witness).
    schedule = schedule_non_pipelined(profiles, deadline, TECH_45NM)
    if schedule is None or schedule.mac_units == 1:
        return
    import math as m
    fewer = schedule.mac_units - 1
    runtime = sum(p.mac_seq * TECH_45NM.t_mac_s * m.ceil(p.mac_ops / fewer)
                  for p in profiles)
    assert runtime > deadline


@given(profiles_strategy(), st.floats(min_value=1e-5, max_value=1e-2),
       st.floats(min_value=1.5, max_value=4.0))
@settings(max_examples=40)
def test_looser_deadline_never_needs_more_units(profiles, deadline, slack):
    tight = schedule_non_pipelined(profiles, deadline, TECH_45NM)
    loose = schedule_non_pipelined(profiles, deadline * slack, TECH_45NM)
    if tight is not None:
        assert loose is not None
        assert loose.mac_units <= tight.mac_units


@given(profiles_strategy(), st.floats(min_value=1e-5, max_value=1e-2))
@settings(max_examples=40)
def test_better_tech_never_needs_more_units(profiles, deadline):
    faster = TechnologyNode(name="fast", t_mac_s=TECH_45NM.t_mac_s / 2,
                            p_mac_w=TECH_45NM.p_mac_w)
    base = schedule_non_pipelined(profiles, deadline, TECH_45NM)
    quick = schedule_non_pipelined(profiles, deadline, faster)
    if base is not None:
        assert quick is not None
        assert quick.mac_units <= base.mac_units
