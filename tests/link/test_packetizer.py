"""Tests for CRC framing and packet round trips."""

import numpy as np
import pytest

from repro.link.packetizer import Packet, PacketError, Packetizer, crc16


class TestCrc16:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert crc16(b"123456789") == 0x29B1

    def test_empty_is_init(self):
        assert crc16(b"") == 0xFFFF

    def test_detects_single_bit_flip(self):
        data = b"neural data frame"
        corrupted = bytes([data[0] ^ 1]) + data[1:]
        assert crc16(data) != crc16(corrupted)


class TestPacket:
    def test_valid_round_trip(self):
        payload = b"\x01\x02\x03"
        header = (7).to_bytes(2, "big")
        packet = Packet(sequence=7, payload=payload,
                        checksum=crc16(header + payload))
        assert packet.valid
        assert Packet.from_bytes(packet.to_bytes()) == packet

    def test_corruption_detected(self):
        payload = b"\x01\x02\x03"
        packet = Packet(sequence=7, payload=payload, checksum=0)
        assert not packet.valid

    def test_from_bytes_rejects_short(self):
        with pytest.raises(ValueError):
            Packet.from_bytes(b"\x00")


class TestPacketizer:
    def test_round_trip(self, rng):
        packetizer = Packetizer(payload_bytes=64, sample_bits=10)
        codes = rng.integers(-512, 512, size=1000).astype(np.int32)
        packets = packetizer.packetize(codes)
        recovered = packetizer.depacketize(packets)
        np.testing.assert_array_equal(recovered, codes)

    def test_negative_codes_survive(self):
        packetizer = Packetizer(payload_bytes=16, sample_bits=10)
        codes = np.array([-512, -1, 0, 1, 511], dtype=np.int32)
        recovered = packetizer.depacketize(packetizer.packetize(codes))
        np.testing.assert_array_equal(recovered, codes)

    def test_sequence_numbers_increment(self, rng):
        packetizer = Packetizer(payload_bytes=8, sample_bits=8)
        packets = packetizer.packetize(rng.integers(0, 100, 64))
        sequences = [p.sequence for p in packets]
        assert sequences == list(range(len(packets)))

    def test_sequence_wraps(self):
        packetizer = Packetizer(payload_bytes=8, sample_bits=8)
        packetizer._sequence = 0xFFFF
        packets = packetizer.packetize(np.arange(16))
        assert packets[0].sequence == 0xFFFF
        assert packets[1].sequence == 0

    def test_gap_detected(self, rng):
        packetizer = Packetizer(payload_bytes=8, sample_bits=8)
        packets = packetizer.packetize(rng.integers(0, 100, 64))
        with pytest.raises(ValueError, match="sequence gap"):
            packetizer.depacketize([packets[0], packets[2]])

    def test_corruption_detected(self, rng):
        packetizer = Packetizer(payload_bytes=8, sample_bits=8)
        packets = packetizer.packetize(rng.integers(0, 100, 32))
        bad = Packet(sequence=packets[0].sequence,
                     payload=packets[0].payload, checksum=0)
        with pytest.raises(ValueError, match="CRC"):
            packetizer.depacketize([bad] + packets[1:])

    def test_overhead_ratio(self):
        assert Packetizer(payload_bytes=256).overhead_ratio == \
            pytest.approx(4 / 256)

    def test_multidimensional_input_flattened(self, rng):
        packetizer = Packetizer(payload_bytes=32, sample_bits=10)
        codes = rng.integers(-100, 100, size=(4, 25)).astype(np.int32)
        recovered = packetizer.depacketize(packetizer.packetize(codes))
        np.testing.assert_array_equal(recovered, codes.reshape(-1))

    def test_empty_input(self):
        packetizer = Packetizer()
        assert packetizer.depacketize([]).size == 0

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            Packetizer(payload_bytes=0)
        with pytest.raises(ValueError):
            Packetizer(sample_bits=0)

    def test_16_bit_samples(self):
        packetizer = Packetizer(payload_bytes=16, sample_bits=16)
        codes = np.array([-32768, 32767, 0], dtype=np.int32)
        recovered = packetizer.depacketize(packetizer.packetize(codes))
        np.testing.assert_array_equal(recovered, codes)


class TestPacketError:
    def test_short_input_raises_typed_error(self):
        with pytest.raises(PacketError, match="packet too short"):
            Packet.from_bytes(b"\x00\x01\x02")

    def test_packet_error_is_a_value_error(self):
        # Pre-existing callers catching ValueError keep working.
        assert issubclass(PacketError, ValueError)
        with pytest.raises(ValueError):
            Packet.from_bytes(b"")

    def test_minimum_frame_parses(self):
        # Header + CRC with an empty payload is the smallest legal frame.
        header = (0).to_bytes(2, "big")
        raw = header + crc16(header).to_bytes(2, "big")
        packet = Packet.from_bytes(raw)
        assert packet.valid and packet.payload == b""


class TestDepacketizeLossy:
    def _stream(self, n_samples=200, payload_bytes=16):
        packetizer = Packetizer(payload_bytes=payload_bytes)
        codes = np.arange(n_samples, dtype=np.int32) % 400 - 200
        raw = [p.to_bytes() for p in packetizer.packetize(codes)]
        return packetizer, codes, raw

    def test_clean_stream_round_trips_with_empty_report(self):
        packetizer, codes, raw = self._stream()
        recovered, report = packetizer.depacketize_lossy(raw)
        np.testing.assert_array_equal(recovered, codes)
        assert report.accepted == report.received == len(raw)
        assert report.missing == 0 and report.reordered == 0

    def test_dropped_packet_counts_missing_samples(self):
        packetizer, codes, raw = self._stream()
        survivors = raw[:3] + raw[4:]
        recovered, report = packetizer.depacketize_lossy(survivors)
        assert report.missing == 1
        assert recovered.size == codes.size - 8  # 16 B / 2 B per sample
        np.testing.assert_array_equal(recovered[:24], codes[:24])
        np.testing.assert_array_equal(recovered[24:], codes[32:])

    def test_reordered_packets_are_resequenced(self):
        # Interior swap: offsets are anchored at the first received
        # packet, so later arrivals re-sort into transmit order.
        packetizer, codes, raw = self._stream()
        shuffled = raw[:2] + [raw[3], raw[2]] + raw[4:]
        recovered, report = packetizer.depacketize_lossy(shuffled)
        assert report.reordered == 1
        np.testing.assert_array_equal(recovered, codes)

    def test_duplicates_are_dropped(self):
        packetizer, codes, raw = self._stream()
        recovered, report = packetizer.depacketize_lossy(
            raw[:1] + raw)
        assert report.duplicates == 1
        np.testing.assert_array_equal(recovered, codes)

    def test_damaged_packets_are_discarded_not_fatal(self):
        packetizer, codes, raw = self._stream()
        flipped = bytearray(raw[2])
        flipped[5] ^= 0xFF
        stream = [raw[0], b"\x00", bytes(flipped)] + raw[3:]
        recovered, report = packetizer.depacketize_lossy(stream)
        assert report.malformed == 1  # the 1-byte runt
        assert report.crc_failures == 1  # the bit-flipped packet
        assert recovered.size < codes.size

    def test_truncated_payload_drops_partial_sample(self):
        packetizer = Packetizer(payload_bytes=16)
        codes = np.arange(8, dtype=np.int32)
        [packet] = packetizer.packetize(codes)
        header = (packet.sequence).to_bytes(2, "big")
        payload = packet.payload[:5]  # 2.5 samples survive
        raw = header + payload + crc16(header + payload).to_bytes(2, "big")
        recovered, report = packetizer.depacketize_lossy([raw])
        assert report.trailing_bytes_dropped == 1
        np.testing.assert_array_equal(recovered, codes[:2])

    def test_empty_stream(self):
        packetizer = Packetizer()
        recovered, report = packetizer.depacketize_lossy([])
        assert recovered.size == 0
        assert report.to_dict()["received"] == 0
