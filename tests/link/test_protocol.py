"""Tests for the ARQ link-layer protocol."""

import math

import numpy as np
import pytest

from repro.link.modulation import BPSK, QPSK
from repro.link.protocol import (
    delivered_energy_per_bit,
    effective_goodput,
    expected_transmissions,
    packet_success_probability,
    simulate_arq,
)


class TestAnalytics:
    def test_success_probability(self):
        assert packet_success_probability(0.0, 100) == 1.0
        assert packet_success_probability(0.01, 100) == pytest.approx(
            0.99 ** 100)

    def test_expected_transmissions_geometric(self):
        p = packet_success_probability(1e-3, 512)
        assert expected_transmissions(1e-3, 512) == pytest.approx(1 / p)

    def test_retry_cap_truncates(self):
        unlimited = expected_transmissions(0.01, 512)
        capped = expected_transmissions(0.01, 512, max_retries=1)
        assert capped < unlimited
        assert capped <= 2.0

    def test_clean_channel_single_transmission(self):
        assert expected_transmissions(0.0, 1000) == 1.0

    def test_goodput_below_raw_rate(self):
        goodput = effective_goodput(100e6, 1e-5, 512, 32)
        assert goodput < 100e6

    def test_goodput_collapses_at_high_ber(self):
        clean = effective_goodput(100e6, 1e-6, 512, 32)
        dirty = effective_goodput(100e6, 1e-2, 512, 32)
        assert dirty < 0.1 * clean

    def test_delivered_energy_rises_with_ber(self):
        base = delivered_energy_per_bit(50e-12, 1e-9, 512, 32)
        noisy = delivered_energy_per_bit(50e-12, 1e-3, 512, 32)
        assert noisy > base

    def test_delivered_energy_includes_overhead(self):
        energy = delivered_energy_per_bit(50e-12, 0.0, 512, 32)
        assert energy == pytest.approx(50e-12 * 544 / 512)

    def test_infinite_at_ber_one_limit(self):
        assert math.isinf(expected_transmissions(0.99, 10_000))

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            packet_success_probability(-0.1, 10)
        with pytest.raises(ValueError):
            packet_success_probability(0.1, 0)
        with pytest.raises(ValueError):
            effective_goodput(0.0, 0.1, 10, 2)


class TestSimulation:
    def test_clean_link_no_retransmissions(self, rng):
        codes = rng.integers(-512, 512, 256).astype(np.int32)
        result = simulate_arq(codes, BPSK(), ebn0_db=15.0, rng=rng)
        assert result.dropped == 0
        assert result.mean_transmissions == pytest.approx(1.0)

    def test_marginal_link_retransmits(self, rng):
        codes = rng.integers(-512, 512, 256).astype(np.int32)
        result = simulate_arq(codes, BPSK(), ebn0_db=6.0, rng=rng)
        assert result.mean_transmissions > 1.05

    def test_simulation_tracks_theory(self, rng):
        from repro.link.ber import ber_bpsk
        codes = rng.integers(-512, 512, 2048).astype(np.int32)
        ebn0_db = 6.5
        result = simulate_arq(codes, BPSK(), ebn0_db=ebn0_db, rng=rng,
                              payload_bytes=32)
        ber = ber_bpsk(10 ** (ebn0_db / 10))
        packet_bits = (32 + 4) * 8
        expected = expected_transmissions(ber, packet_bits)
        assert result.mean_transmissions == pytest.approx(expected,
                                                          rel=0.3)

    def test_hopeless_link_drops_packets(self, rng):
        codes = rng.integers(-512, 512, 64).astype(np.int32)
        result = simulate_arq(codes, BPSK(), ebn0_db=-5.0, rng=rng,
                              max_retries=2)
        assert result.dropped > 0

    def test_qpsk_works_with_padding(self, rng):
        codes = rng.integers(-512, 512, 128).astype(np.int32)
        result = simulate_arq(codes, QPSK(), ebn0_db=15.0, rng=rng,
                              payload_bytes=21)  # odd size forces padding
        assert result.dropped == 0

    def test_rejects_negative_retries(self, rng):
        with pytest.raises(ValueError):
            simulate_arq(np.zeros(4, dtype=np.int32), BPSK(), 10.0, rng,
                         max_retries=-1)
