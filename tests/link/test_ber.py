"""Tests for BER theory and Eb/N0 inversion."""

import math

import pytest

from repro.link.ber import (
    ber_bpsk,
    ber_mqam,
    ber_ook,
    q_function,
    required_ebn0,
    shannon_ebn0_limit_db,
)


class TestQFunction:
    def test_at_zero(self):
        assert q_function(0.0) == pytest.approx(0.5)

    def test_known_value(self):
        # Q(1.2816) ~ 0.1.
        assert q_function(1.2816) == pytest.approx(0.1, abs=1e-3)

    def test_symmetry(self):
        assert q_function(-1.0) + q_function(1.0) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        assert q_function(1.0) > q_function(2.0) > q_function(3.0)


class TestBerCurves:
    def test_bpsk_textbook_point(self):
        # Eb/N0 = 9.6 dB gives BER ~ 1e-5 for BPSK.
        assert ber_bpsk(10 ** 0.96) == pytest.approx(1e-5, rel=0.3)

    def test_ook_pays_3db_vs_bpsk(self):
        ebn0 = 10.0
        assert ber_ook(2 * ebn0) == pytest.approx(ber_bpsk(ebn0), rel=1e-9)

    def test_mqam_order_1_is_bpsk(self):
        assert ber_mqam(10.0, 1) == pytest.approx(ber_bpsk(10.0))

    def test_higher_order_needs_more_energy(self):
        ebn0 = 20.0
        assert ber_mqam(ebn0, 2) < ber_mqam(ebn0, 4) < ber_mqam(ebn0, 6)

    def test_ber_monotone_in_ebn0(self):
        assert ber_mqam(5.0, 4) > ber_mqam(50.0, 4) > ber_mqam(500.0, 4)

    def test_ber_capped_at_half(self):
        assert ber_mqam(1e-5, 6) <= 0.5

    def test_rejects_non_positive_ebn0(self):
        with pytest.raises(ValueError):
            ber_bpsk(0.0)
        with pytest.raises(ValueError):
            ber_mqam(-1.0, 2)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            ber_mqam(10.0, 0)


class TestRequiredEbn0:
    def test_inversion_round_trip(self):
        for bits in (1, 2, 3, 4, 6):
            ebn0 = required_ebn0(1e-6, bits)
            assert ber_mqam(ebn0, bits) == pytest.approx(1e-6, rel=1e-6)

    def test_bpsk_at_1e6_is_about_10_5_db(self):
        ebn0_db = 10 * math.log10(required_ebn0(1e-6, scheme="bpsk"))
        assert ebn0_db == pytest.approx(10.5, abs=0.2)

    def test_qpsk_matches_bpsk_per_bit(self):
        assert required_ebn0(1e-6, 2) == pytest.approx(
            required_ebn0(1e-6, 1), rel=0.02)

    def test_monotone_in_order_beyond_qpsk(self):
        values = [required_ebn0(1e-6, b) for b in range(2, 8)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_stricter_ber_needs_more_energy(self):
        assert required_ebn0(1e-9, 4) > required_ebn0(1e-3, 4)

    def test_ook_needs_double_bpsk(self):
        assert required_ebn0(1e-6, scheme="ook") == pytest.approx(
            2 * required_ebn0(1e-6, scheme="bpsk"), rel=1e-6)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            required_ebn0(0.0)
        with pytest.raises(ValueError):
            required_ebn0(0.6)

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            required_ebn0(1e-6, scheme="fsk")


class TestShannonLimit:
    def test_low_efficiency_approaches_minus_1_59_db(self):
        assert shannon_ebn0_limit_db(0.001) == pytest.approx(-1.59, abs=0.01)

    def test_grows_with_spectral_efficiency(self):
        assert (shannon_ebn0_limit_db(1.0) < shannon_ebn0_limit_db(4.0)
                < shannon_ebn0_limit_db(8.0))

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            shannon_ebn0_limit_db(0.0)
