"""Tests for the transcutaneous link budget."""

import pytest

from repro.link.budget import (
    LinkBudget,
    communication_power,
    transmit_energy_per_bit,
)
from repro.units import mbps, pj


class TestLinkBudget:
    def test_default_matches_paper_parameters(self):
        budget = LinkBudget()
        assert budget.target_ber == pytest.approx(1e-6)
        assert budget.path_loss_db == pytest.approx(60.0)
        assert budget.margin_db == pytest.approx(20.0)

    def test_total_loss_is_80_db(self):
        assert LinkBudget().total_loss_linear == pytest.approx(1e8)

    def test_one_bit_energy_anchor(self):
        # Calibration anchor: ~24 pJ/bit at 1 bit/symbol, 100 % efficiency.
        energy = LinkBudget().transmit_energy_per_bit(1, efficiency=1.0)
        assert energy == pytest.approx(pj(24.2), rel=0.05)

    def test_energy_monotone_in_order_beyond_qpsk(self):
        budget = LinkBudget()
        values = [budget.transmit_energy_per_bit(b) for b in range(2, 8)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_efficiency_divides(self):
        budget = LinkBudget()
        ideal = budget.transmit_energy_per_bit(4, efficiency=1.0)
        real = budget.transmit_energy_per_bit(4, efficiency=0.15)
        assert real == pytest.approx(ideal / 0.15)

    def test_margin_multiplies(self):
        low = LinkBudget(margin_db=0.0).transmit_energy_per_bit(1)
        high = LinkBudget(margin_db=20.0).transmit_energy_per_bit(1)
        assert high == pytest.approx(100.0 * low)

    def test_receive_energy_below_transmit(self):
        budget = LinkBudget()
        assert (budget.required_receive_energy_per_bit(1)
                < budget.transmit_energy_per_bit(1))

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            LinkBudget().transmit_energy_per_bit(1, efficiency=0.0)
        with pytest.raises(ValueError):
            LinkBudget().transmit_energy_per_bit(1, efficiency=1.5)

    def test_rejects_bad_ber(self):
        with pytest.raises(ValueError):
            LinkBudget(target_ber=0.0)

    def test_rejects_negative_losses(self):
        with pytest.raises(ValueError):
            LinkBudget(path_loss_db=-1.0)

    def test_wrapper_matches_method(self):
        assert transmit_energy_per_bit(3) == pytest.approx(
            LinkBudget().transmit_energy_per_bit(3))


class TestCommunicationPower:
    def test_eq9_worked_example(self):
        # Paper Section 5.1: 82 Mbps at 50 pJ/bit -> ~4.1 mW.
        power = communication_power(mbps(81.92), pj(50.0))
        assert power == pytest.approx(4.096e-3)

    def test_zero_throughput_zero_power(self):
        assert communication_power(0.0, pj(50.0)) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            communication_power(-1.0, 1.0)
        with pytest.raises(ValueError):
            communication_power(1.0, -1.0)
