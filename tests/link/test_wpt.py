"""Tests for the wireless power transfer model."""

import pytest

from repro.link.wpt import InductiveLink


class TestLinkEfficiency:
    def test_efficiency_in_unit_interval(self):
        link = InductiveLink()
        assert 0.0 < link.link_efficiency < 1.0

    def test_stronger_coupling_more_efficient(self):
        weak = InductiveLink(coupling=0.02)
        strong = InductiveLink(coupling=0.2)
        assert strong.link_efficiency > weak.link_efficiency

    def test_higher_q_more_efficient(self):
        low = InductiveLink(q_receive=10.0)
        high = InductiveLink(q_receive=100.0)
        assert high.link_efficiency > low.link_efficiency

    def test_asymptotic_limit(self):
        # As k^2 Qt Qr -> infinity, efficiency -> 1.
        ideal = InductiveLink(coupling=0.9, q_transmit=1e4, q_receive=1e4)
        assert ideal.link_efficiency > 0.99

    def test_typical_subdural_link_regime(self):
        # k ~ 0.05 with moderate Q gives tens of percent — the published
        # regime for subdural WPT.
        link = InductiveLink()
        assert 0.2 < link.link_efficiency < 0.9


class TestPowerAccounting:
    def test_transmit_power_exceeds_load(self):
        link = InductiveLink()
        assert link.transmit_power_for(10e-3) > 10e-3

    def test_transmit_power_linear(self):
        link = InductiveLink()
        assert link.transmit_power_for(20e-3) == pytest.approx(
            2 * link.transmit_power_for(10e-3))

    def test_implant_dissipation_exceeds_load(self):
        # Rectifier/regulator losses heat tissue on top of the load.
        link = InductiveLink()
        assert link.implant_dissipation(10e-3) > 10e-3

    def test_effective_budget_inverts_dissipation(self):
        link = InductiveLink()
        budget = 57.6e-3
        load = link.effective_budget(budget)
        assert link.implant_dissipation(load) == pytest.approx(budget)

    def test_effective_budget_shrinks_useful_power(self):
        # The paper's WPT concern in one number: a 57.6 mW thermal budget
        # funds well under 57.6 mW of useful work.
        link = InductiveLink()
        assert link.effective_budget(57.6e-3) < 57.6e-3

    def test_perfect_chain_identity(self):
        link = InductiveLink(rectifier_efficiency=1.0,
                             regulator_efficiency=1.0)
        assert link.effective_budget(10e-3) == pytest.approx(10e-3)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            InductiveLink(coupling=0.0)
        with pytest.raises(ValueError):
            InductiveLink(rectifier_efficiency=1.5)
        with pytest.raises(ValueError):
            InductiveLink().transmit_power_for(-1.0)
        with pytest.raises(ValueError):
            InductiveLink().effective_budget(0.0)
