"""Monte-Carlo validation of the closed-form BER curves.

These tests are the independent check that the analytical curves the
MINDFUL power analysis relies on are implemented correctly: simulated BER
at moderate Eb/N0 must track theory.
"""

import numpy as np
import pytest

from repro.link.channel import AwgnChannel, measure_ber
from repro.link.modulation import BPSK, MQAM, OOK, QPSK


class TestAwgnChannel:
    def test_noise_variance(self, rng):
        channel = AwgnChannel(ebn0_linear=4.0, rng=rng)
        symbols = np.zeros(200000, dtype=complex)
        received = channel.transmit(symbols)
        # Per complex sample variance = N0 = 1/ebn0.
        assert np.var(received.real) + np.var(received.imag) == \
            pytest.approx(0.25, rel=0.05)

    def test_rejects_bad_ebn0(self, rng):
        with pytest.raises(ValueError):
            AwgnChannel(ebn0_linear=0.0, rng=rng)


class TestMeasuredVsTheory:
    @pytest.mark.parametrize("scheme,ebn0_db", [
        (BPSK(), 4.0),
        (OOK(), 7.0),
        (QPSK(), 4.0),
        (MQAM(4), 8.0),
    ], ids=["bpsk", "ook", "qpsk", "16qam"])
    def test_simulation_tracks_theory(self, scheme, ebn0_db, rng):
        measured = measure_ber(scheme, ebn0_db, n_bits=400_000, rng=rng)
        theory = scheme.theoretical_ber(10 ** (ebn0_db / 10.0))
        assert measured == pytest.approx(theory, rel=0.25)

    def test_ber_improves_with_ebn0(self, rng):
        low = measure_ber(BPSK(), 2.0, 100_000, rng)
        high = measure_ber(BPSK(), 8.0, 100_000, rng)
        assert high < low

    def test_high_snr_is_error_free_at_this_scale(self, rng):
        assert measure_ber(BPSK(), 14.0, 50_000, rng) == 0.0

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            measure_ber(MQAM(4), 5.0, 3, rng)
