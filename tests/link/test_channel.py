"""Monte-Carlo validation of the closed-form BER curves.

These tests are the independent check that the analytical curves the
MINDFUL power analysis relies on are implemented correctly: simulated BER
at moderate Eb/N0 must track theory.
"""

import numpy as np
import pytest

from repro.link.channel import AwgnChannel, measure_ber
from repro.link.modulation import BPSK, MQAM, OOK, QPSK


class TestAwgnChannel:
    def test_noise_variance(self, rng):
        channel = AwgnChannel(ebn0_linear=4.0, rng=rng)
        symbols = np.zeros(200000, dtype=complex)
        received = channel.transmit(symbols)
        # Per complex sample variance = N0 = 1/ebn0.
        assert np.var(received.real) + np.var(received.imag) == \
            pytest.approx(0.25, rel=0.05)

    def test_rejects_bad_ebn0(self, rng):
        with pytest.raises(ValueError):
            AwgnChannel(ebn0_linear=0.0, rng=rng)


class TestMeasuredVsTheory:
    @pytest.mark.parametrize("scheme,ebn0_db", [
        (BPSK(), 4.0),
        (OOK(), 7.0),
        (QPSK(), 4.0),
        (MQAM(4), 8.0),
    ], ids=["bpsk", "ook", "qpsk", "16qam"])
    def test_simulation_tracks_theory(self, scheme, ebn0_db, rng):
        measured = measure_ber(scheme, ebn0_db, n_bits=400_000, rng=rng)
        theory = scheme.theoretical_ber(10 ** (ebn0_db / 10.0))
        assert measured == pytest.approx(theory, rel=0.25)

    def test_ber_improves_with_ebn0(self, rng):
        low = measure_ber(BPSK(), 2.0, 100_000, rng)
        high = measure_ber(BPSK(), 8.0, 100_000, rng)
        assert high < low

    def test_high_snr_is_error_free_at_this_scale(self, rng):
        assert measure_ber(BPSK(), 14.0, 50_000, rng) == 0.0

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            measure_ber(MQAM(4), 5.0, 3, rng)


class TestBerSweep:
    def test_sweep_is_deterministic_for_fixed_seed(self):
        from repro.link.channel import measure_ber_sweep
        grid = np.linspace(2.0, 10.0, 5)
        a = measure_ber_sweep(MQAM(4), grid, 100_000,
                              rng=np.random.default_rng(9))
        b = measure_ber_sweep(MQAM(4), grid, 100_000,
                              rng=np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)

    def test_sweep_tracks_per_point_measurements(self):
        from repro.link.channel import measure_ber_sweep
        grid = np.linspace(3.0, 9.0, 4)
        swept = measure_ber_sweep(BPSK(), grid, 200_000,
                                  rng=np.random.default_rng(5))
        for point, ber in zip(grid, swept):
            solo = measure_ber(BPSK(), float(point), 200_000,
                               rng=np.random.default_rng(5))
            assert ber == pytest.approx(solo, abs=2e-3)

    def test_sweep_monotone_in_ebn0(self):
        from repro.link.channel import measure_ber_sweep
        grid = np.array([2.0, 6.0, 10.0])
        swept = measure_ber_sweep(BPSK(), grid, 300_000,
                                  rng=np.random.default_rng(1))
        assert swept[0] > swept[1] > swept[2]

    def test_sweep_chunking_preserves_the_estimate(self):
        # Chunking changes which random draws land where, so the
        # estimates are statistically — not bitwise — equivalent.
        from repro.link.channel import measure_ber_sweep
        grid = np.array([4.0, 8.0])
        whole = measure_ber_sweep(MQAM(4), grid, 256_000,
                                  rng=np.random.default_rng(2))
        chunked = measure_ber_sweep(MQAM(4), grid, 256_000,
                                    rng=np.random.default_rng(2),
                                    chunk_bits=32_000)
        np.testing.assert_allclose(whole, chunked, rtol=0.3, atol=2e-4)

    def test_sweep_rejects_bad_input(self):
        from repro.link.channel import measure_ber_sweep
        with pytest.raises(ValueError):
            measure_ber_sweep(BPSK(), np.array([]), 1000)
        with pytest.raises(ValueError):
            measure_ber_sweep(MQAM(4), np.array([5.0]), 3)
