"""Tests for modulation schemes (bit <-> symbol round trips, energy)."""

import numpy as np
import pytest

from repro.link.modulation import (
    BPSK,
    MQAM,
    OOK,
    QPSK,
    modulation_for_bits_per_symbol,
)

ALL_SCHEMES = [OOK(), BPSK(), QPSK(), MQAM(4), MQAM(6), MQAM(8)]


class TestRoundTrips:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES,
                             ids=lambda s: s.name)
    def test_noiseless_round_trip(self, scheme, rng):
        n = 120 * scheme.bits_per_symbol
        bits = rng.integers(0, 2, size=n).astype(np.int8)
        recovered = scheme.demodulate(scheme.modulate(bits))
        np.testing.assert_array_equal(recovered, bits)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES,
                             ids=lambda s: s.name)
    def test_unit_energy_per_bit(self, scheme, rng):
        n = 4000 * scheme.bits_per_symbol
        bits = rng.integers(0, 2, size=n).astype(np.int8)
        symbols = scheme.modulate(bits)
        energy_per_bit = np.mean(np.abs(symbols) ** 2) / \
            scheme.bits_per_symbol * symbols.size
        energy_per_bit /= symbols.size
        assert energy_per_bit == pytest.approx(1.0 / 1.0, rel=0.05)


class TestValidation:
    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            BPSK().modulate(np.array([0, 1, 2]))

    def test_qam_requires_multiple_of_order(self):
        with pytest.raises(ValueError):
            MQAM(4).modulate(np.array([0, 1, 1]))

    def test_mqam_rejects_odd_order(self):
        with pytest.raises(ValueError):
            MQAM(3)

    def test_mqam_rejects_order_below_two(self):
        with pytest.raises(ValueError):
            MQAM(0)


class TestFactory:
    def test_one_bit_gives_ook(self):
        assert isinstance(modulation_for_bits_per_symbol(1), OOK)

    def test_two_bits_gives_qpsk(self):
        assert isinstance(modulation_for_bits_per_symbol(2), QPSK)

    def test_even_orders_pass_through(self):
        assert modulation_for_bits_per_symbol(4).bits_per_symbol == 4

    def test_odd_orders_round_up(self):
        assert modulation_for_bits_per_symbol(5).bits_per_symbol == 6

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            modulation_for_bits_per_symbol(0)


class TestNames:
    def test_qam_name(self):
        assert MQAM(4).name == "16-QAM"

    def test_qpsk_name(self):
        assert QPSK().name == "QPSK"

    def test_gray_mapping_minimizes_neighbor_distance(self, rng):
        # Adjacent constellation levels must differ by exactly one bit.
        scheme = MQAM(4)
        bits = np.array([[b0, b1, 0, 0]
                         for b0 in (0, 1) for b1 in (0, 1)]).reshape(-1)
        symbols = scheme.modulate(bits)
        reals = np.sort(np.unique(np.round(symbols.real, 9)))
        assert reals.size == 4  # 4 I-levels for 16-QAM
