"""Cohort/fleet specs and the zero-safe session result container."""

import pytest

from repro.fleet import (
    DECODER_FAMILIES,
    SESSION_COLUMNS,
    CohortSpec,
    FleetSpec,
    SessionResult,
    summarize_cohort,
)


class TestSessionResultZeroSafety:
    def test_empty_session_reports_zero_not_nan(self):
        """A zero-trial session must report 0.0 everywhere — never NaN
        (the regression this guards: mean-of-empty propagating NaN
        into fleet dashboards)."""
        empty = SessionResult(session=0, hits=0, trials=0)
        assert empty.hit_rate == 0.0
        assert empty.mean_time_to_target_s == 0.0
        assert empty.dropped_fraction == 0.0
        assert empty.time_active_s == 0.0
        assert empty.bitrate_bps == 0.0
        row = empty.to_row()
        assert all(value == value for value in row.values())  # no NaN
        assert row["hit_rate"] == 0.0
        assert row["mean_time_to_target_s"] == 0.0

    def test_hitless_session_has_zero_bitrate(self):
        missed = SessionResult(session=1, hits=0, trials=4,
                               total_windows=400, difficulty_bits=4.0)
        assert missed.bitrate_bps == 0.0
        assert missed.mean_time_to_target_s == 0.0
        assert missed.time_active_s == pytest.approx(8.0)

    def test_row_keys_match_schema(self):
        row = SessionResult(session=2, hits=3, trials=4,
                            times_to_target_s=[0.5, 0.6, 0.7],
                            total_windows=100,
                            difficulty_bits=4.0).to_row()
        assert tuple(row) == SESSION_COLUMNS
        assert all(isinstance(v, (int, float)) for v in row.values())

    def test_bitrate_is_fitts_throughput(self):
        session = SessionResult(session=0, hits=2, trials=2,
                                times_to_target_s=[0.5, 0.5],
                                total_windows=50, difficulty_bits=4.0,
                                dt_s=0.02)
        assert session.time_active_s == pytest.approx(1.0)
        assert session.bitrate_bps == pytest.approx(8.0)


class TestCohortSpec:
    def test_defaults_round_trip_through_dict(self):
        spec = CohortSpec(name="a", decoder="wiener", n_sessions=7,
                          drop_rate=0.1, tuning_drift_per_s=-0.05)
        assert CohortSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("kwargs", [
        dict(name=""),
        dict(name="x", n_sessions=0),
        dict(name="x", decoder="svm"),
        dict(name="x", n_trials=0),
        dict(name="x", latency_steps=-1),
        dict(name="x", train_timesteps=1),
        dict(name="x", drop_rate=1.0),
        dict(name="x", drop_rate=-0.1),
        dict(name="x", n_lags=0),
        dict(name="x", hidden=0),
        dict(name="x", epochs=0),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            CohortSpec(**kwargs)

    def test_decoder_families(self):
        assert DECODER_FAMILIES == ("kalman", "wiener", "dnn")


class TestFleetSpec:
    def test_sessions_sum(self):
        fleet = FleetSpec([CohortSpec(name="a", n_sessions=3),
                           CohortSpec(name="b", n_sessions=5)])
        assert fleet.n_sessions == 8

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FleetSpec([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="unique"):
            FleetSpec([CohortSpec(name="a"), CohortSpec(name="a")])


class TestSummarizeCohort:
    def test_empty_rows_summary_is_zero_safe(self):
        spec = CohortSpec(name="empty")
        summary = summarize_cohort(spec, [])
        assert summary["sessions"] == 0
        assert summary["hit_rate_mean"] == 0.0
        assert summary["throughput_hits_per_s"] == 0.0
        assert summary["bitrate_p50_bps"] == 0.0

    def test_percentiles_over_rows(self):
        spec = CohortSpec(name="s")
        rows = [SessionResult(session=i, hits=1, trials=1,
                              times_to_target_s=[0.1 * (i + 1)],
                              total_windows=10, difficulty_bits=4.0,
                              ).to_row()
                for i in range(10)]
        summary = summarize_cohort(spec, rows)
        assert summary["sessions"] == 10
        assert summary["hit_rate_mean"] == 1.0
        assert summary["time_to_target_p50_s"] == pytest.approx(0.5)
        assert (summary["time_to_target_p99_s"]
                == pytest.approx(1.0))
