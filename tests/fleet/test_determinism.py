"""Fleet determinism: replay, common random numbers, and sharding."""

import numpy as np
import pytest

from repro.fleet import (
    CohortSpec,
    FleetSpec,
    cohort_seed,
    run_fleet,
    simulate_cohort,
)
from repro.fleet.engine import _simulate
from repro.obs.manifest import seeded_rng

BASE_SEED = 99


def rows_of(sessions):
    return [s.to_row() for s in sessions]


class TestReplay:
    def test_same_seed_twice_is_identical(self):
        spec = CohortSpec(name="replay", n_sessions=24, n_trials=4,
                          train_timesteps=120, timeout_s=2.0,
                          drop_rate=0.2)
        first = rows_of(simulate_cohort(spec, BASE_SEED))
        second = rows_of(simulate_cohort(spec, BASE_SEED))
        assert first == second

    def test_different_seeds_differ(self):
        spec = CohortSpec(name="replay", n_sessions=8, n_trials=4,
                          train_timesteps=120, timeout_s=2.0)
        assert (rows_of(simulate_cohort(spec, 1))
                != rows_of(simulate_cohort(spec, 2)))

    def test_cohort_streams_independent_of_fleet_composition(self):
        """A cohort's rows depend on (base seed, name) only — adding
        other cohorts to the fleet cannot perturb it."""
        spec = CohortSpec(name="alpha", n_sessions=6, n_trials=3,
                          train_timesteps=120, timeout_s=2.0)
        other = CohortSpec(name="beta", n_sessions=6, n_trials=3,
                          train_timesteps=120, timeout_s=2.0)
        alone = run_fleet(FleetSpec([spec]), BASE_SEED)
        paired = run_fleet(FleetSpec([other, spec]), BASE_SEED)
        assert alone[0].rows == paired[1].rows


class TestCommonRandomNumbers:
    def test_zero_drop_identical_to_no_fault(self):
        """drop_rate=0 must be byte-identical to a run with no fault
        stream at all (constructing the drop rng draws nothing)."""
        spec = CohortSpec(name="crn", n_sessions=12, n_trials=4,
                          train_timesteps=120, timeout_s=2.0,
                          drop_rate=0.0)
        seed = cohort_seed(BASE_SEED, spec.name)
        unfaulted = _simulate(spec, seeded_rng(seed), None, seed)
        assert rows_of(simulate_cohort(spec, BASE_SEED)) == rows_of(
            unfaulted)

    def test_drop_rates_share_session_streams(self):
        """Different drop rates reuse identical neural data: window
        counts match and only the drop bookkeeping moves."""
        base = dict(n_sessions=8, n_trials=4, train_timesteps=120,
                    timeout_s=2.0, latency_steps=2)
        clean = simulate_cohort(
            CohortSpec(name="crn2", drop_rate=0.0, **base), BASE_SEED)
        lossy = simulate_cohort(
            CohortSpec(name="crn2", drop_rate=0.4, **base), BASE_SEED)
        assert sum(s.dropped_windows for s in clean) == 0
        assert sum(s.dropped_windows for s in lossy) > 0

    def test_drift_zero_is_exact_base_path(self):
        base = dict(n_sessions=6, n_trials=3, train_timesteps=120,
                    timeout_s=2.0)
        plain = simulate_cohort(
            CohortSpec(name="drift", **base), BASE_SEED)
        zero = simulate_cohort(
            CohortSpec(name="drift", tuning_drift_per_s=0.0, **base),
            BASE_SEED)
        assert rows_of(plain) == rows_of(zero)

    def test_drift_changes_outcomes(self):
        base = dict(n_sessions=6, n_trials=3, train_timesteps=120,
                    timeout_s=2.0)
        plain = simulate_cohort(
            CohortSpec(name="drift", **base), BASE_SEED)
        drifted = simulate_cohort(
            CohortSpec(name="drift", tuning_drift_per_s=-0.2, **base),
            BASE_SEED)
        assert rows_of(plain) != rows_of(drifted)


class TestSharding:
    @pytest.fixture()
    def fleet(self):
        base = dict(n_sessions=6, n_trials=3, train_timesteps=120,
                    timeout_s=2.0)
        return FleetSpec([
            CohortSpec(name="shard_k", decoder="kalman", **base),
            CohortSpec(name="shard_w", decoder="wiener",
                       drop_rate=0.2, **base),
            CohortSpec(name="shard_d", decoder="dnn", **base),
        ])

    def test_serial_and_sharded_rows_identical(self, fleet):
        serial = run_fleet(fleet, BASE_SEED, jobs=1)
        sharded = run_fleet(fleet, BASE_SEED, jobs=2)
        assert [c.rows for c in serial] == [c.rows for c in sharded]
        assert [c.summary_row() for c in serial] == [
            c.summary_row() for c in sharded]

    def test_sharded_rows_keep_native_types(self, fleet):
        sharded = run_fleet(fleet, BASE_SEED, jobs=2)
        row = sharded[0].rows[0]
        assert isinstance(row["hits"], int)
        assert isinstance(row["bitrate_bps"], float)
        assert not any(isinstance(v, np.generic)
                       for v in row.values())
