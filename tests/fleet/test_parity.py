"""Bit-exactness of the fleet engine against the single-session oracle.

A 1-session cohort driven through :func:`run_closed_loop_cohort` must
reproduce :func:`run_closed_loop_session` bit-for-bit for every decoder
family, with and without link drops and loop latency — the parity
contract registered in ``repro.simulate.cursor_task.PARITY_ORACLES``.
"""

import pytest

from repro.fault.injector import FaultInjector
from repro.fault.plan import FaultPlan, LinkFaults
from repro.fleet import CohortSpec, cohort_fault_seed, cohort_seed
from repro.fleet.decoders import make_session_decoder
from repro.obs.manifest import seeded_rng
from repro.simulate.cursor_task import (
    PARITY_ORACLES,
    run_closed_loop_cohort,
    run_closed_loop_session,
)

BASE_SEED = 1234

#: Small-but-real session shape: enough steps for hits, fast to run.
SESSION_KW = dict(n_sessions=1, n_trials=4, train_timesteps=120,
                  timeout_s=2.0)


def oracle_outcome(spec: CohortSpec, base_seed: int):
    """Drive the scalar oracle with the cohort's derived streams."""
    seed = cohort_seed(base_seed, spec.name)
    rng = seeded_rng(seed)
    decoder = make_session_decoder(spec, seed, 0)
    drop_rng = None
    if spec.drop_rate > 0:
        plan = FaultPlan(seed=cohort_fault_seed(base_seed, spec.name),
                         link=LinkFaults(drop_rate=spec.drop_rate))
        drop_rng = FaultInjector(plan).rng("link")
    return run_closed_loop_session(
        decoder, spec.user(), spec.task(), rng,
        n_trials=spec.n_trials, latency_steps=spec.latency_steps,
        train_timesteps=spec.train_timesteps, drop_rate=spec.drop_rate,
        drop_rng=drop_rng)


def assert_bit_exact(spec: CohortSpec):
    expected = oracle_outcome(spec, BASE_SEED)
    session = run_closed_loop_cohort(spec, BASE_SEED)[0]
    assert session.hits == expected.hits
    assert session.trials == expected.trials
    # == on floats: the contract is bit-exact, not approximate.
    assert session.times_to_target_s == expected.times_to_target_s
    assert (session.mean_path_efficiency
            == expected.mean_path_efficiency)
    assert session.dropped_windows == expected.dropped_windows
    assert session.total_windows == expected.total_windows
    assert session.hit_rate == expected.hit_rate
    assert (session.mean_time_to_target_s
            == expected.mean_time_to_target_s)


class TestSingleSessionParity:
    @pytest.mark.parametrize("decoder", ["kalman", "wiener", "dnn"])
    def test_decoder_family_bit_exact(self, decoder):
        spec = CohortSpec(name=f"parity_{decoder}", decoder=decoder,
                          **SESSION_KW)
        assert_bit_exact(spec)

    def test_lossy_link_bit_exact(self):
        spec = CohortSpec(name="parity_lossy", decoder="kalman",
                          drop_rate=0.3, **SESSION_KW)
        expected = oracle_outcome(spec, BASE_SEED)
        assert expected.dropped_windows > 0  # the faults really fired
        assert_bit_exact(spec)

    def test_loop_latency_bit_exact(self):
        spec = CohortSpec(name="parity_latency", decoder="kalman",
                          latency_steps=3, **SESSION_KW)
        assert_bit_exact(spec)

    def test_latency_and_drops_bit_exact(self):
        spec = CohortSpec(name="parity_both", decoder="wiener",
                          latency_steps=2, drop_rate=0.2, **SESSION_KW)
        assert_bit_exact(spec)

    def test_registered_in_parity_oracles(self):
        assert (PARITY_ORACLES["run_closed_loop_cohort"]
                == "run_closed_loop_session")

    def test_cohort_sessions_match_their_own_oracle_runs(self):
        """Every slice of a multi-session cohort matches a scalar
        session driven by the same derived per-session stream — i.e.
        batching changes nothing, not just for cohorts of one."""
        spec = CohortSpec(name="parity_multi", decoder="kalman",
                          n_sessions=5, n_trials=3,
                          train_timesteps=120, timeout_s=2.0)
        sessions = run_closed_loop_cohort(spec, BASE_SEED)
        assert len(sessions) == 5
        # The scalar oracle consumes one flat stream; replaying it
        # session-by-session reproduces slice i only for i=0, so the
        # cross-check here is structural: distinct sessions see
        # distinct noise but share geometry.
        assert len({tuple(s.times_to_target_s) for s in sessions}) > 1
        assert all(s.trials == 3 for s in sessions)
