"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_designs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "BISC" in out and "Pollman" in out


class TestAssess:
    def test_assess_bisc(self, capsys):
        assert main(["assess", "1"]) == 0
        out = capsys.readouterr().out
        assert "BISC" in out and "SAFE" in out

    def test_assess_unknown_soc(self, capsys):
        assert main(["assess", "42"]) == 2


class TestEvaluate:
    def test_single_experiment(self, capsys, tmp_path):
        assert main(["evaluate", "fig9",
                     "--output-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "design points" in out
        assert (tmp_path / "fig9.csv").exists()

    def test_unknown_experiment(self, capsys, tmp_path):
        assert main(["evaluate", "fig99",
                     "--output-dir", str(tmp_path)]) == 2

    def test_multiple_experiments(self, capsys, tmp_path):
        assert main(["evaluate", "table1", "fig4",
                     "--output-dir", str(tmp_path)]) == 0
        assert (tmp_path / "table1.csv").exists()
        assert (tmp_path / "fig4.csv").exists()

    def test_parallel_jobs_writes_same_artifacts(self, capsys, tmp_path):
        assert main(["evaluate", "table1", "fig4", "--jobs", "2",
                     "--seed", "9", "--quiet",
                     "--output-dir", str(tmp_path / "par")]) == 0
        assert main(["evaluate", "table1", "fig4",
                     "--seed", "9", "--quiet",
                     "--output-dir", str(tmp_path / "ser")]) == 0
        for name in ("table1.csv", "fig4.csv"):
            assert ((tmp_path / "par" / name).read_bytes()
                    == (tmp_path / "ser" / name).read_bytes())

    def test_negative_jobs_rejected(self, capsys, tmp_path):
        assert main(["evaluate", "fig7", "fig8", "--jobs", "-3",
                     "--output-dir", str(tmp_path)]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestExplore:
    def test_explore_bisc(self, capsys):
        assert main(["explore", "1", "--channels", "2048"]) == 0
        out = capsys.readouterr().out
        assert "strategy" in out and "best at target" in out

    def test_explore_wired_rejected(self, capsys):
        assert main(["explore", "10"]) == 2

    def test_explore_unknown(self, capsys):
        assert main(["explore", "42"]) == 2


class TestRoadmap:
    def test_roadmap_bisc(self, capsys):
        assert main(["roadmap", "1"]) == 0
        out = capsys.readouterr().out
        assert "overtaken_in" in out and "never" in out

    def test_roadmap_wired_rejected(self, capsys):
        assert main(["roadmap", "9"]) == 2

    def test_roadmap_unknown(self, capsys):
        assert main(["roadmap", "42"]) == 2


class TestValidate:
    @staticmethod
    def _fake_results(passed):
        from repro.experiments.validate import CLAIMS, ClaimResult
        return [ClaimResult(claim=CLAIMS[0], passed=passed,
                            measured=1.0)]

    def test_validate_all_pass_exits_zero(self, capsys, monkeypatch):
        import repro.experiments.validate as validate_mod
        monkeypatch.setattr(validate_mod, "validate_all",
                            lambda: self._fake_results(True))
        assert main(["validate"]) == 0
        assert "1/1 claims reproduced" in capsys.readouterr().out

    def test_validate_failure_exits_one(self, capsys, monkeypatch):
        import repro.experiments.validate as validate_mod
        monkeypatch.setattr(validate_mod, "validate_all",
                            lambda: self._fake_results(False))
        assert main(["validate"]) == 1
        assert "[FAIL]" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_trace_writes_json_with_experiment_span(self, capsys,
                                                    tmp_path):
        assert main(["evaluate", "fig8", "--trace",
                     "--output-dir", str(tmp_path)]) == 0
        trace_path = tmp_path / "trace.json"
        assert trace_path.exists()
        spans = json.loads(trace_path.read_text())
        names = [s["name"] for s in spans]
        assert "experiment.fig8" in names
        assert f"trace written to {trace_path}" in capsys.readouterr().out

    def test_quiet_suppresses_renderings(self, capsys, tmp_path):
        assert main(["evaluate", "fig8", "--quiet",
                     "--output-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8" not in out
        assert (tmp_path / "fig8.csv").exists()

    def test_metrics_flag_prints_snapshot(self, capsys, tmp_path):
        assert main(["evaluate", "fig8", "--quiet", "--metrics",
                     "--output-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "-- metrics --" in out
        assert "experiments.runs" in out

    def test_evaluate_writes_manifest_next_to_csv(self, tmp_path):
        assert main(["evaluate", "fig8", "--quiet",
                     "--output-dir", str(tmp_path)]) == 0
        manifest = json.loads(
            (tmp_path / "fig8.manifest.json").read_text())
        assert manifest["name"] == "fig8"
        assert manifest["duration_s"] is not None
        assert manifest["python"]

    def test_seed_recorded_in_manifest(self, tmp_path):
        assert main(["evaluate", "fig8", "--quiet", "--seed", "42",
                     "--output-dir", str(tmp_path)]) == 0
        manifest = json.loads(
            (tmp_path / "fig8.manifest.json").read_text())
        assert manifest["seed"] == 42

    def test_state_resets_between_invocations(self, tmp_path):
        from repro.obs import manifest as manifest_mod
        from repro.obs import metrics, trace
        assert main(["evaluate", "fig8", "--quiet", "--trace",
                     "--metrics", "--seed", "7",
                     "--output-dir", str(tmp_path)]) == 0
        assert not trace.tracing_enabled()
        assert not metrics.metrics_enabled()
        assert trace.TRACER.roots == []
        assert manifest_mod.current_seed() is None


class TestProfile:
    def test_profile_prints_span_tree_and_hotspots(self, capsys):
        assert main(["profile", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "experiment.fig8" in out
        assert "fig8.worked_examples" in out
        assert "hotspots" in out
        # Durations are rendered with a unit suffix.
        assert " ms" in out or " us" in out or " s" in out

    def test_profile_unknown_experiment(self, capsys):
        assert main(["profile", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_profile_extension_experiment_is_known(self, capsys):
        assert main(["profile", "fig8", "--top", "3"]) == 0


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCacheFlag:
    def test_warm_run_reports_all_hits(self, capsys, tmp_path):
        args = ["evaluate", "table1", "fig4", "--seed", "7", "--quiet",
                "--cache", "--output-dir", str(tmp_path)]
        assert main(args) == 0
        assert "cache: 0/2 driver hits" in capsys.readouterr().out
        assert main(args) == 0
        assert "cache: 2/2 driver hits" in capsys.readouterr().out
        assert (tmp_path / ".cache").is_dir()

    def test_no_cache_is_default(self, capsys, tmp_path):
        assert main(["evaluate", "table1", "--quiet",
                     "--output-dir", str(tmp_path)]) == 0
        assert "driver hits" not in capsys.readouterr().out
        assert not (tmp_path / ".cache").exists()

    def test_warm_csv_bytes_identical(self, capsys, tmp_path):
        cached = ["evaluate", "fig4", "--seed", "7", "--quiet",
                  "--cache", "--output-dir", str(tmp_path / "c")]
        assert main(cached) == 0
        cold = (tmp_path / "c" / "fig4.csv").read_bytes()
        assert main(cached) == 0
        assert (tmp_path / "c" / "fig4.csv").read_bytes() == cold
        assert main(["evaluate", "fig4", "--seed", "7", "--quiet",
                     "--output-dir", str(tmp_path / "p")]) == 0
        assert (tmp_path / "p" / "fig4.csv").read_bytes() == cold

    def test_profile_negative_jobs_rejected_same_message(self, capsys):
        assert main(["profile", "all", "--jobs", "-2"]) == 2
        err = capsys.readouterr().err
        assert "--jobs must be positive (or 0 for all CPUs)" in err


class TestCacheCommand:
    def _populate(self, tmp_path):
        assert main(["evaluate", "table1", "--seed", "7", "--quiet",
                     "--cache", "--output-dir", str(tmp_path)]) == 0

    def test_stats(self, capsys, tmp_path):
        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "stats",
                     "--output-dir", str(tmp_path)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["by_kind"] == {"driver": 1}
        assert stats["by_label"] == {"table1": 1}

    def test_clear(self, capsys, tmp_path):
        self._populate(tmp_path)
        assert main(["cache", "clear",
                     "--output-dir", str(tmp_path)]) == 0
        assert "1 entries removed" in capsys.readouterr().out
        capsys.readouterr()
        assert main(["cache", "stats",
                     "--output-dir", str(tmp_path)]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_gc_with_no_limits_keeps_entries(self, capsys, tmp_path):
        self._populate(tmp_path)
        assert main(["cache", "gc", "--output-dir", str(tmp_path)]) == 0
        assert "removed 0, kept 1" in capsys.readouterr().out

    def test_gc_by_age_prunes(self, capsys, tmp_path):
        self._populate(tmp_path)
        assert main(["cache", "gc", "--max-age-days", "0",
                     "--output-dir", str(tmp_path)]) == 0
        assert "removed 1, kept 0" in capsys.readouterr().out

    def test_stats_on_missing_cache(self, capsys, tmp_path):
        assert main(["cache", "stats",
                     "--output-dir", str(tmp_path)]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0
