"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_designs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "BISC" in out and "Pollman" in out


class TestAssess:
    def test_assess_bisc(self, capsys):
        assert main(["assess", "1"]) == 0
        out = capsys.readouterr().out
        assert "BISC" in out and "SAFE" in out

    def test_assess_unknown_soc(self, capsys):
        assert main(["assess", "42"]) == 2


class TestEvaluate:
    def test_single_experiment(self, capsys, tmp_path):
        assert main(["evaluate", "fig9",
                     "--output-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "design points" in out
        assert (tmp_path / "fig9.csv").exists()

    def test_unknown_experiment(self, capsys, tmp_path):
        assert main(["evaluate", "fig99",
                     "--output-dir", str(tmp_path)]) == 2

    def test_multiple_experiments(self, capsys, tmp_path):
        assert main(["evaluate", "table1", "fig4",
                     "--output-dir", str(tmp_path)]) == 0
        assert (tmp_path / "table1.csv").exists()
        assert (tmp_path / "fig4.csv").exists()


class TestExplore:
    def test_explore_bisc(self, capsys):
        assert main(["explore", "1", "--channels", "2048"]) == 0
        out = capsys.readouterr().out
        assert "strategy" in out and "best at target" in out

    def test_explore_wired_rejected(self, capsys):
        assert main(["explore", "10"]) == 2

    def test_explore_unknown(self, capsys):
        assert main(["explore", "42"]) == 2


class TestRoadmap:
    def test_roadmap_bisc(self, capsys):
        assert main(["roadmap", "1"]) == 0
        out = capsys.readouterr().out
        assert "overtaken_in" in out and "never" in out

    def test_roadmap_wired_rejected(self, capsys):
        assert main(["roadmap", "9"]) == 2

    def test_roadmap_unknown(self, capsys):
        assert main(["roadmap", "42"]) == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
