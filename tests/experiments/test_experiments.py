"""Integration tests for the figure drivers — the paper-shape assertions.

Each test pins the qualitative claim the corresponding paper artifact
makes; EXPERIMENTS.md records the quantitative paper-vs-measured values.
"""

import math

import pytest

from repro.experiments import ALL_EXPERIMENTS, run_all
from repro.experiments import (
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
)


@pytest.fixture(scope="module")
def results():
    """Run each driver once for the whole module."""
    return {module.__name__.rsplit(".", 1)[-1]: module.run()
            for module in ALL_EXPERIMENTS}


class TestTable1:
    def test_eleven_rows(self, results):
        assert len(results["table1"].rows) == 11

    def test_summary(self, results):
        assert results["table1"].summary["n_wireless"] == 8

    def test_render_mentions_designs(self, results):
        text = table1.render(results["table1"])
        assert "Neuralink" in text and "BISC" in text


class TestFig4:
    def test_all_designs_safe(self, results):
        assert results["fig4"].summary["all_safe"]

    def test_density_at_most_40(self, results):
        assert results["fig4"].summary["max_density_mw_cm2"] <= 40.0 + 1e-9

    def test_halo_star_present(self, results):
        names = [r["name"] for r in results["fig4"].rows]
        assert "HALO*" in names

    def test_render_has_budget_line(self, results):
        assert "budget line" in fig4.render(results["fig4"])


class TestFig5:
    def test_naive_ratio_constant(self, results):
        assert results["fig5"].summary["naive_ratio_constant"]

    def test_naive_within_budget(self, results):
        assert results["fig5"].summary["naive_all_within_budget"]

    def test_high_margin_all_cross(self, results):
        assert results["fig5"].summary["high_margin_all_cross"]

    def test_mean_crossing_between_1k_and_8k(self, results):
        mean = results["fig5"].summary["mean_crossing_channels"]
        assert 1024 < mean < 8192

    def test_render_has_both_designs(self, results):
        text = fig5.render(results["fig5"])
        assert "naive design" in text and "high_margin design" in text


class TestFig6:
    def test_naive_flat(self, results):
        assert results["fig6"].summary["naive_flat"]

    def test_high_margin_monotone(self, results):
        assert results["fig6"].summary["high_margin_monotone"]

    def test_sensing_dominates_at_8192(self, results):
        assert results["fig6"].summary["high_margin_mean_at_8192"] > 0.8

    def test_render(self, results):
        assert "sensing area fraction" in fig6.render(results["fig6"])


class TestFig7:
    def test_realizable_socs_exist(self, results):
        assert len(results["fig7"].summary["realizable_socs"]) >= 3

    def test_20pct_multiplier_near_2x(self, results):
        assert results["fig7"].summary["multiplier_at_20pct"] == \
            pytest.approx(2.0, rel=0.15)

    def test_100pct_multiplier_near_4x(self, results):
        assert results["fig7"].summary["multiplier_at_100pct"] == \
            pytest.approx(4.0, rel=0.20)

    def test_efficiency_curves_rise(self, results):
        rows = [r for r in results["fig7"].rows if r["soc"] == "BISC"
                and math.isfinite(r["min_efficiency_pct"])]
        effs = [r["min_efficiency_pct"] for r in rows]
        assert effs == sorted(effs)

    def test_render(self, results):
        assert "min QAM efficiency" in fig7.render(results["fig7"])


class TestFig8:
    def test_examples_match_paper(self, results):
        summary = results["fig8"].summary
        assert summary["matmul_matches_paper"]
        assert summary["conv_matches_paper"]
        assert summary["live_conv_consistent"]

    def test_render(self, results):
        assert "Fig. 8 matmul" in fig8.render(results["fig8"])


class TestFig9:
    def test_small_designs_near_25pct(self, results):
        assert results["fig9"].summary["pe_fraction_designs_1_5"] == \
            pytest.approx(0.25, abs=0.05)

    def test_design_9_near_80pct(self, results):
        assert results["fig9"].summary["pe_fraction_design_9"] == \
            pytest.approx(0.80, abs=0.07)

    def test_design_12_near_96pct(self, results):
        assert results["fig9"].summary["pe_fraction_design_12"] == \
            pytest.approx(0.96, abs=0.03)

    def test_power_monotone(self, results):
        assert results["fig9"].summary["power_monotone_6_12"]

    def test_render(self, results):
        assert "PE power" in fig9.render(results["fig9"])


class TestFig10:
    def test_flagships_fit_both_dnns(self, results):
        summary = results["fig10"].summary
        for workload in ("mlp", "dncnn"):
            assert "BISC" in summary[f"{workload}_fits_at_1024"]
            assert "Gilhotra" in summary[f"{workload}_fits_at_1024"]

    def test_several_socs_cannot_fit(self, results):
        summary = results["fig10"].summary
        assert len(summary["dncnn_fits_at_1024"]) <= 3
        assert len(summary["mlp_fits_at_1024"]) <= 5

    def test_avg_max_channels_in_paper_range(self, results):
        summary = results["fig10"].summary
        assert 1300 <= summary["mlp_avg_max_channels"] <= 2100
        assert 1100 <= summary["dncnn_avg_max_channels"] <= 1700

    def test_mlp_scales_further_than_dncnn(self, results):
        summary = results["fig10"].summary
        assert (summary["mlp_avg_max_channels"]
                > summary["dncnn_avg_max_channels"])


class TestFig11:
    def test_mlp_gain_near_20pct(self, results):
        assert 1.10 <= results["fig11"].summary["mlp_avg_gain"] <= 1.35

    def test_mlp_best_gain(self, results):
        assert results["fig11"].summary["mlp_best_gain"] >= 1.3

    def test_dncnn_no_benefit(self, results):
        assert results["fig11"].summary["dncnn_avg_gain"] == \
            pytest.approx(1.0)
        assert not results["fig11"].summary["dncnn_any_benefit"]

    def test_render(self, results):
        assert "no benefit" in fig11.render(results["fig11"])


class TestFig12:
    def test_ladder_averages_track_paper(self, results):
        summary = results["fig12"].summary
        # Paper averages at 2048: ChDr 32 %, Tech 72 %; at 8192: ChDr 2 %.
        assert summary["avg_model_size_pct_2048_ChDr"] == pytest.approx(
            32.0, abs=12.0)
        assert summary["avg_model_size_pct_2048_La+ChDr+Tech"] == \
            pytest.approx(72.0, abs=12.0)
        assert summary["avg_model_size_pct_8192_ChDr"] == pytest.approx(
            2.0, abs=3.0)

    def test_la_improves_on_chdr(self, results):
        summary = results["fig12"].summary
        for n in (2048, 4096, 8192):
            assert (summary[f"avg_model_size_pct_{n}_La+ChDr"]
                    >= summary[f"avg_model_size_pct_{n}_ChDr"])

    def test_dense_shrinks_model(self, results):
        summary = results["fig12"].summary
        for n in (2048, 4096, 8192):
            assert (summary[f"avg_model_size_pct_{n}_La+ChDr+Tech+Dense"]
                    <= summary[f"avg_model_size_pct_{n}_La+ChDr+Tech"])


class TestRunAll:
    def test_writes_all_csvs(self, tmp_path):
        results = run_all(output_dir=tmp_path)
        assert len(results) == len(ALL_EXPERIMENTS)
        for result in results:
            assert (tmp_path / f"{result.name}.csv").exists()

    def test_results_named_after_artifacts(self, tmp_path):
        names = {r.name for r in run_all(output_dir=tmp_path)}
        assert names == {"table1", "fig4", "fig5", "fig6", "fig7",
                         "fig8", "fig9", "fig10", "fig11", "fig12"}
