"""Tests for the programmatic paper-claims validator."""

import pytest

from repro.experiments.validate import (
    CLAIMS,
    Claim,
    ClaimResult,
    render_results,
    validate_all,
)


@pytest.fixture(scope="module")
def results():
    return validate_all()


class TestClaimsCatalogue:
    def test_covers_every_evaluated_figure(self):
        artifacts = {claim.artifact for claim in CLAIMS}
        assert artifacts == {"fig4", "fig5", "fig6", "fig7", "fig9",
                             "fig10", "fig11", "fig12"}

    def test_at_least_two_claims_per_headline_figure(self):
        for figure in ("fig5", "fig7", "fig9", "fig10", "fig11", "fig12"):
            count = sum(1 for c in CLAIMS if c.artifact == figure)
            assert count >= 2, figure


class TestValidation:
    def test_all_claims_reproduce(self, results):
        failing = [r.claim.statement for r in results if not r.passed]
        assert not failing, failing

    def test_one_result_per_claim(self, results):
        assert len(results) == len(CLAIMS)

    def test_measured_values_attached(self, results):
        for result in results:
            assert result.measured is not None

    def test_render_contains_verdicts(self, results):
        text = render_results(results)
        assert "PASS" in text
        assert f"{len(CLAIMS)}/{len(CLAIMS)} claims reproduced" in text

    def test_render_marks_failures(self):
        fake = ClaimResult(
            claim=Claim("fig4", "impossible", lambda s: False,
                        lambda s: 0),
            passed=False, measured=0)
        assert "FAIL" in render_results([fake])

    def test_custom_claim_subset(self):
        subset = tuple(c for c in CLAIMS if c.artifact == "fig9")
        results = validate_all(subset)
        assert len(results) == len(subset)
        assert all(r.passed for r in results)


class TestCliValidate:
    def test_exit_code_zero_on_full_pass(self, capsys):
        from repro.cli import main
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "claims reproduced" in out
