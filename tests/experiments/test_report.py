"""Tests for the reporting utilities."""

import math

import pytest

from repro.experiments.report import (
    ascii_bars,
    ascii_plot,
    format_table,
    write_csv,
)


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_columns_and_alignment(self):
        rows = [{"name": "BISC", "power": 38.88},
                {"name": "Neuralink", "power": 7.8}]
        text = format_table(rows)
        lines = text.splitlines()
        assert "name" in lines[0] and "power" in lines[0]
        assert "BISC" in lines[2]
        assert "38.880" in text

    def test_bool_rendering(self):
        text = format_table([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text

    def test_inf_rendering(self):
        assert "inf" in format_table([{"x": math.inf}])

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        text = ascii_plot({"series": [(0, 0), (1, 1), (2, 4)]})
        assert "o" in text
        assert "o = series" in text

    def test_skips_infinite(self):
        text = ascii_plot({"s": [(0, 1), (1, math.inf)]})
        assert "inf" not in text.splitlines()[0] or True
        assert "o" in text

    def test_empty_series(self):
        assert ascii_plot({"s": []}) == "(no finite points to plot)"

    def test_y_max_clips(self):
        text = ascii_plot({"s": [(0, 1), (1, 1000)]}, y_max=10)
        assert "1e+03" not in text

    def test_multiple_series_distinct_markers(self):
        text = ascii_plot({"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]})
        assert "o = a" in text and "x = b" in text


class TestAsciiBars:
    def test_values_rendered(self):
        text = ascii_bars({"BISC": 2.0, "Neuralink": 1.0})
        assert "BISC" in text and "#" in text

    def test_reference_marker(self):
        text = ascii_bars({"a": 0.5}, reference=1.0)
        assert "|" in text

    def test_infeasible_label(self):
        assert "(infeasible)" in ascii_bars({"a": math.inf})

    def test_empty(self):
        assert ascii_bars({}) == "(no bars)"


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        rows = [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]
        path = write_csv(tmp_path / "out.csv", rows)
        content = path.read_text().strip().splitlines()
        assert content[0] == "x,y"
        assert content[1] == "1,a"

    def test_creates_parents(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "dir" / "out.csv",
                         [{"a": 1}])
        assert path.exists()

    def test_empty_rows(self, tmp_path):
        path = write_csv(tmp_path / "empty.csv", [])
        assert path.read_text() == ""
