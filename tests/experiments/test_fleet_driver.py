"""The fleet experiment driver: registration, contract, rendering."""

import pytest

from repro.experiments import (
    EXTENSION_EXPERIMENTS,
    fleet as fleet_driver,
    run_module,
)
from repro.experiments.base import ExperimentResult
from repro.fleet import FleetSpec


@pytest.fixture(scope="module")
def result():
    spec = fleet_driver.default_fleet(sessions=4)
    return fleet_driver.run_spec(spec, base_seed=5)


class TestRegistration:
    def test_registered_as_extension(self):
        assert fleet_driver in EXTENSION_EXPERIMENTS

    def test_frontier_stays_last(self):
        assert EXTENSION_EXPERIMENTS[-1].__name__.endswith("frontier")


class TestDefaultFleet:
    def test_covers_every_decoder_family(self):
        fleet = fleet_driver.default_fleet()
        assert {c.decoder for c in fleet.cohorts} == {
            "kalman", "wiener", "dnn"}

    def test_has_lossy_and_drifting_cohorts(self):
        fleet = fleet_driver.default_fleet()
        assert any(c.drop_rate > 0 for c in fleet.cohorts)
        assert any(c.tuning_drift_per_s != 0 for c in fleet.cohorts)

    def test_sessions_override(self):
        fleet = fleet_driver.default_fleet(sessions=3)
        assert all(c.n_sessions == 3 for c in fleet.cohorts)

    def test_decoder_filter(self):
        fleet = fleet_driver.default_fleet(decoder="kalman")
        assert isinstance(fleet, FleetSpec)
        assert all(c.decoder == "kalman" for c in fleet.cohorts)

    def test_unknown_decoder_filter_rejected(self):
        with pytest.raises(ValueError):
            fleet_driver.default_fleet(decoder="svm")


class TestContract:
    def test_result_shape(self, result):
        assert isinstance(result, ExperimentResult)
        assert result.name == "fleet"
        assert result.columns == fleet_driver.COLUMNS
        assert len(result.rows) == 5
        for row in result.rows:
            assert list(row) == fleet_driver.COLUMNS

    def test_summary_keys(self, result):
        assert result.summary["cohorts"] == 5
        assert result.summary["fleet_sessions"] == 20
        assert result.summary["best_clean_bitrate_p50_bps"] >= 0.0

    def test_render(self, result):
        text = fleet_driver.render(result)
        assert "kalman_clean" in text
        assert "bitrate" in text

    def test_runs_under_run_module(self):
        """The driver behaves under the instrumented entry point the
        evaluate CLI and run_all use (seed derivation + telemetry)."""
        small = fleet_driver.run_spec(
            fleet_driver.default_fleet(sessions=2), base_seed=5)
        assert small.rows
        result = run_module(fleet_driver, seed=5)
        assert result.name == "fleet"
        assert result.derived_seed is not None
        assert len(result.rows) == 5
