"""Tests for the extension frontier experiment and the result container."""

import pytest

from repro.experiments import EXTENSION_EXPERIMENTS, frontier, run_all
from repro.experiments.base import ExperimentResult, filter_finite, mean_of


@pytest.fixture(scope="module")
def result():
    return frontier.run()


class TestFrontierExperiment:
    def test_registered_as_extension(self):
        assert frontier in EXTENSION_EXPERIMENTS

    def test_every_wireless_soc_covered(self, result):
        socs = {row["soc"] for row in result.rows}
        assert len(socs) == 8

    def test_tiling_row_present_per_soc(self, result):
        tiling = [row for row in result.rows
                  if row["strategy"] == "multi-implant tiling"]
        assert len(tiling) == 8
        assert all(row["max_channels"] >= 1024 for row in tiling)

    def test_best_strategies_reported(self, result):
        best = result.summary["best_strategy_at_2048"]
        assert set(best) == {row["soc"] for row in result.rows}
        assert best["BISC"] is not None

    def test_render_contains_every_soc(self, result):
        text = frontier.render(result)
        for soc in ("BISC", "HALO*"):
            assert soc in text

    def test_run_all_includes_extensions_when_asked(self, tmp_path):
        results = run_all(output_dir=tmp_path, include_extensions=True)
        names = [r.name for r in results]
        assert names[-1] == "frontier"
        assert (tmp_path / "frontier.csv").exists()


class TestExperimentResult:
    def test_save_csv_writes_columns(self, tmp_path):
        result = ExperimentResult(name="demo", title="t",
                                  rows=[{"a": 1, "b": 2.0}])
        path = result.save_csv(tmp_path)
        assert path.read_text().splitlines()[0] == "a,b"

    def test_summary_lines(self):
        result = ExperimentResult(name="demo", title="t", rows=[],
                                  summary={"x": 1, "y": "z"})
        assert result.summary_lines() == ["x: 1", "y: z"]

    def test_mean_of_empty(self):
        assert mean_of([]) == 0.0
        assert mean_of([2.0, 4.0]) == 3.0

    def test_filter_finite(self):
        import math
        assert filter_finite({"a": 1.0, "b": math.inf}) == {"a": 1.0}
