"""Shared harness for the DAG scheduler suite.

Every equivalence test in this package compares full *artifact
triples* — CSV bytes, manifest structure (volatile provenance fields
stripped), and the serialized event timeline — captured by
:func:`capture_run` under freshly reset telemetry.  The fixtures keep
the process-wide observability substrates enabled for the duration of a
module and restore the disabled default afterwards, so the rest of the
suite still exercises the no-op instrumentation paths.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

import pytest

from repro import obs
from repro.obs import EVENTS, REGISTRY, TRACER

#: Manifest fields that legitimately differ between byte-identical
#: runs (clock, wall time, allocator high-water mark).
VOLATILE_MANIFEST_FIELDS = ("created_unix_s", "duration_s",
                            "peak_rss_bytes")


def reset_telemetry() -> None:
    """Clear spans, metrics, and events collected so far."""
    TRACER.reset()
    REGISTRY.reset()
    EVENTS.reset()


def capture_run(runner: Callable[[], Any],
                directory: Path) -> tuple[bytes, dict, str]:
    """Run one driver under fresh telemetry and capture its artifacts.

    Returns ``(csv_bytes, manifest_without_volatile_fields,
    events_jsonl_text)`` — the triple that must be invariant across
    dispatch orders and worker counts.
    """
    reset_telemetry()
    result = runner()
    result.save_csv(directory)
    csv_bytes = (directory / f"{result.name}.csv").read_bytes()
    manifest = json.loads(
        (directory / f"{result.name}.manifest.json").read_text())
    for name in VOLATILE_MANIFEST_FIELDS:
        manifest.pop(name, None)
    return csv_bytes, manifest, EVENTS.to_jsonl()


@pytest.fixture(scope="module")
def telemetry():
    """Module-scoped: observability on, restored to disabled after."""
    obs.enable_all()
    try:
        yield
    finally:
        reset_telemetry()
        obs.disable_all()
