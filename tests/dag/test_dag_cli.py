"""CLI surface of the DAG layer: ``dag show`` and ``evaluate --dag``.

``dag show`` is golden-tested against the exact rendered listing (the
graph shape is part of the public contract), and ``evaluate --dag``
must write CSVs byte-identical to the plain imperative ``evaluate`` —
serial and with node-level parallelism, cached and not.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.perf.pool import shutdown_pool

FIG7_LISTING = """\
experiment fig7: 4 stage(s)
  params: budget=None
  setup: [budget] -> [link_budget, socs]
  sweep: [socs, link_budget] -> [rows]
    after: setup
  multipliers: [socs, link_budget] -> [realizable, max_at_20, max_at_100]
    after: setup
  report: [rows, realizable, max_at_20, max_at_100] -> [result]
    after: sweep, multipliers
"""


def csv_bytes(directory):
    return {path.name: path.read_bytes()
            for path in sorted(directory.glob("*.csv"))}


class TestDagShow:
    def test_fig7_golden_listing(self, capsys):
        assert main(["dag", "show", "fig7"]) == 0
        assert capsys.readouterr().out == FIG7_LISTING

    def test_fleet_listing_names_seed_stream(self, capsys):
        assert main(["dag", "show", "fleet"]) == 0
        out = capsys.readouterr().out
        assert "experiment fleet: 3 stage(s)" in out
        assert "params: base_seed=None" in out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["dag", "show", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'fig99'" in err
        assert "'fig7'" in err  # the listing names the graphed drivers

    def test_imperative_only_driver_exits_2(self, capsys):
        assert main(["dag", "show", "fig4"]) == 2
        assert "no experiment graph" in capsys.readouterr().err


class TestEvaluateDag:
    @pytest.fixture(scope="class", autouse=True)
    def _pool(self):
        try:
            yield
        finally:
            shutdown_pool()

    def test_dag_csvs_match_imperative(self, capsys, tmp_path):
        names = ["table1", "fig7", "frontier", "fleet"]
        imperative = tmp_path / "imperative"
        dag_serial = tmp_path / "dag_serial"
        dag_pool = tmp_path / "dag_pool"
        base = ["evaluate", *names, "--seed", "7"]
        assert main([*base, "--output-dir", str(imperative)]) == 0
        assert main([*base, "--dag",
                     "--output-dir", str(dag_serial)]) == 0
        assert main([*base, "--dag", "--jobs", "2",
                     "--output-dir", str(dag_pool)]) == 0
        capsys.readouterr()
        want = csv_bytes(imperative)
        assert set(want) == {f"{name}.csv" for name in names}
        assert csv_bytes(dag_serial) == want
        assert csv_bytes(dag_pool) == want

    def test_dag_cache_warm_run_matches(self, capsys, tmp_path):
        base = ["evaluate", "fig7", "--seed", "7", "--dag", "--cache",
                "--output-dir", str(tmp_path)]
        assert main(base) == 0
        cold = csv_bytes(tmp_path)
        assert (tmp_path / ".cache").is_dir()
        assert main(base) == 0
        capsys.readouterr()
        assert csv_bytes(tmp_path) == cold

    def test_dag_falls_back_for_unported_drivers(self, capsys,
                                                 tmp_path):
        # fig4 has no graph; --dag must still evaluate it imperatively.
        assert main(["evaluate", "fig4", "--seed", "7", "--dag",
                     "--output-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert (tmp_path / "fig4.csv").exists()
