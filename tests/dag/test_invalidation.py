"""Stage-granular incremental recompute: edit one stage, pay for one
subtree.

The node cache's three-part source fingerprint (stage body / module
shell / dependency closure) is what makes invalidation *surgical*:

* warm rerun: every node replays from cache, nothing executes;
* editing one stage function's body invalidates exactly that node
  plus its descendants (provenance flows through keys);
* editing the module shell (anything outside function bodies)
  invalidates every node of the driver;
* a different seed for a seeded graph misses, an unrelated one hits.

The tests run against a temporary copy of the source tree
(``source_root=``), edit files there, and read per-node hit/miss/run
counters — the imported modules themselves never change.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.cache.fingerprint import clear_cached_fingerprints
from repro.cache.store import CacheStore
from repro.dag import graph_for, run_graph
from repro.experiments import fig7, fleet
from repro.obs import REGISTRY

from tests.dag.conftest import reset_telemetry

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"

FIG7_NODES = ("setup", "sweep", "multipliers", "report")


@pytest.fixture(scope="module", autouse=True)
def _telemetry(telemetry):
    yield


@pytest.fixture()
def tree(tmp_path):
    """A private copy of the source tree fingerprints resolve against."""
    root = tmp_path / "src"
    shutil.copytree(SRC_ROOT / "repro", root / "repro")
    clear_cached_fingerprints()
    try:
        yield root
    finally:
        clear_cached_fingerprints()


def run_fig7(store: CacheStore, root: Path) -> dict:
    reset_telemetry()
    return run_graph(graph_for(fig7), store=store, source_root=root)


def cache_counts(graph: str, nodes) -> dict[str, tuple[float, float]]:
    return {node: (REGISTRY.counter(f"cache.node_hits.{graph}.{node}"),
                   REGISTRY.counter(f"cache.node_misses.{graph}.{node}"))
            for node in nodes}


def edit(path: Path, old: str, new: str) -> None:
    text = path.read_text(encoding="utf-8")
    assert old in text, f"edit anchor missing from {path}"
    path.write_text(text.replace(old, new), encoding="utf-8")
    clear_cached_fingerprints()


class TestFig7Invalidation:
    def test_warm_rerun_hits_every_node(self, tree, tmp_path):
        store = CacheStore(tmp_path / ".cache")
        run_fig7(store, tree)
        assert cache_counts("fig7", FIG7_NODES) == {
            node: (0.0, 1.0) for node in FIG7_NODES}

        environment = run_fig7(store, tree)
        assert cache_counts("fig7", FIG7_NODES) == {
            node: (1.0, 0.0) for node in FIG7_NODES}
        assert REGISTRY.counter("dag.node_runs") == 0
        assert environment["result"].summary["realizable_socs"]

    def test_stage_edit_recomputes_node_and_descendants(self, tree,
                                                        tmp_path):
        store = CacheStore(tmp_path / ".cache")
        run_fig7(store, tree)
        # A body-only edit to stage_multipliers: its own fingerprint
        # changes, sweep/setup are untouched, report's key changes
        # through its inputs' provenance.
        edit(tree / "repro" / "experiments" / "fig7.py",
             'with span("fig7.multipliers"):',
             'with span("fig7.multipliers"):\n        _edited = True')
        run_fig7(store, tree)
        assert cache_counts("fig7", FIG7_NODES) == {
            "setup": (1.0, 0.0),
            "sweep": (1.0, 0.0),
            "multipliers": (0.0, 1.0),
            "report": (0.0, 1.0),
        }
        assert REGISTRY.counter("dag.node_runs.fig7.multipliers") == 1
        assert REGISTRY.counter("dag.node_runs.fig7.sweep") == 0

    def test_shell_edit_recomputes_every_node(self, tree, tmp_path):
        store = CacheStore(tmp_path / ".cache")
        run_fig7(store, tree)
        # A comment outside any function body is part of the module
        # shell, which every node of the driver folds in.
        edit(tree / "repro" / "experiments" / "fig7.py",
             "#: Sweep range of the Fig. 7 x-axis.",
             "#: Sweep range of the Fig. 7 x-axis (edited).")
        run_fig7(store, tree)
        assert cache_counts("fig7", FIG7_NODES) == {
            node: (0.0, 1.0) for node in FIG7_NODES}

    def test_dependency_edit_recomputes_every_node(self, tree,
                                                   tmp_path):
        store = CacheStore(tmp_path / ".cache")
        run_fig7(store, tree)
        # qam_design is in fig7's import closure; touching it changes
        # the deps digest of every fig7 node.
        edit(tree / "repro" / "core" / "qam_design.py",
             "Communication-centric architectures",
             "Communication-centric architectures (edited)")
        run_fig7(store, tree)
        assert cache_counts("fig7", FIG7_NODES) == {
            node: (0.0, 1.0) for node in FIG7_NODES}


class TestSeedKeying:
    def test_seed_changes_only_seeded_subtree(self, tree, tmp_path):
        store = CacheStore(tmp_path / ".cache")
        graph = graph_for(fleet)
        nodes = ("spec", "simulate", "report")

        reset_telemetry()
        run_graph(graph, overrides={"base_seed": 1}, base_seed=1,
                  store=store, source_root=tree)
        reset_telemetry()
        run_graph(graph, overrides={"base_seed": 1}, base_seed=1,
                  store=store, source_root=tree)
        assert cache_counts("fleet", nodes) == {
            node: (1.0, 0.0) for node in nodes}

        # A different seed changes the base_seed parameter digest, so
        # its consumers (simulate, and report through provenance) miss
        # while the seed-free spec node still replays.
        reset_telemetry()
        run_graph(graph, overrides={"base_seed": 2}, base_seed=2,
                  store=store, source_root=tree)
        assert cache_counts("fleet", nodes) == {
            "spec": (1.0, 0.0),
            "simulate": (0.0, 1.0),
            "report": (0.0, 1.0),
        }
