"""Construction-time validation of :class:`repro.dag.ExperimentGraph`.

A graph that exists can always be scheduled: every malformed shape —
duplicate names, undeclared inputs, cycles (which necessarily violate
the declaration-order rule), output collisions, reserved-name abuse —
must be rejected with :class:`GraphError` at construction, and the
stage/function contract with ``TypeError`` from
:meth:`Stage.check_signature`.
"""

from __future__ import annotations

import pytest

from repro.dag import ExperimentGraph, GraphError, Stage


def make(**values):
    return {"made": values}


def produce():
    return {"a": 1}


def consume(a):
    return {"b": a + 1}


def chain_graph():
    return ExperimentGraph(name="chain", stages=(
        Stage("first", produce, outputs=("a",)),
        Stage("second", consume, inputs=("a",), outputs=("b",)),
    ))


class TestStageContract:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name must be non-empty"):
            Stage("", produce)

    def test_non_callable_fn_rejected(self):
        with pytest.raises(TypeError, match="fn is not callable"):
            Stage("bad", fn="not-a-function")

    def test_negative_retry_rejected(self):
        with pytest.raises(ValueError, match="retry must be >= 0"):
            Stage("bad", produce, retry=-1)

    def test_undeclared_parameter_rejected(self):
        stage = Stage("bad", consume, inputs=("a", "mystery"),
                      outputs=("b",))
        with pytest.raises(TypeError,
                           match=r"declared values \['mystery'\]"):
            stage.check_signature()

    def test_uncovered_required_parameter_rejected(self):
        stage = Stage("bad", consume, outputs=("b",))
        with pytest.raises(TypeError,
                           match=r"required parameters \['a'\]"):
            stage.check_signature()

    def test_seed_label_covers_seed_parameter(self):
        def seeded(a, seed):
            return {"b": (a, seed)}

        Stage("ok", seeded, inputs=("a",), seed_label="s",
              outputs=("b",)).check_signature()
        with pytest.raises(TypeError,
                           match=r"required parameters \['seed'\]"):
            Stage("bad", seeded, inputs=("a",),
                  outputs=("b",)).check_signature()

    def test_var_keyword_opts_out_of_signature_check(self):
        stage = Stage("merge", make, inputs=("anything", "at_all"),
                      outputs=("made",))
        stage.check_signature()  # **values accepts everything

    def test_check_outputs_exact_match(self):
        stage = Stage("first", produce, outputs=("a",))
        stage.check_outputs({"a": 1})
        with pytest.raises(ValueError,
                           match=r"missing=\['a'\], undeclared=\['z'\]"):
            stage.check_outputs({"z": 1})
        with pytest.raises(TypeError, match="must return a dict"):
            stage.check_outputs([("a", 1)])

    def test_call_kwargs_binds_inputs_consts_and_seed(self):
        def seeded(a, gain, seed):
            return {"b": a * gain + seed}

        stage = Stage("node", seeded, inputs=("a",),
                      consts={"gain": 3}, seed_label="s",
                      outputs=("b",))
        kwargs = stage.call_kwargs({"a": 2, "unrelated": 9}, seed=11)
        assert kwargs == {"a": 2, "gain": 3, "seed": 11}


class TestGraphValidation:
    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(GraphError, match="duplicate stage name"):
            ExperimentGraph(name="dup", stages=(
                Stage("node", produce, outputs=("a",)),
                Stage("node", consume, inputs=("a",), outputs=("b",)),
            ))

    def test_undeclared_input_rejected(self):
        with pytest.raises(GraphError,
                           match="neither a parameter nor an output"):
            ExperimentGraph(name="bad", stages=(
                Stage("second", consume, inputs=("a",),
                      outputs=("b",)),
            ))

    def test_out_of_order_declaration_rejected(self):
        # Declaration order IS the canonical order, so a consumer
        # declared before its producer (the 2-node rendering of a
        # cycle) is rejected outright.
        with pytest.raises(GraphError,
                           match="undeclared input, cycle, or "
                                 "out-of-order"):
            ExperimentGraph(name="bad", stages=(
                Stage("second", consume, inputs=("a",),
                      outputs=("b",)),
                Stage("first", produce, outputs=("a",)),
            ))

    def test_output_collision_rejected(self):
        with pytest.raises(GraphError, match="produced by both"):
            ExperimentGraph(name="bad", stages=(
                Stage("first", produce, outputs=("a",)),
                Stage("again", produce, outputs=("a",)),
            ))

    def test_output_param_collision_rejected(self):
        with pytest.raises(GraphError, match="collides with a parameter"):
            ExperimentGraph(name="bad", params={"a": 0}, stages=(
                Stage("first", produce, outputs=("a",)),
            ))

    def test_reserved_seed_name_rejected(self):
        with pytest.raises(GraphError, match="reserved for seed"):
            ExperimentGraph(name="bad", params={"seed": 1}, stages=(
                Stage("first", produce, outputs=("a",)),
            ))
        with pytest.raises(GraphError, match="reserved for seed"):
            ExperimentGraph(name="bad", stages=(
                Stage("first", produce, outputs=("seed",)),
            ))

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError, match="has no stages"):
            ExperimentGraph(name="empty", stages=())

    def test_bad_stage_signature_rejected_at_construction(self):
        with pytest.raises(TypeError, match="required parameters"):
            ExperimentGraph(name="bad", stages=(
                Stage("second", consume, outputs=("b",)),
            ))


class TestGraphStructure:
    def test_lookup_producers_dependencies(self):
        graph = chain_graph()
        assert graph.stage("second").fn is consume
        with pytest.raises(KeyError):
            graph.stage("ghost")
        assert graph.producers == {"a": "first", "b": "second"}
        assert graph.dependencies(graph.stage("second")) == ("first",)
        assert graph.dependencies(graph.stage("first")) == ()

    def test_order_validation(self):
        graph = chain_graph()
        assert graph.topological_order() == ("first", "second")
        assert graph.is_valid_order(("first", "second"))
        assert not graph.is_valid_order(("second", "first"))
        assert not graph.is_valid_order(("first",))
        assert not graph.is_valid_order(("first", "first"))

    def test_topological_orders_enumerates_diamonds(self):
        def split(a):
            return {"left": a, "right": a}

        def join(left, right):
            return {"joined": (left, right)}

        graph = ExperimentGraph(name="diamond", stages=(
            Stage("source", produce, outputs=("a",)),
            Stage("fan", split, inputs=("a",),
                  outputs=("left", "right")),
            Stage("use_left", consume, inputs=("a",), outputs=("b",)),
            Stage("join", join, inputs=("left", "right"),
                  outputs=("joined",)),
        ))
        orders = list(graph.topological_orders())
        assert len(orders) == 3  # use_left floats between the others
        assert all(graph.is_valid_order(order) for order in orders)
        assert len(set(orders)) == len(orders)

    def test_random_order_is_valid_and_seed_stable(self):
        graph = chain_graph()
        for seed in range(20):
            order = graph.random_order(seed)
            assert graph.is_valid_order(order)
            assert order == graph.random_order(seed)

    def test_render_lists_stages_and_policies(self):
        graph = ExperimentGraph(name="shown", params={"a": 2}, stages=(
            Stage("second", consume, inputs=("a",), outputs=("b",),
                  retry=1, timeout_s=2.0, cache=False),
        ))
        text = graph.render()
        assert "experiment shown: 1 stage(s)" in text
        assert "params: a=2" in text
        assert "second: [a] -> [b]" in text
        assert "nocache" in text and "retry=1" in text
        assert "timeout=2s" in text
