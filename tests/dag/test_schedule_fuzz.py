"""Randomized schedule fuzzing: the DAG scheduler is order-blind.

The headline correctness claim of :mod:`repro.dag`: for every ported
experiment, *any* valid topological dispatch order at *any* worker
count produces artifacts byte-identical to the imperative driver —
same CSV bytes, same manifest (volatile provenance aside), same
events.jsonl down to the byte.

Each driver runs under ten seeded random topological orders
(:meth:`ExperimentGraph.random_order` — itself derived from the seed
stream, not an RNG) cycling through serial, ``jobs=2``, and ``jobs=4``
dispatch, and every triple is compared against the imperative
baseline captured once per driver.
"""

from __future__ import annotations

import pytest

from repro.dag import graph_for, run_module_dag
from repro.experiments import fig7, fleet, frontier, run_module, table1
from repro.perf.pool import shutdown_pool

from tests.dag.conftest import capture_run

SEED = 7

DRIVERS = {"table1": table1, "fig7": fig7, "frontier": frontier,
           "fleet": fleet}

#: (order_seed, jobs) pairs, jobs-major so the warm pool is not
#: respawned between consecutive cases.
COMBOS = sorted(((order_seed, (1, 2, 4)[order_seed % 3])
                 for order_seed in range(10)),
                key=lambda combo: combo[1])


@pytest.fixture(scope="module", autouse=True)
def _pool_lifecycle(telemetry):
    try:
        yield
    finally:
        shutdown_pool()


@pytest.fixture(scope="module")
def baselines(tmp_path_factory):
    """Imperative artifact triple per driver, captured once."""
    captured = {}
    for name, module in DRIVERS.items():
        directory = tmp_path_factory.mktemp(f"imperative_{name}")
        captured[name] = capture_run(
            lambda m=module: run_module(m, seed=SEED), directory)
    return captured


@pytest.mark.parametrize("name", sorted(DRIVERS))
def test_fuzzed_schedules_match_imperative(name, baselines, tmp_path):
    module = DRIVERS[name]
    graph = graph_for(module)
    base_csv, base_manifest, base_events = baselines[name]
    orders_seen = set()
    for order_seed, jobs in COMBOS:
        order = graph.random_order(order_seed)
        orders_seen.add(order)
        directory = tmp_path / f"s{order_seed}_j{jobs}"
        directory.mkdir()
        csv_bytes, manifest, events = capture_run(
            lambda: run_module_dag(module, seed=SEED, jobs=jobs,
                                   order=order), directory)
        label = f"{name} order_seed={order_seed} jobs={jobs} {order}"
        assert csv_bytes == base_csv, f"CSV diverged: {label}"
        assert manifest == base_manifest, f"manifest diverged: {label}"
        assert events == base_events, f"timeline diverged: {label}"


def test_fuzz_actually_explores_distinct_orders():
    """The harness is only a fuzzer if the orders differ; frontier's
    8 independent explore nodes admit far more than 10 orders."""
    graph = graph_for(frontier)
    orders = {graph.random_order(order_seed)
              for order_seed, _ in COMBOS}
    assert len(orders) > 1
    assert all(graph.is_valid_order(order) for order in orders)
    # fig7's sweep/multipliers are independent too.
    fig7_orders = {graph_for(fig7).random_order(s) for s in range(10)}
    assert len(fig7_orders) == 2


def test_invalid_order_is_rejected():
    from repro.dag import GraphError, run_graph

    graph = graph_for(fig7)
    backwards = tuple(reversed(graph.topological_order()))
    with pytest.raises(GraphError, match="not a valid topological"):
        run_graph(graph, order=backwards)


def test_unknown_override_is_rejected():
    from repro.dag import GraphError, run_graph

    with pytest.raises(GraphError, match="has no parameter"):
        run_graph(graph_for(fig7), overrides={"mystery": 1})
