"""Chaos under the DAG scheduler: fault plans replayed per node.

Worker crashes, hangs, and cache corruption from :mod:`repro.fault`
plans are applied at node granularity.  The claims under test:

* a faulted node retries within its bounded budget and *only* that
  node re-runs (per-node run counters prove it);
* recovery reproduces the clean run's CSV bytes exactly;
* an exhausted budget raises :class:`DagNodeError` naming the node,
  which the resilient CLI path degrades to a recorded-failure row;
* a hung pool node is preempted by its timeout (the serial scheduler
  cannot preempt, so timeouts are a pool-dispatch contract);
* a corrupted cache entry is quarantined and recomputed while every
  other node still replays from cache.
"""

from __future__ import annotations

import pytest

from repro.dag import DagNodeError, run_module_dag
from repro.experiments import (fig7, is_recorded_failure,
                               run_module_resilient)
from repro.fault.injector import FaultInjector
from repro.fault.plan import FaultPlan, RetryPolicy, WorkerFaults
from repro.obs import REGISTRY
from repro.perf.pool import shutdown_pool

from tests.dag.conftest import capture_run

SEED = 7


def crash_plan(node: str, attempts: int,
               max_retries: int = 2) -> FaultPlan:
    return FaultPlan(
        worker=WorkerFaults(crash={node: attempts}),
        retry=RetryPolicy(max_retries=max_retries, backoff_s=0.0))


def runs(node: str) -> float:
    return REGISTRY.counter(f"dag.node_runs.fig7.{node}")


@pytest.fixture(scope="module", autouse=True)
def _pool_lifecycle(telemetry):
    try:
        yield
    finally:
        shutdown_pool()


@pytest.fixture(scope="module")
def clean_csv(tmp_path_factory):
    directory = tmp_path_factory.mktemp("clean")
    csv_bytes, _, _ = capture_run(
        lambda: run_module_dag(fig7, seed=SEED), directory)
    return csv_bytes


class TestSerialFaults:
    def test_crash_recovers_and_only_faulted_node_reruns(
            self, clean_csv, tmp_path):
        plan = crash_plan("fig7.sweep", 1)
        injector = FaultInjector(plan)
        csv_bytes, _, _ = capture_run(
            lambda: run_module_dag(fig7, seed=SEED, fault_plan=plan,
                                   injector=injector), tmp_path)
        assert csv_bytes == clean_csv
        assert injector.counters == {"injected": 1, "recovered": 1,
                                     "failed": 0}
        assert runs("sweep") == 2
        assert runs("setup") == 1
        assert runs("multipliers") == 1
        assert runs("report") == 1
        assert REGISTRY.counter("dag.node_retries") == 1
        assert REGISTRY.counter("dag.node_failures") == 1

    def test_exhausted_budget_raises_naming_the_node(self, tmp_path):
        plan = crash_plan("fig7.sweep", 5, max_retries=1)
        injector = FaultInjector(plan)
        with pytest.raises(DagNodeError,
                           match=r"node fig7\.sweep failed after 2 "
                                 r"attempt\(s\)"):
            capture_run(
                lambda: run_module_dag(fig7, seed=SEED,
                                       fault_plan=plan,
                                       injector=injector), tmp_path)
        assert injector.counters["failed"] == 1
        assert runs("sweep") == 2
        # Downstream nodes never started.
        assert runs("report") == 0

    def test_resilient_path_degrades_to_recorded_failure(self):
        plan = crash_plan("fig7.sweep", 5, max_retries=0)

        def runner(module, seed=None):
            return run_module_dag(module, seed=seed, fault_plan=plan)

        result = run_module_resilient(fig7, seed=SEED, max_retries=0,
                                      backoff_s=0.0, runner=runner)
        assert is_recorded_failure(result)
        row = result.rows[0]
        assert row["driver"] == "fig7"
        assert row["status"] == "failed"
        assert "fig7.sweep" in row["error"]


class TestPoolFaults:
    def test_pool_crash_recovers_with_identical_bytes(self, clean_csv,
                                                      tmp_path):
        plan = crash_plan("fig7.multipliers", 1)
        injector = FaultInjector(plan)
        csv_bytes, _, _ = capture_run(
            lambda: run_module_dag(fig7, seed=SEED, jobs=2,
                                   fault_plan=plan,
                                   injector=injector), tmp_path)
        assert csv_bytes == clean_csv
        assert injector.counters["injected"] == 1
        assert injector.counters["recovered"] == 1
        assert runs("multipliers") == 2
        assert runs("sweep") == 1

    def test_pool_hang_is_preempted_by_timeout(self, tmp_path):
        plan = FaultPlan(
            worker=WorkerFaults(hang_s={"fig7.sweep": 30.0}),
            retry=RetryPolicy(max_retries=0, backoff_s=0.0,
                              timeout_s=0.5))
        with pytest.raises(DagNodeError, match=r"fig7\.sweep"):
            capture_run(
                lambda: run_module_dag(fig7, seed=SEED, jobs=2,
                                       fault_plan=plan), tmp_path)


class TestCacheCorruption:
    def test_corrupt_entry_quarantined_and_recomputed(self, clean_csv,
                                                      tmp_path):
        import json

        from repro.cache.store import CacheStore

        store = CacheStore(tmp_path / ".cache")
        capture_run(lambda: run_module_dag(fig7, seed=SEED,
                                           store=store),
                    tmp_path / "cold")
        # Garbage-write exactly the sweep node's entry.
        [sweep_entry] = [
            path for path in store.root.glob("??/*.json")
            if json.loads(path.read_text())["label"] == "fig7.sweep"]
        sweep_entry.write_text("{ not json", encoding="utf-8")

        warm = tmp_path / "warm"
        warm.mkdir()
        csv_bytes, _, _ = capture_run(
            lambda: run_module_dag(fig7, seed=SEED, store=store), warm)
        assert csv_bytes == clean_csv
        # The corrupt node recomputes; everything else replays.
        assert REGISTRY.counter("cache.node_misses.fig7.sweep") == 1
        assert REGISTRY.counter("cache.node_hits") == 3
        assert REGISTRY.counter("cache.corruption") == 1
        assert runs("sweep") == 1
        assert runs("report") == 0
        quarantined = list(store.quarantine_dir.iterdir())
        assert [path.name for path in quarantined] == [sweep_entry.name]
