"""Smoke tests: every example application runs end to end.

Each example is imported as a module and its ``main()`` executed with
stdout captured — the guarantee that the documented entry points of the
repository stay alive as the library evolves.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: Path):
    """Import an example file as a throwaway module."""
    name = f"example_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    return module


@pytest.mark.parametrize("path", EXAMPLE_FILES,
                         ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    module = load_example(path)
    assert hasattr(module, "main"), f"{path.name} must expose main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLE_FILES}
    required = {
        "quickstart",
        "speech_decoder_pipeline",
        "design_space_exploration",
        "wireless_link_study",
        "implant_stream_simulation",
        "cursor_decoding_comparison",
        "closed_loop_bci",
        "data_reduction_study",
        "snn_vs_dnn_energy",
        "full_system_tour",
        "motor_imagery_classification",
        "spike_sorting_walkthrough",
        "online_cursor_session",
    }
    assert required <= names
