"""Tests for the closed-loop cursor-task simulator."""

import numpy as np
import pytest

from repro.decoders import KalmanFilterDecoder, WienerFilterDecoder
from repro.simulate.cursor_task import (
    CursorTask,
    SimulatedUser,
    run_closed_loop_session,
)


class TestSimulatedUser:
    def test_intent_points_at_target(self, rng):
        user = SimulatedUser()
        intent = user.intend(np.zeros(2), np.array([3.0, 0.0]))
        assert intent[0] > 0
        assert intent[1] == pytest.approx(0.0)

    def test_intent_speed_limited(self):
        user = SimulatedUser(intent_speed=1.0)
        intent = user.intend(np.zeros(2), np.array([100.0, 0.0]))
        assert np.linalg.norm(intent) == pytest.approx(1.0)

    def test_intent_slows_near_target(self):
        user = SimulatedUser(intent_speed=1.0)
        intent = user.intend(np.zeros(2), np.array([0.3, 0.0]))
        assert np.linalg.norm(intent) == pytest.approx(0.3)

    def test_zero_at_target(self):
        user = SimulatedUser()
        intent = user.intend(np.array([1.0, 1.0]), np.array([1.0, 1.0]))
        np.testing.assert_array_equal(intent, np.zeros(2))

    def test_encoding_carries_direction(self, rng):
        user = SimulatedUser(noise_rms=0.0)
        preferred = user.preferred_directions(rng)
        east = user.encode(np.array([1.0, 0.0]), preferred, rng)
        west = user.encode(np.array([-1.0, 0.0]), preferred, rng)
        east_cells = preferred[:, 0] > 0.5
        assert east[east_cells].mean() > west[east_cells].mean()

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            SimulatedUser(n_channels=1)
        with pytest.raises(ValueError):
            SimulatedUser(intent_speed=0.0)


class TestCursorTask:
    def test_targets_on_ring(self, rng):
        task = CursorTask(target_distance=4.0)
        targets = task.targets(10, rng)
        radii = np.linalg.norm(targets, axis=1)
        np.testing.assert_allclose(radii, 4.0, rtol=1e-9)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            CursorTask(target_radius=0.0)
        with pytest.raises(ValueError):
            CursorTask(dt_s=1.0, timeout_s=0.5)


class TestClosedLoopSession:
    def test_kalman_user_hits_targets(self, rng):
        outcome = run_closed_loop_session(
            KalmanFilterDecoder(), SimulatedUser(noise_rms=0.2),
            CursorTask(), rng, n_trials=10)
        assert outcome.hit_rate >= 0.8
        assert outcome.mean_time_to_target_s > 0

    def test_wiener_user_hits_targets(self, rng):
        outcome = run_closed_loop_session(
            WienerFilterDecoder(n_lags=3), SimulatedUser(noise_rms=0.2),
            CursorTask(), rng, n_trials=10)
        assert outcome.hit_rate >= 0.8

    def test_noise_degrades_performance(self, rng):
        clean = run_closed_loop_session(
            KalmanFilterDecoder(), SimulatedUser(noise_rms=0.1),
            CursorTask(), rng, n_trials=12)
        noisy = run_closed_loop_session(
            KalmanFilterDecoder(), SimulatedUser(noise_rms=3.0),
            CursorTask(), rng, n_trials=12)
        assert (noisy.hit_rate < clean.hit_rate
                or noisy.mean_time_to_target_s
                > clean.mean_time_to_target_s)

    def test_latency_hurts_the_loop(self, rng):
        # The application-level cost of loop latency (Section 8): delayed
        # commands overshoot and slow acquisition.
        fast = run_closed_loop_session(
            KalmanFilterDecoder(), SimulatedUser(noise_rms=0.2),
            CursorTask(), rng, n_trials=12, latency_steps=0)
        slow = run_closed_loop_session(
            KalmanFilterDecoder(), SimulatedUser(noise_rms=0.2),
            CursorTask(), rng, n_trials=12, latency_steps=25)
        fast_score = fast.hit_rate / max(fast.mean_time_to_target_s, 1e-9)
        slow_score = (slow.hit_rate
                      / max(slow.mean_time_to_target_s, 1e-9)
                      if slow.hits else 0.0)
        assert slow_score < fast_score

    def test_path_efficiency_bounded(self, rng):
        outcome = run_closed_loop_session(
            KalmanFilterDecoder(), SimulatedUser(noise_rms=0.2),
            CursorTask(), rng, n_trials=8)
        assert 0.0 < outcome.mean_path_efficiency <= 1.2

    def test_rejects_invalid(self, rng):
        with pytest.raises(ValueError):
            run_closed_loop_session(KalmanFilterDecoder(),
                                    SimulatedUser(), CursorTask(), rng,
                                    n_trials=0)
        with pytest.raises(ValueError):
            run_closed_loop_session(KalmanFilterDecoder(),
                                    SimulatedUser(), CursorTask(), rng,
                                    latency_steps=-1)


class TestLinkDropDegradation:
    def _session(self, seed=1234, **kwargs):
        return run_closed_loop_session(
            KalmanFilterDecoder(), SimulatedUser(noise_rms=0.2),
            CursorTask(), np.random.default_rng(seed), n_trials=8,
            **kwargs)

    def test_drop_rate_zero_is_byte_identical_to_baseline(self):
        # Graceful degradation must cost nothing when disabled: the
        # explicit drop_rate=0.0 path may not consume a single extra
        # RNG draw relative to the pre-fault-layer signature.
        baseline = self._session()
        explicit = self._session(drop_rate=0.0)
        assert explicit.hits == baseline.hits
        assert explicit.times_to_target_s == baseline.times_to_target_s
        assert explicit.mean_path_efficiency == \
            baseline.mean_path_efficiency
        assert explicit.dropped_windows == 0

    def test_dropped_windows_are_counted(self):
        outcome = self._session(
            drop_rate=0.5, drop_rng=np.random.default_rng(9))
        assert outcome.total_windows > 0
        assert 0 < outcome.dropped_windows < outcome.total_windows
        assert outcome.dropped_fraction == pytest.approx(
            outcome.dropped_windows / outcome.total_windows)
        # Binomial: the observed fraction should be near the rate.
        assert 0.3 < outcome.dropped_fraction < 0.7

    def test_hold_last_command_keeps_the_session_alive(self):
        # Even at heavy loss the session completes and still acquires
        # some targets — the decoder coasts instead of crashing.
        outcome = self._session(
            drop_rate=0.6, drop_rng=np.random.default_rng(9))
        assert outcome.trials == 8
        assert outcome.hit_rate > 0.0

    def test_heavy_loss_degrades_performance(self):
        clean = self._session()
        lossy = self._session(
            drop_rate=0.7, drop_rng=np.random.default_rng(9))
        clean_score = clean.hit_rate / max(clean.mean_time_to_target_s,
                                           1e-9)
        lossy_score = (lossy.hit_rate
                       / max(lossy.mean_time_to_target_s, 1e-9)
                       if lossy.hits else 0.0)
        assert lossy_score < clean_score

    def test_rejects_bad_drop_configuration(self, rng):
        with pytest.raises(ValueError):
            self._session(drop_rate=1.0,
                          drop_rng=np.random.default_rng(9))
        with pytest.raises(ValueError):
            self._session(drop_rate=-0.1,
                          drop_rng=np.random.default_rng(9))
        with pytest.raises(ValueError, match="drop_rng"):
            self._session(drop_rate=0.25)
