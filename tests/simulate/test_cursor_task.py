"""Tests for the closed-loop cursor-task simulator."""

import numpy as np
import pytest

from repro.decoders import KalmanFilterDecoder, WienerFilterDecoder
from repro.simulate.cursor_task import (
    CursorTask,
    SimulatedUser,
    run_closed_loop_session,
)


class TestSimulatedUser:
    def test_intent_points_at_target(self, rng):
        user = SimulatedUser()
        intent = user.intend(np.zeros(2), np.array([3.0, 0.0]))
        assert intent[0] > 0
        assert intent[1] == pytest.approx(0.0)

    def test_intent_speed_limited(self):
        user = SimulatedUser(intent_speed=1.0)
        intent = user.intend(np.zeros(2), np.array([100.0, 0.0]))
        assert np.linalg.norm(intent) == pytest.approx(1.0)

    def test_intent_slows_near_target(self):
        user = SimulatedUser(intent_speed=1.0)
        intent = user.intend(np.zeros(2), np.array([0.3, 0.0]))
        assert np.linalg.norm(intent) == pytest.approx(0.3)

    def test_zero_at_target(self):
        user = SimulatedUser()
        intent = user.intend(np.array([1.0, 1.0]), np.array([1.0, 1.0]))
        np.testing.assert_array_equal(intent, np.zeros(2))

    def test_encoding_carries_direction(self, rng):
        user = SimulatedUser(noise_rms=0.0)
        preferred = user.preferred_directions(rng)
        east = user.encode(np.array([1.0, 0.0]), preferred, rng)
        west = user.encode(np.array([-1.0, 0.0]), preferred, rng)
        east_cells = preferred[:, 0] > 0.5
        assert east[east_cells].mean() > west[east_cells].mean()

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            SimulatedUser(n_channels=1)
        with pytest.raises(ValueError):
            SimulatedUser(intent_speed=0.0)


class TestCursorTask:
    def test_targets_on_ring(self, rng):
        task = CursorTask(target_distance=4.0)
        targets = task.targets(10, rng)
        radii = np.linalg.norm(targets, axis=1)
        np.testing.assert_allclose(radii, 4.0, rtol=1e-9)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            CursorTask(target_radius=0.0)
        with pytest.raises(ValueError):
            CursorTask(dt_s=1.0, timeout_s=0.5)


class TestClosedLoopSession:
    def test_kalman_user_hits_targets(self, rng):
        outcome = run_closed_loop_session(
            KalmanFilterDecoder(), SimulatedUser(noise_rms=0.2),
            CursorTask(), rng, n_trials=10)
        assert outcome.hit_rate >= 0.8
        assert outcome.mean_time_to_target_s > 0

    def test_wiener_user_hits_targets(self, rng):
        outcome = run_closed_loop_session(
            WienerFilterDecoder(n_lags=3), SimulatedUser(noise_rms=0.2),
            CursorTask(), rng, n_trials=10)
        assert outcome.hit_rate >= 0.8

    def test_noise_degrades_performance(self, rng):
        clean = run_closed_loop_session(
            KalmanFilterDecoder(), SimulatedUser(noise_rms=0.1),
            CursorTask(), rng, n_trials=12)
        noisy = run_closed_loop_session(
            KalmanFilterDecoder(), SimulatedUser(noise_rms=3.0),
            CursorTask(), rng, n_trials=12)
        assert (noisy.hit_rate < clean.hit_rate
                or noisy.mean_time_to_target_s
                > clean.mean_time_to_target_s)

    def test_latency_hurts_the_loop(self, rng):
        # The application-level cost of loop latency (Section 8): delayed
        # commands overshoot and slow acquisition.
        fast = run_closed_loop_session(
            KalmanFilterDecoder(), SimulatedUser(noise_rms=0.2),
            CursorTask(), rng, n_trials=12, latency_steps=0)
        slow = run_closed_loop_session(
            KalmanFilterDecoder(), SimulatedUser(noise_rms=0.2),
            CursorTask(), rng, n_trials=12, latency_steps=25)
        fast_score = fast.hit_rate / max(fast.mean_time_to_target_s, 1e-9)
        slow_score = (slow.hit_rate
                      / max(slow.mean_time_to_target_s, 1e-9)
                      if slow.hits else 0.0)
        assert slow_score < fast_score

    def test_path_efficiency_bounded(self, rng):
        outcome = run_closed_loop_session(
            KalmanFilterDecoder(), SimulatedUser(noise_rms=0.2),
            CursorTask(), rng, n_trials=8)
        assert 0.0 < outcome.mean_path_efficiency <= 1.2

    def test_rejects_invalid(self, rng):
        with pytest.raises(ValueError):
            run_closed_loop_session(KalmanFilterDecoder(),
                                    SimulatedUser(), CursorTask(), rng,
                                    n_trials=0)
        with pytest.raises(ValueError):
            run_closed_loop_session(KalmanFilterDecoder(),
                                    SimulatedUser(), CursorTask(), rng,
                                    latency_steps=-1)
