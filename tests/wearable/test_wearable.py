"""Tests for the wearable SoC models and end-to-end system evaluation."""

import pytest

from repro.core.comp_centric import Workload
from repro.dnn.models import build_speech_mlp
from repro.wearable.platform import BatteryPack, WearablePlatform
from repro.wearable.receiver import Receiver
from repro.wearable.system import (
    BciSystem,
    Dataflow,
    evaluate_system,
)


class TestReceiver:
    def test_power_has_floor_and_slope(self):
        rx = Receiver(energy_per_bit_j=5e-12, front_end_power_w=2e-3)
        assert rx.power_w(0.0) == pytest.approx(2e-3)
        assert rx.power_w(100e6) == pytest.approx(2e-3 + 0.5e-3)

    def test_receive_cheaper_than_implant_transmit(self, bisc):
        rx = Receiver()
        rate = bisc.sensing_throughput_bps()
        tx_power = rate * bisc.implied_energy_per_bit_j
        assert rx.power_w(rate) - rx.front_end_power_w < tx_power

    def test_bandwidth_limit_enforced(self):
        rx = Receiver(max_data_rate_bps=1e6)
        assert rx.supports(0.5e6)
        with pytest.raises(ValueError):
            rx.power_w(2e6)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            Receiver(energy_per_bit_j=-1.0)
        with pytest.raises(ValueError):
            Receiver(max_data_rate_bps=0.0)


class TestBattery:
    def test_lifetime_formula(self):
        pack = BatteryPack(capacity_wh=5.0, derating=0.8)
        # 4 Wh usable at 1 W -> 4 hours.
        assert pack.lifetime_hours(1.0) == pytest.approx(4.0)

    def test_lifetime_inverse_in_load(self):
        pack = BatteryPack()
        assert pack.lifetime_hours(0.5) == pytest.approx(
            2 * pack.lifetime_hours(1.0))

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            BatteryPack(capacity_wh=0.0)
        with pytest.raises(ValueError):
            BatteryPack().lifetime_hours(0.0)


class TestPlatform:
    def test_compute_power_positive_for_real_network(self):
        platform = WearablePlatform()
        net = build_speech_mlp(1024)
        power = platform.compute_power_w(net, 8e3)
        assert power > 0

    def test_wearable_hosts_what_implant_cannot(self, bisc):
        # The full 4096-channel MLP exceeds the implant budget (Fig. 10)
        # but runs on the wearable within a fraction of a watt.
        platform = WearablePlatform()
        net = build_speech_mlp(4096)
        power = platform.compute_power_w(net, bisc.sampling_hz)
        assert power < 1.0  # watts — battery-scale, not implant-scale

    def test_impossible_rate_raises(self):
        platform = WearablePlatform()
        net = build_speech_mlp(1024)
        with pytest.raises(ValueError):
            platform.compute_power_w(net, 1e9)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            WearablePlatform().compute_power_w(build_speech_mlp(128), 0.0)


class TestSystemEvaluation:
    @pytest.fixture
    def systems(self, bisc):
        return {flow: BciSystem(soc=bisc, workload=Workload.MLP,
                                dataflow=flow)
                for flow in Dataflow}

    def test_air_rate_ordering(self, systems):
        # raw stream >> partitioned activations >> 40 labels.
        reports = {flow: evaluate_system(system, 2048)
                   for flow, system in systems.items()}
        assert (reports[Dataflow.COMM_CENTRIC].air_rate_bps
                > reports[Dataflow.PARTITIONED].air_rate_bps
                > reports[Dataflow.COMP_CENTRIC].air_rate_bps)

    def test_implant_power_ordering(self, systems):
        reports = {flow: evaluate_system(system, 2048)
                   for flow, system in systems.items()}
        assert (reports[Dataflow.COMM_CENTRIC].implant_power_w
                < reports[Dataflow.PARTITIONED].implant_power_w
                <= reports[Dataflow.COMP_CENTRIC].implant_power_w)

    def test_wearable_compute_ordering(self, systems):
        # The wearable works hardest under comm-centric (whole DNN).
        reports = {flow: evaluate_system(system, 2048)
                   for flow, system in systems.items()}
        assert (reports[Dataflow.COMM_CENTRIC].wearable.compute_power_w
                > reports[Dataflow.PARTITIONED].wearable.compute_power_w
                >= reports[Dataflow.COMP_CENTRIC].wearable.compute_power_w)

    def test_comp_centric_wearable_does_no_dnn_work(self, systems):
        report = evaluate_system(systems[Dataflow.COMP_CENTRIC], 1024)
        assert report.wearable.compute_power_w == 0.0

    def test_all_dataflows_deployable_at_1024(self, systems):
        for flow, system in systems.items():
            report = evaluate_system(system, 1024)
            assert report.implant_safe, flow
            assert report.wearable.lifetime_hours > 16.0, flow

    def test_comm_centric_stays_safe_where_comp_fails(self, systems):
        # At 2048+ the full on-implant DNN breaks the budget while raw
        # streaming (naive scaling) stays safe — the paper's Fig. 5 vs
        # Fig. 10 contrast at system level.
        comm = evaluate_system(systems[Dataflow.COMM_CENTRIC], 4096)
        comp = evaluate_system(systems[Dataflow.COMP_CENTRIC], 4096)
        assert comm.implant_safe
        assert not comp.implant_safe

    def test_rejects_bad_channels(self, systems):
        with pytest.raises(ValueError):
            evaluate_system(systems[Dataflow.COMM_CENTRIC], 0)


class TestHeadTailComposition:
    def test_head_plus_tail_equals_full(self, rng):
        import numpy as np
        net = build_speech_mlp(128, rng=rng)
        head = net.head(2)
        tail = net.tail(2)
        x = rng.standard_normal((3,) + net.input_shape)
        full = net.forward(x)
        composed = tail.forward(head.forward(x))
        np.testing.assert_allclose(composed, full, atol=1e-12)

    def test_tail_rejects_boundary_indices(self):
        net = build_speech_mlp(128)
        with pytest.raises(ValueError):
            net.tail(0)
        with pytest.raises(ValueError):
            net.tail(net.n_compute_layers)

    def test_macs_partition_exactly(self):
        net = build_speech_mlp(256)
        for split in range(1, net.n_compute_layers):
            assert (net.head(split).total_macs
                    + net.tail(split).total_macs) == net.total_macs
