"""Tests for the second-order memory model."""

import pytest

from repro.accel.memory import (
    MemoryModel,
    assess_memory_margin,
)
from repro.accel.schedule import best_schedule
from repro.accel.tech import TECH_45NM
from repro.dnn.macs import LayerMacs
from repro.dnn.models import build_speech_mlp


@pytest.fixture(scope="module")
def mlp_and_schedule():
    net = build_speech_mlp(1024)
    schedule = best_schedule(net.mac_profiles(), 1.0 / 8e3, TECH_45NM)
    return net, schedule


class TestAccessCounting:
    def test_layer_accesses_formula(self):
        model = MemoryModel()
        profile = LayerMacs(mac_seq=100, mac_ops=50)
        # 10 units -> 5 rounds: 100*5 reads + 50 writes.
        assert model.layer_accesses(profile, 10) == 550

    def test_more_units_fewer_reads(self):
        model = MemoryModel()
        profile = LayerMacs(mac_seq=100, mac_ops=64)
        assert model.layer_accesses(profile, 64) < \
            model.layer_accesses(profile, 1)

    def test_rejects_zero_units(self):
        with pytest.raises(ValueError):
            MemoryModel().layer_accesses(LayerMacs(10, 10), 0)


class TestBufferSizing:
    def test_double_buffered_widest_boundary(self):
        model = MemoryModel(word_bits=8)
        net = build_speech_mlp(1024)
        widest = max([net.input_shape[0]]
                     + net.compute_layer_output_values())
        assert model.buffer_bits(net) == 2 * widest * 8

    def test_scales_with_word_width(self):
        net = build_speech_mlp(256)
        assert MemoryModel(word_bits=16).buffer_bits(net) == \
            2 * MemoryModel(word_bits=8).buffer_bits(net)


class TestPower:
    def test_memory_power_positive(self, mlp_and_schedule):
        net, schedule = mlp_and_schedule
        power = MemoryModel().power_w(net, schedule, 8e3)
        assert power > 0

    def test_memory_is_second_order(self, mlp_and_schedule):
        # The paper's premise: memory overhead stays below the MAC lower
        # bound for the broadcast-amortized weight-stationary design.
        net, schedule = mlp_and_schedule
        memory = MemoryModel().power_w(net, schedule, 8e3)
        mac = schedule.power_w(TECH_45NM)
        assert memory < mac

    def test_power_scales_with_rate(self, mlp_and_schedule):
        net, schedule = mlp_and_schedule
        model = MemoryModel(leakage_w_per_bit=0.0)
        assert model.power_w(net, schedule, 16e3) == pytest.approx(
            2 * model.power_w(net, schedule, 8e3))

    def test_leakage_floor(self, mlp_and_schedule):
        net, schedule = mlp_and_schedule
        leaky = MemoryModel(access_energy_j=0.0)
        assert leaky.power_w(net, schedule, 8e3) == pytest.approx(
            leaky.buffer_bits(net) * leaky.leakage_w_per_bit)

    def test_rejects_mismatched_schedule(self):
        net_a = build_speech_mlp(1024)
        net_b = build_speech_mlp(4096)  # deeper (extra alpha layer)
        schedule = best_schedule(net_a.mac_profiles(), 1.0 / 8e3,
                                 TECH_45NM)
        assert net_b.n_compute_layers != net_a.n_compute_layers
        with pytest.raises(ValueError):
            MemoryModel().inference_energy_j(net_b, schedule)

    def test_rejects_bad_rate(self, mlp_and_schedule):
        net, schedule = mlp_and_schedule
        with pytest.raises(ValueError):
            MemoryModel().power_w(net, schedule, 0.0)


class TestMarginReport:
    def test_bisc_margin_survives_memory(self, mlp_and_schedule, bisc):
        # At 1024 channels the BISC margin absorbs the memory system —
        # the condition under which the paper's lower bound methodology
        # remains conclusive.
        net, schedule = mlp_and_schedule
        from repro.core.comp_centric import Workload, evaluate_comp_centric
        point = evaluate_comp_centric(bisc, Workload.MLP, 1024)
        margin = point.budget_w - point.total_power_w
        report = assess_memory_margin(net, schedule, bisc.sampling_hz,
                                      margin, TECH_45NM)
        assert report.still_fits
        assert report.memory_overhead_fraction < 0.5

    def test_exhausted_margin_detected(self, mlp_and_schedule):
        net, schedule = mlp_and_schedule
        report = assess_memory_margin(net, schedule, 8e3, 1e-9,
                                      TECH_45NM)
        assert not report.still_fits
        assert report.margin_consumed_fraction > 1.0
