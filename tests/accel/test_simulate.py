"""Tests cross-checking the PE-array simulator against theory and layers."""

import math

import numpy as np
import pytest

from repro.accel.simulate import PEArraySimulator
from repro.accel.tech import TECH_45NM
from repro.dnn.layers import Dense


def make_sim(rng, out_features=8, in_features=16, mac_hw=3, **kwargs):
    weight = rng.standard_normal((out_features, in_features))
    bias = rng.standard_normal(out_features)
    return PEArraySimulator(weight, bias, mac_hw, TECH_45NM, **kwargs), \
        weight, bias


class TestFunctionalCorrectness:
    def test_matches_dense_layer(self, rng):
        sim, weight, bias = make_sim(rng, relu=True)
        layer = Dense(16, 8)
        layer.weight, layer.bias = weight, bias
        layer.grad_weight = np.zeros_like(weight)
        layer.grad_bias = np.zeros_like(bias)
        x = rng.standard_normal(16)
        expected = layer.forward(x[None, :])[0]
        expected = np.maximum(expected, 0.0)
        result = sim.run(x)
        np.testing.assert_allclose(result.outputs, expected, atol=1e-9)

    def test_no_relu_mode(self, rng):
        sim, weight, bias = make_sim(rng, relu=False)
        x = rng.standard_normal(16)
        expected = weight @ x + bias
        np.testing.assert_allclose(sim.run(x).outputs, expected, atol=1e-9)

    def test_fixed_point_quantization_close_to_float(self, rng):
        sim, weight, bias = make_sim(rng, relu=False, fixed_point_bits=12)
        x = rng.uniform(-1, 1, 16)
        expected = weight @ x + bias
        result = sim.run(x)
        assert np.max(np.abs(result.outputs - expected)) < 0.05

    def test_low_precision_differs(self, rng):
        fine, weight, bias = make_sim(rng, relu=False, fixed_point_bits=16)
        coarse = PEArraySimulator(weight, bias, 3, TECH_45NM, relu=False,
                                  fixed_point_bits=3)
        x = rng.uniform(-1, 1, 16)
        err_fine = np.max(np.abs(fine.run(x).outputs - (weight @ x + bias)))
        err_coarse = np.max(np.abs(coarse.run(x).outputs
                                   - (weight @ x + bias)))
        assert err_coarse > err_fine


class TestCycleAccounting:
    def test_cycles_match_eq11(self, rng):
        sim, *_ = make_sim(rng, out_features=8, in_features=16, mac_hw=3)
        result = sim.run(rng.standard_normal(16))
        assert result.cycles == 16 * math.ceil(8 / 3)

    def test_exact_division_no_padding(self, rng):
        sim, *_ = make_sim(rng, out_features=8, in_features=16, mac_hw=4)
        result = sim.run(rng.standard_normal(16))
        assert result.cycles == 16 * 2

    def test_elapsed_uses_tmac(self, rng):
        sim, *_ = make_sim(rng, mac_hw=8)
        result = sim.run(rng.standard_normal(16))
        assert result.elapsed_s == pytest.approx(
            result.cycles * TECH_45NM.t_mac_s)

    def test_energy_counts_active_steps_only(self, rng):
        sim, *_ = make_sim(rng, out_features=8, in_features=16, mac_hw=3)
        result = sim.run(rng.standard_normal(16))
        assert result.mac_steps == 8 * 16
        assert result.energy_j == pytest.approx(
            8 * 16 * TECH_45NM.energy_per_mac_j)

    def test_more_pes_fewer_cycles(self, rng):
        few, weight, bias = make_sim(rng, mac_hw=1)
        many = PEArraySimulator(weight, bias, 8, TECH_45NM)
        x = rng.standard_normal(16)
        assert many.run(x).cycles < few.run(x).cycles


class TestValidation:
    def test_rejects_eq12_violation(self, rng):
        weight = rng.standard_normal((4, 8))
        with pytest.raises(ValueError):
            PEArraySimulator(weight, np.zeros(4), 5, TECH_45NM)

    def test_rejects_bad_bias(self, rng):
        weight = rng.standard_normal((4, 8))
        with pytest.raises(ValueError):
            PEArraySimulator(weight, np.zeros(3), 2, TECH_45NM)

    def test_rejects_wrong_input_shape(self, rng):
        sim, *_ = make_sim(rng)
        with pytest.raises(ValueError):
            sim.run(rng.standard_normal(15))
