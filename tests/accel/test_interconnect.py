"""Tests for the interconnect (routing overhead) model."""

import math

import pytest

from repro.accel.interconnect import InterconnectModel
from repro.accel.schedule import best_schedule
from repro.accel.tech import TECH_45NM
from repro.dnn.models import build_speech_mlp


@pytest.fixture(scope="module")
def mlp_schedule():
    net = build_speech_mlp(1024)
    return net, best_schedule(net.mac_profiles(), 1.0 / 8e3, TECH_45NM)


class TestGeometry:
    def test_array_side_sqrt_scaling(self):
        model = InterconnectModel()
        assert model.array_side_mm(400) == pytest.approx(
            2 * model.array_side_mm(100))

    def test_single_pe_side(self):
        model = InterconnectModel(pe_area_mm2=0.04)
        assert model.array_side_mm(1) == pytest.approx(0.2)

    def test_rejects_zero_pes(self):
        with pytest.raises(ValueError):
            InterconnectModel().array_side_mm(0)


class TestEnergy:
    def test_broadcast_energy_sublinear_in_pes(self):
        model = InterconnectModel()
        per4 = model.broadcast_energy_per_word_j(4)
        per400 = model.broadcast_energy_per_word_j(400)
        assert per400 == pytest.approx(10 * per4)  # sqrt(100)

    def test_word_width_scales_energy(self):
        wide = InterconnectModel(word_bits=16)
        narrow = InterconnectModel(word_bits=8)
        assert wide.broadcast_energy_per_word_j(64) == pytest.approx(
            2 * narrow.broadcast_energy_per_word_j(64))

    def test_inference_energy_positive(self, mlp_schedule):
        net, schedule = mlp_schedule
        assert InterconnectModel().inference_energy_j(net, schedule) > 0

    def test_rejects_mismatched_schedule(self, mlp_schedule):
        _, schedule = mlp_schedule
        other = build_speech_mlp(4096)
        with pytest.raises(ValueError):
            InterconnectModel().inference_energy_j(other, schedule)


class TestOverhead:
    def test_routing_is_second_order_at_1024(self, mlp_schedule):
        # Section 8's premise: routing is secondary today...
        net, schedule = mlp_schedule
        fraction = InterconnectModel().overhead_fraction(
            net, schedule, 8e3, TECH_45NM)
        assert fraction < 0.5

    def test_routing_grows_with_scale(self):
        # ...but grows with design size (per-word energy ~ sqrt(PEs)).
        model = InterconnectModel()
        deadline = 1.0 / 8e3
        small_net = build_speech_mlp(512)
        big_net = build_speech_mlp(2048)
        small = best_schedule(small_net.mac_profiles(), deadline,
                              TECH_45NM)
        big = best_schedule(big_net.mac_profiles(), deadline, TECH_45NM)
        assert (model.broadcast_energy_per_word_j(big.mac_units)
                > model.broadcast_energy_per_word_j(small.mac_units))

    def test_power_scales_with_rate(self, mlp_schedule):
        net, schedule = mlp_schedule
        model = InterconnectModel()
        assert model.power_w(net, schedule, 16e3) == pytest.approx(
            2 * model.power_w(net, schedule, 8e3))

    def test_rejects_bad_rate(self, mlp_schedule):
        net, schedule = mlp_schedule
        with pytest.raises(ValueError):
            InterconnectModel().power_w(net, schedule, 0.0)

    def test_zero_mac_power_gives_inf_fraction(self, mlp_schedule):
        net, schedule = mlp_schedule
        from repro.accel.tech import TechnologyNode
        free = TechnologyNode(name="free", t_mac_s=1e-9, p_mac_w=1e-30)
        fraction = InterconnectModel().overhead_fraction(net, schedule,
                                                         8e3, free)
        assert fraction > 1e6 or math.isinf(fraction)
