"""Tests for the Eq. 11-15 MAC schedulers."""

import math

import pytest

from repro.accel.schedule import (
    best_schedule,
    compute_power_lower_bound,
    schedule_non_pipelined,
    schedule_pipelined,
)
from repro.accel.tech import TECH_45NM
from repro.dnn.macs import LayerMacs


def profiles_simple():
    return [LayerMacs(mac_seq=100, mac_ops=50),
            LayerMacs(mac_seq=50, mac_ops=20)]


class TestNonPipelined:
    def test_single_unit_runtime(self):
        # With 1 unit: 100*50 + 50*20 = 6000 steps * 2 ns = 12 us.
        schedule = schedule_non_pipelined(profiles_simple(), 1.0, TECH_45NM)
        assert schedule.mac_units == 1
        assert schedule.runtime_s == pytest.approx(12e-6)

    def test_minimality(self):
        # Deadline exactly at the 2-unit runtime: 100*25 + 50*10 = 3000
        # steps * 2 ns = 6 us.
        schedule = schedule_non_pipelined(profiles_simple(), 6e-6,
                                          TECH_45NM)
        assert schedule.mac_units == 2
        assert schedule.runtime_s <= 6e-6

    def test_eq12_unit_cap(self):
        # Even max units cannot beat MACseq-serial time.
        profiles = [LayerMacs(mac_seq=1000, mac_ops=4)]
        # With 4 units: 1000 * 2 ns = 2 us; deadline below that -> None.
        assert schedule_non_pipelined(profiles, 1e-6, TECH_45NM) is None

    def test_units_never_exceed_max_ops(self):
        profiles = [LayerMacs(mac_seq=10, mac_ops=7)]
        schedule = schedule_non_pipelined(profiles, 1.0, TECH_45NM)
        assert schedule.mac_units <= 7

    def test_deadline_respected(self):
        for deadline in (1e-5, 5e-5, 1e-4):
            schedule = schedule_non_pipelined(profiles_simple(), deadline,
                                              TECH_45NM)
            if schedule is not None:
                assert schedule.runtime_s <= deadline

    def test_tighter_deadline_needs_more_units(self):
        loose = schedule_non_pipelined(profiles_simple(), 1e-4, TECH_45NM)
        tight = schedule_non_pipelined(profiles_simple(), 7e-6, TECH_45NM)
        assert tight.mac_units > loose.mac_units

    def test_rejects_empty_profiles(self):
        with pytest.raises(ValueError):
            schedule_non_pipelined([], 1.0, TECH_45NM)

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(ValueError):
            schedule_non_pipelined(profiles_simple(), 0.0, TECH_45NM)

    def test_rejects_non_compute_layers(self):
        with pytest.raises(ValueError):
            schedule_non_pipelined([LayerMacs(0, 0)], 1.0, TECH_45NM)


class TestPipelined:
    def test_per_layer_allocation(self):
        # Deadline 10 us: layer 1 rounds budget = 10us/200ns = 50 ->
        # units = ceil(50/50) = 1; layer 2: budget 100 -> units 1.
        schedule = schedule_pipelined(profiles_simple(), 10e-6, TECH_45NM)
        assert schedule.per_layer_units == (1, 1)
        assert schedule.mac_units == 2

    def test_initiation_interval_below_deadline(self):
        schedule = schedule_pipelined(profiles_simple(), 1e-5, TECH_45NM)
        assert schedule.runtime_s <= 1e-5

    def test_infeasible_when_sequence_exceeds_deadline(self):
        profiles = [LayerMacs(mac_seq=10_000, mac_ops=1)]
        # 10k steps * 2 ns = 20 us > 10 us deadline, unparallelizable.
        assert schedule_pipelined(profiles, 10e-6, TECH_45NM) is None

    def test_eq15_per_layer_cap(self):
        profiles = [LayerMacs(mac_seq=100, mac_ops=10)]
        schedule = schedule_pipelined(profiles, 1e-3, TECH_45NM)
        assert all(u <= p.mac_ops
                   for u, p in zip(schedule.per_layer_units, profiles))

    def test_pipelining_can_beat_shared_pool(self):
        # Three balanced layers at a deadline just above one layer's
        # single-unit time: the pool must race through all three in
        # sequence while the pipeline overlaps them with 1 unit each.
        profiles = [LayerMacs(mac_seq=1000, mac_ops=64)] * 3
        deadline = 128.5e-6  # one layer on one unit takes 128 us
        pooled = schedule_non_pipelined(profiles, deadline, TECH_45NM)
        piped = schedule_pipelined(profiles, deadline, TECH_45NM)
        assert piped.mac_units == 3
        assert piped.mac_units < pooled.mac_units


class TestBestSchedule:
    def test_picks_lower_power(self):
        profiles = profiles_simple()
        deadline = 1e-5
        best = best_schedule(profiles, deadline, TECH_45NM)
        candidates = [schedule_non_pipelined(profiles, deadline, TECH_45NM),
                      schedule_pipelined(profiles, deadline, TECH_45NM)]
        units = [c.mac_units for c in candidates if c is not None]
        assert best.mac_units == min(units)

    def test_returns_none_when_both_infeasible(self):
        profiles = [LayerMacs(mac_seq=10_000_000, mac_ops=1)]
        assert best_schedule(profiles, 1e-6, TECH_45NM) is None

    def test_power_lower_bound_eq13(self):
        profiles = profiles_simple()
        bound = compute_power_lower_bound(profiles, 1e-5, TECH_45NM)
        best = best_schedule(profiles, 1e-5, TECH_45NM)
        assert bound == pytest.approx(best.mac_units * TECH_45NM.p_mac_w)

    def test_power_lower_bound_infeasible_is_none(self):
        profiles = [LayerMacs(mac_seq=10_000_000, mac_ops=1)]
        assert compute_power_lower_bound(profiles, 1e-6, TECH_45NM) is None

    def test_power_scales_with_throughput_demand(self):
        profiles = [LayerMacs(mac_seq=256, mac_ops=4096)]
        slow = compute_power_lower_bound(profiles, 1e-2, TECH_45NM)
        fast = compute_power_lower_bound(profiles, 1e-4, TECH_45NM)
        assert fast > slow

    def test_total_mac_conservation(self):
        # Whatever the allocation, executed MAC steps equal the profile sum.
        profiles = profiles_simple()
        total = sum(p.total_macs for p in profiles)
        assert total == 100 * 50 + 50 * 20

    def test_runtime_matches_eq11_formula(self):
        profiles = [LayerMacs(mac_seq=7, mac_ops=13)]
        schedule = schedule_non_pipelined(profiles, 1.0, TECH_45NM)
        expected = 7 * TECH_45NM.t_mac_s * math.ceil(
            13 / schedule.mac_units)
        assert schedule.runtime_s == pytest.approx(expected)
