"""Tests for the Fig. 9 accelerator power model."""

import pytest

from repro.accel.power import (
    FIG9_DESIGN_POINTS,
    AcceleratorPowerModel,
    LayerDesignPoint,
    fig9_power_table,
)


class TestDesignPoints:
    def test_twelve_points(self):
        assert len(FIG9_DESIGN_POINTS) == 12

    def test_first_five_vary_only_ops(self):
        for point in FIG9_DESIGN_POINTS[:5]:
            assert point.mac_seq == 256
            assert point.mac_hw == 4
        ops = [p.mac_ops for p in FIG9_DESIGN_POINTS[:5]]
        assert ops == [4, 8, 16, 32, 64]

    def test_designs_6_9_grow_hw_to_match_ops(self):
        for point in FIG9_DESIGN_POINTS[5:9]:
            assert point.mac_ops == 64
        assert [p.mac_hw for p in FIG9_DESIGN_POINTS[5:9]] == [8, 16, 32, 64]

    def test_large_designs_scale_everything(self):
        assert FIG9_DESIGN_POINTS[11].mac_seq == 2048
        assert FIG9_DESIGN_POINTS[11].mac_hw == 512

    def test_rom_words_per_pe(self):
        point = LayerDesignPoint(99, mac_seq=256, mac_hw=4, mac_ops=64)
        assert point.rom_words_per_pe == 16 * 256

    def test_eq12_enforced(self):
        with pytest.raises(ValueError):
            LayerDesignPoint(99, mac_seq=256, mac_hw=8, mac_ops=4)


class TestPowerModel:
    def test_pe_fraction_trend_matches_fig9(self):
        model = AcceleratorPowerModel()
        fractions = [model.pe_fraction(p) for p in FIG9_DESIGN_POINTS]
        # Designs 1-5: ~25 %.
        for frac in fractions[:5]:
            assert frac == pytest.approx(0.25, abs=0.05)
        # Design 9: ~80 %.
        assert fractions[8] == pytest.approx(0.80, abs=0.07)
        # Design 12: ~96 %.
        assert fractions[11] == pytest.approx(0.96, abs=0.03)

    def test_fraction_monotone_from_6_to_12(self):
        model = AcceleratorPowerModel()
        fractions = [model.pe_fraction(p) for p in FIG9_DESIGN_POINTS[5:]]
        assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))

    def test_layer_power_is_pe_plus_control(self):
        model = AcceleratorPowerModel()
        point = FIG9_DESIGN_POINTS[0]
        assert model.layer_power(point) == pytest.approx(
            model.pe_power(point) + model.control_power(point))

    def test_power_grows_with_hw(self):
        model = AcceleratorPowerModel()
        assert (model.layer_power(FIG9_DESIGN_POINTS[5])
                < model.layer_power(FIG9_DESIGN_POINTS[8]))

    def test_latency_matches_eq11(self):
        model = AcceleratorPowerModel()
        point = FIG9_DESIGN_POINTS[4]  # 256 seq, 4 hw, 64 ops
        expected = 256 * model.tech.t_mac_s * 16
        assert model.layer_latency_s(point) == pytest.approx(expected)


class TestFig9Table:
    def test_row_count_and_keys(self):
        rows = fig9_power_table()
        assert len(rows) == 12
        assert set(rows[0]) >= {"design", "layer_power_mw", "pe_power_mw",
                                "pe_fraction"}

    def test_pe_power_below_layer_power(self):
        for row in fig9_power_table():
            assert row["pe_power_mw"] < row["layer_power_mw"]

    def test_design_12_power_magnitude(self):
        # Hundreds of PEs at ~0.1 mW each -> tens of mW, log-scale range
        # of the paper's plot.
        row = fig9_power_table()[11]
        assert 10.0 < row["layer_power_mw"] < 1000.0
