"""Tests for the technology library (paper-published MAC parameters)."""

import pytest

from repro.accel.tech import (
    TECH_12NM,
    TECH_45NM,
    TECH_130NM,
    TechnologyNode,
    technology_by_name,
)


class TestPublishedNodes:
    def test_45nm_matches_paper(self):
        # Section 5.3, Results: tMAC = 2 ns, PMAC = 0.05 mW.
        assert TECH_45NM.t_mac_s == pytest.approx(2e-9)
        assert TECH_45NM.p_mac_w == pytest.approx(0.05e-3)

    def test_12nm_matches_paper(self):
        # Section 6.2: tMAC = 1 ns, PMAC = 0.026 mW.
        assert TECH_12NM.t_mac_s == pytest.approx(1e-9)
        assert TECH_12NM.p_mac_w == pytest.approx(0.026e-3)

    def test_energy_per_mac_improves_with_node(self):
        assert (TECH_12NM.energy_per_mac_j < TECH_45NM.energy_per_mac_j
                < TECH_130NM.energy_per_mac_j)

    def test_45nm_energy_value(self):
        # 0.05 mW * 2 ns = 0.1 pJ per accumulate step.
        assert TECH_45NM.energy_per_mac_j == pytest.approx(1e-13)

    def test_steps_per_second(self):
        assert TECH_45NM.steps_per_second() == pytest.approx(5e8)


class TestLookup:
    def test_by_name(self):
        assert technology_by_name("45nm") is TECH_45NM
        assert technology_by_name("12nm") is TECH_12NM

    def test_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="45nm"):
            technology_by_name("7nm")


class TestValidation:
    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            TechnologyNode(name="bad", t_mac_s=0.0, p_mac_w=1.0)
        with pytest.raises(ValueError):
            TechnologyNode(name="bad", t_mac_s=1.0, p_mac_w=-1.0)
