"""FaultInjector determinism, event accounting, and corruption ops."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.fault import (FaultInjector, FaultPlan, LinkFaults,
                         default_chaos_plan)


def _packet_bytes(n: int = 64) -> bytes:
    return bytes(range(n))


class TestDeterminism:
    def test_same_plan_same_fault_log(self):
        logs = []
        for _ in range(2):
            injector = FaultInjector(default_chaos_plan(seed=7))
            for index in range(50):
                injector.perturb_packet(_packet_bytes(),
                                        target=f"packet:{index}")
            logs.append(injector.to_json())
        assert logs[0] == logs[1]

    def test_domains_are_independent_streams(self):
        plan = default_chaos_plan(seed=7)
        plain = FaultInjector(plan)
        interleaved = FaultInjector(plan)
        # Burn cache draws on one injector only; the link stream must
        # not shift (order-independent derivation, as in repro.perf).
        for _ in range(25):
            interleaved.should_corrupt_entry()
        a = [plain.perturb_packet(_packet_bytes(), f"p:{i}")
             for i in range(20)]
        b = [interleaved.perturb_packet(_packet_bytes(), f"p:{i}")
             for i in range(20)]
        assert a == b

    def test_log_has_no_timestamps_and_gapless_seqs(self):
        injector = FaultInjector(default_chaos_plan(seed=3))
        injector.inject_packet_stream(
            [_packet_bytes() for _ in range(40)])
        record = json.loads(injector.to_json())
        assert [event["seq"] for event in record["events"]] == list(
            range(len(record["events"])))
        blob = json.dumps(record)  # wall-clock would break replay
        assert "unix" not in blob and "stamp" not in blob
        assert "elapsed" not in blob and "duration" not in blob


class TestCounters:
    def test_injections_vs_outcomes(self):
        injector = FaultInjector(FaultPlan())
        injector.record("link", "drop", "packet:0")
        injector.record_recovered("link", "packet:0", attempts=2)
        injector.record_failed("worker", "fig5", attempts=3)
        assert injector.counters == {"injected": 1, "recovered": 1,
                                     "failed": 1}

    def test_events_mirror_into_metrics(self):
        obs.enable_all()
        try:
            injector = FaultInjector(FaultPlan())
            injector.record("link", "drop", "packet:0")
            injector.record("cache", "corrupt", "entry:1")
            injector.record_recovered("cache", "entry:1")
            counters = obs.REGISTRY.snapshot()["counters"]
            assert counters["fault.injected"] == 2
            assert counters["fault.link.injected"] == 1
            assert counters["fault.cache.injected"] == 1
            assert counters["fault.recovered"] == 1
        finally:
            obs.disable_all()
            obs.reset_all()

    def test_write_log_round_trips(self, tmp_path):
        injector = FaultInjector(default_chaos_plan(seed=5))
        injector.record("link", "drop", "packet:0")
        path = injector.write_log(tmp_path / "logs" / "fault_log.json")
        assert path.read_text(encoding="utf-8") == injector.to_json()
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["plan"] == default_chaos_plan(seed=5).to_dict()


class TestByteCorruption:
    def test_zero_ber_is_identity(self):
        injector = FaultInjector(FaultPlan())
        raw = _packet_bytes()
        assert injector.corrupt_bytes(raw, "p:0") is raw
        assert injector.events == []

    def test_high_ber_flips_and_logs(self):
        plan = FaultPlan(seed=1, link=LinkFaults(ber=0.5))
        injector = FaultInjector(plan)
        raw = _packet_bytes()
        damaged = injector.corrupt_bytes(raw, "p:0")
        assert damaged != raw
        assert len(damaged) == len(raw)
        [event] = injector.events
        assert event.kind == "bit_flip"
        flipped = np.unpackbits(
            np.frombuffer(raw, dtype=np.uint8)) ^ np.unpackbits(
            np.frombuffer(damaged, dtype=np.uint8))
        assert int(flipped.sum()) == event.detail["n_flips"]

    def test_flip_burst_is_contiguous_and_bounded(self):
        injector = FaultInjector(FaultPlan(seed=9))
        raw = _packet_bytes()
        for trial in range(50):
            damaged = injector.flip_burst(raw, f"p:{trial}",
                                          max_burst_bits=16)
            diff = np.flatnonzero(np.unpackbits(
                np.frombuffer(raw, dtype=np.uint8)) ^ np.unpackbits(
                np.frombuffer(damaged, dtype=np.uint8)))
            assert 1 <= diff.size <= 16
            assert diff[-1] - diff[0] == diff.size - 1  # contiguous


class TestPacketPerturbation:
    def test_certain_drop_returns_none(self):
        plan = FaultPlan(seed=2, link=LinkFaults(drop_rate=0.999))
        injector = FaultInjector(plan)
        assert injector.perturb_packet(_packet_bytes(), "p:0") is None
        assert injector.events[0].kind == "drop"

    def test_certain_truncation_shortens(self):
        plan = FaultPlan(seed=2, link=LinkFaults(truncate_rate=0.999))
        injector = FaultInjector(plan)
        raw = _packet_bytes()
        damaged = injector.perturb_packet(raw, "p:0")
        assert damaged is not None and 1 <= len(damaged) < len(raw)
        assert injector.events[0].kind == "truncate"

    def test_null_plan_passes_packets_through_unchanged(self):
        injector = FaultInjector(FaultPlan())
        stream = [_packet_bytes() for _ in range(10)]
        assert injector.inject_packet_stream(stream) == stream
        assert injector.counters["injected"] == 0


class TestCacheCorruption:
    def _entry(self, tmp_path, key="ab" * 32):
        path = tmp_path / f"{key}.json"
        path.write_text(json.dumps({"key": key, "payload": {"x": 1}}),
                        encoding="utf-8")
        return path, key

    def test_truncate_mode(self, tmp_path):
        injector = FaultInjector(FaultPlan())
        path, _ = self._entry(tmp_path)
        before = path.read_text(encoding="utf-8")
        mode = injector.corrupt_cache_entry(path, "entry:0",
                                            mode="truncate")
        assert mode == "truncate"
        after = path.read_text(encoding="utf-8")
        assert 0 < len(after) < len(before)
        with pytest.raises(ValueError):
            json.loads(after)

    def test_garbage_mode(self, tmp_path):
        injector = FaultInjector(FaultPlan())
        path, _ = self._entry(tmp_path)
        injector.corrupt_cache_entry(path, "entry:0", mode="garbage")
        with pytest.raises(ValueError):
            json.loads(path.read_text(encoding="utf-8"))

    def test_key_mismatch_mode_keeps_valid_json(self, tmp_path):
        injector = FaultInjector(FaultPlan())
        path, key = self._entry(tmp_path)
        injector.corrupt_cache_entry(path, "entry:0",
                                     mode="key_mismatch")
        entry = json.loads(path.read_text(encoding="utf-8"))
        assert entry["key"] == "0" * 64 != key

    def test_unknown_mode_rejected(self, tmp_path):
        injector = FaultInjector(FaultPlan())
        path, _ = self._entry(tmp_path)
        with pytest.raises(ValueError, match="unknown cache fault mode"):
            injector.corrupt_cache_entry(path, "entry:0", mode="delete")

    def test_drill_rate_zero_draws_nothing(self):
        injector = FaultInjector(FaultPlan())
        assert not injector.should_corrupt_entry()
        # No draw happened: the cache stream starts fresh afterwards.
        probe = FaultInjector(FaultPlan())
        assert (injector.rng("cache").random()
                == probe.rng("cache").random())
