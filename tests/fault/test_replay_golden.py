"""Golden fault-log regression: the chaos drills replay byte-for-byte.

The fixture under ``golden/`` was generated with::

    injector = FaultInjector(default_chaos_plan(seed=7))
    run_chaos_drills(injector, <scratch dir>)
    injector.write_log("tests/fault/golden/fault_log.json")

Fault logs carry no timestamps, hostnames, or temp paths, so the exact
bytes must reproduce on any machine.  If an intentional change to the
fault layer alters the stream, regenerate the fixture with the snippet
above and review the diff like any other golden update.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.fault import FaultInjector, default_chaos_plan, run_chaos_drills

GOLDEN = Path(__file__).parent / "golden" / "fault_log.json"


def _run_drills(root):
    injector = FaultInjector(default_chaos_plan(seed=7))
    report = run_chaos_drills(injector, root)
    return injector, report


def test_drill_log_is_independent_of_the_scratch_path(tmp_path):
    first, _ = _run_drills(tmp_path / "one")
    second, _ = _run_drills(tmp_path / "two deeply" / "nested dir")
    assert first.to_json() == second.to_json()


def test_drill_log_matches_golden_fixture(tmp_path):
    injector, _ = _run_drills(tmp_path)
    assert injector.to_json() == GOLDEN.read_text(encoding="utf-8")


def test_drill_report_accounting(tmp_path):
    injector, report = _run_drills(tmp_path)
    link, cache = report["link"], report["cache"]
    assert link["samples_recovered"] < link["samples_sent"]
    assert link["loss"]["received"] < 128  # drops shrank the stream
    assert link["arq"]["delivered"] + link["arq"]["dropped"] == 128
    assert cache["corrupted"] > 0
    assert cache["healed"] == cache["corrupted"]
    assert cache["quarantined"] == cache["corrupted"]
    assert cache["intact_hits"] == cache["entries"] - cache["corrupted"]
    counters = json.loads(injector.to_json())["counters"]
    assert counters == injector.counters
    assert counters["injected"] > 0 and counters["recovered"] > 0
