"""FaultPlan validation, serialization, and seed derivation."""

from __future__ import annotations

import pickle

import pytest

from repro.fault import (CacheFaults, FaultPlan, InjectedWorkerFault,
                         LinkFaults, RetryPolicy, WorkerFaults,
                         default_chaos_plan, derive_fault_seed)


class TestRateValidation:
    @pytest.mark.parametrize("field", ["ber", "drop_rate",
                                       "truncate_rate", "reorder_rate"])
    @pytest.mark.parametrize("value", [-0.1, 1.0, 1.5])
    def test_link_rates_must_lie_in_unit_interval(self, field, value):
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            LinkFaults(**{field: value})

    def test_cache_rate_and_modes(self):
        with pytest.raises(ValueError):
            CacheFaults(corrupt_rate=1.0)
        with pytest.raises(ValueError, match="must not be empty"):
            CacheFaults(modes=())
        with pytest.raises(ValueError, match="unknown cache fault modes"):
            CacheFaults(modes=("truncate", "set_on_fire"))

    def test_worker_budgets_must_be_non_negative(self):
        with pytest.raises(ValueError):
            WorkerFaults(crash={"fig5": -1})
        with pytest.raises(ValueError):
            WorkerFaults(slow_s={"fig5": -0.5})
        with pytest.raises(ValueError):
            WorkerFaults(hang_s={"fig5": -2.0})

    def test_retry_policy_bounds(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
        RetryPolicy(timeout_s=None)  # null disables the bound


class TestSemantics:
    def test_any_enabled_flags(self):
        assert not LinkFaults().any_enabled
        assert LinkFaults(ber=1e-6).any_enabled
        assert not WorkerFaults().any_enabled
        assert WorkerFaults(slow_s={"fig5": 0.1}).any_enabled

    def test_crash_budget_then_secondary_fault(self):
        spec = WorkerFaults(crash={"fig5": 2}, slow_s={"fig5": 0.5})
        assert spec.fault_for("fig5", 0) == ("crash", 0.0)
        assert spec.fault_for("fig5", 1) == ("crash", 0.0)
        assert spec.fault_for("fig5", 2) == ("slow", 0.5)
        assert spec.fault_for("fig7", 0) == (None, 0.0)

    def test_hang_applies_when_no_crash_budget_left(self):
        spec = WorkerFaults(hang_s={"fig8": 3.0})
        assert spec.fault_for("fig8", 0) == ("hang", 3.0)

    def test_backoff_doubles(self):
        policy = RetryPolicy(backoff_s=0.25)
        assert [policy.backoff_for(k) for k in range(3)] == [0.25, 0.5,
                                                             1.0]


class TestSerialization:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=13,
            link=LinkFaults(ber=0.001, drop_rate=0.2),
            cache=CacheFaults(corrupt_rate=0.3, modes=("garbage",)),
            worker=WorkerFaults(crash={"fig5": 1}, hang_s={"fig7": 2.0}),
            retry=RetryPolicy(max_retries=4, backoff_s=0.0,
                              timeout_s=9.0))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_default_chaos_plan_round_trips(self):
        plan = default_chaos_plan(seed=7)
        assert plan.link.any_enabled
        assert plan.cache.corrupt_rate > 0
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"seed": 1, "links": {}})

    def test_unknown_section_key_rejected(self):
        with pytest.raises(ValueError, match="bad fault-plan section"):
            FaultPlan.from_dict({"link": {"bit_error_rate": 0.1}})

    def test_non_object_and_invalid_json_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(default_chaos_plan(3).to_json(),
                        encoding="utf-8")
        assert FaultPlan.from_file(path) == default_chaos_plan(3)

    def test_empty_object_is_the_null_plan(self):
        plan = FaultPlan.from_dict({})
        assert plan == FaultPlan()
        assert not plan.link.any_enabled


class TestDeriveFaultSeed:
    def test_stable_and_in_numpy_range(self):
        value = derive_fault_seed(7, "link")
        assert value == derive_fault_seed(7, "link")
        assert 0 <= value < 2**63

    def test_distinct_per_domain_and_seed(self):
        seeds = {derive_fault_seed(7, domain)
                 for domain in ("link", "cache", "worker")}
        assert len(seeds) == 3
        assert derive_fault_seed(7, "link") != derive_fault_seed(
            8, "link")

    def test_namespaced_away_from_driver_seeds(self):
        from repro.perf import derive_driver_seed
        assert derive_fault_seed(7, "fig5") != derive_driver_seed(
            7, "fig5")


class TestInjectedWorkerFault:
    def test_carries_driver_and_attempt(self):
        error = InjectedWorkerFault("fig5", 1)
        assert error.driver == "fig5"
        assert error.attempt == 1
        assert "fig5" in str(error)

    def test_pickles_across_the_pool_boundary(self):
        error = pickle.loads(pickle.dumps(InjectedWorkerFault("fig7", 2)))
        assert isinstance(error, InjectedWorkerFault)
        assert (error.driver, error.attempt) == ("fig7", 2)
