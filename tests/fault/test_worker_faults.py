"""Worker crash/hang/slow faults and the bounded-retry engines.

The headline contract from the chaos suite: a ``run_all(jobs=4,
max_retries=2)`` whose fault plan crashes drivers (within the retry
budget) still writes every CSV byte-identical to a fault-free serial
run — recovery is invisible in the artifacts, visible in the fault log.
"""

from __future__ import annotations

import pytest

from repro.experiments import (ALL_EXPERIMENTS, FAILURE_COLUMNS,
                               experiment_name, is_recorded_failure,
                               run_all, run_module,
                               run_module_resilient)
from repro.fault import (FaultInjector, FaultPlan, RetryPolicy,
                         WorkerFaults)
from repro.perf import run_parallel

#: The cheapest driver (a static table) — retried many times in here.
CHEAP = ALL_EXPERIMENTS[0]
CHEAP_NAME = experiment_name(CHEAP)


def _crash_plan(crashes: dict[str, int],
                max_retries: int = 2) -> FaultPlan:
    return FaultPlan(worker=WorkerFaults(crash=crashes),
                     retry=RetryPolicy(max_retries=max_retries,
                                       backoff_s=0.0))


class TestSerialResilience:
    def test_happy_path_matches_run_module(self):
        plain = run_module(CHEAP, seed=5)
        resilient = run_module_resilient(CHEAP, seed=5)
        assert resilient.rows == plain.rows
        assert resilient.title == plain.title
        assert resilient.fault_info is None
        assert not is_recorded_failure(resilient)

    def test_crash_within_budget_recovers(self):
        plan = _crash_plan({CHEAP_NAME: 2})
        injector = FaultInjector(plan)
        result = run_module_resilient(CHEAP, seed=5, max_retries=2,
                                      backoff_s=0.0, fault_plan=plan,
                                      injector=injector)
        assert result.rows == run_module(CHEAP, seed=5).rows
        assert result.fault_info == {"injected": 2, "recovered": 1,
                                     "failed": 0, "attempts": 3}
        assert injector.counters == {"injected": 2, "recovered": 1,
                                     "failed": 0}
        kinds = [event.kind for event in injector.events]
        assert kinds == ["crash", "crash", "recovered"]

    def test_exhausted_budget_degrades_to_recorded_failure(self):
        plan = _crash_plan({CHEAP_NAME: 99})
        injector = FaultInjector(plan)
        result = run_module_resilient(CHEAP, seed=5, max_retries=2,
                                      backoff_s=0.0, fault_plan=plan,
                                      injector=injector)
        assert is_recorded_failure(result)
        assert result.columns == list(FAILURE_COLUMNS)
        [row] = result.rows
        assert row["driver"] == CHEAP_NAME
        assert row["status"] == "failed"
        assert row["attempts"] == 3
        assert "InjectedWorkerFault" in row["error"]
        assert injector.counters["failed"] == 1
        assert result.fault_info["failed"] == 1

    def test_slow_fault_is_logged_but_harmless(self):
        plan = FaultPlan(worker=WorkerFaults(slow_s={CHEAP_NAME: 0.01}))
        injector = FaultInjector(plan)
        result = run_module_resilient(CHEAP, seed=5, fault_plan=plan,
                                      injector=injector)
        assert not is_recorded_failure(result)
        assert result.rows == run_module(CHEAP, seed=5).rows
        [event] = injector.events
        assert event.kind == "slow" and event.target == CHEAP_NAME

    def test_negative_retry_budget_rejected(self):
        with pytest.raises(ValueError):
            run_module_resilient(CHEAP, max_retries=-1)


def _csv_bytes(directory):
    return {path.name: path.read_bytes()
            for path in sorted(directory.glob("*.csv"))}


class TestParallelResilience:
    def test_crashing_drivers_recover_byte_identical_to_serial(
            self, tmp_path):
        serial_dir = tmp_path / "serial"
        chaos_dir = tmp_path / "chaos"
        crashes = {experiment_name(ALL_EXPERIMENTS[0]): 1,
                   experiment_name(ALL_EXPERIMENTS[1]): 2}
        plan = _crash_plan(crashes, max_retries=2)
        injector = FaultInjector(plan)

        serial = run_all(output_dir=serial_dir, seed=7)
        chaotic = run_all(output_dir=chaos_dir, seed=7, jobs=4,
                          max_retries=2, fault_plan=plan,
                          injector=injector)

        assert _csv_bytes(serial_dir) == _csv_bytes(chaos_dir)
        assert [r.title for r in serial] == [r.title for r in chaotic]
        assert not any(is_recorded_failure(r) for r in chaotic)
        assert injector.counters == {"injected": 3, "recovered": 2,
                                     "failed": 0}

    def test_crash_beyond_budget_yields_failure_row_in_order(
            self, tmp_path):
        modules = list(ALL_EXPERIMENTS[:3])
        doomed = experiment_name(modules[1])
        plan = _crash_plan({doomed: 99})
        injector = FaultInjector(plan)
        results = run_parallel(modules, output_dir=tmp_path, jobs=2,
                               seed=11, max_retries=1, backoff_s=0.0,
                               fault_plan=plan, injector=injector)
        assert [is_recorded_failure(r) for r in results] == [
            False, True, False]
        failure = results[1]
        assert failure.name == doomed
        [row] = failure.rows
        assert row["attempts"] == 2
        assert "InjectedWorkerFault" in row["error"]
        assert (tmp_path / f"{doomed}.csv").is_file()
        assert injector.counters["failed"] == 1

    def test_hung_driver_times_out_to_recorded_failure(self, tmp_path):
        plan = FaultPlan(worker=WorkerFaults(hang_s={CHEAP_NAME: 1.0}),
                         retry=RetryPolicy(max_retries=0, backoff_s=0.0,
                                           timeout_s=0.2))
        injector = FaultInjector(plan)
        [result] = run_parallel([CHEAP], output_dir=tmp_path, jobs=2,
                                seed=3, max_retries=0, backoff_s=0.0,
                                timeout_s=0.2, fault_plan=plan,
                                injector=injector)
        assert is_recorded_failure(result)
        assert result.rows[0]["error"] == "timeout"
        assert injector.events[0].kind == "hang"
        assert injector.counters["failed"] == 1
