"""Chaos suite for the deterministic fault-injection layer."""
