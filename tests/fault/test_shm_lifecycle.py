"""Shared-memory segment lifecycle under faults (ISSUE 7 satellite).

Every segment the zero-copy engine creates must be unlinked by the time
``run_parallel`` returns — after clean runs, after a worker crashes
*between writing its segment and replying* (the quarantine path), and
after a hung worker is killed mid-task.  A leaked segment would both
eat ``/dev/shm`` and trip Python's resource tracker at interpreter
exit.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import (ALL_EXPERIMENTS, experiment_name,
                               is_recorded_failure)
from repro.fault import FaultPlan, RetryPolicy, WorkerFaults
from repro.perf import run_parallel
from repro.perf.pool import _EXIT_AFTER_PACK_ENV, get_pool, shutdown_pool

CHEAP = ALL_EXPERIMENTS[0]
CHEAP_NAME = experiment_name(CHEAP)

_DEV_SHM = Path("/dev/shm")


@pytest.fixture(autouse=True)
def _fresh_pool():
    # The pool forks at creation: a pool predating this test's
    # monkeypatching would not see it, and segments of one test must
    # not survive into the next.
    shutdown_pool()
    yield
    shutdown_pool()


def _repro_segments() -> set[str]:
    if not _DEV_SHM.is_dir():
        pytest.skip("no /dev/shm on this platform")
    return {path.name for path in _DEV_SHM.glob("repro-*")}


class TestCleanRuns:
    def test_no_segments_after_parallel_run(self, tmp_path):
        before = _repro_segments()
        run_parallel(list(ALL_EXPERIMENTS[:4]), output_dir=tmp_path,
                     jobs=2, seed=3)
        assert _repro_segments() == before

    def test_no_segments_while_pool_stays_warm(self, tmp_path):
        """The pool persisting must not mean segments persist."""
        before = _repro_segments()
        run_parallel(list(ALL_EXPERIMENTS[:2]), output_dir=tmp_path,
                     jobs=2, seed=3)
        assert not get_pool(2).closed
        assert _repro_segments() == before

    def test_no_resource_tracker_warnings(self, tmp_path):
        """A full parallel run in a fresh interpreter exits without the
        tracker's 'leaked shared_memory objects' complaint."""
        script = (
            "from repro.experiments import ALL_EXPERIMENTS\n"
            "from repro.perf import run_parallel\n"
            f"run_parallel(list(ALL_EXPERIMENTS[:3]), "
            f"output_dir={str(tmp_path)!r}, jobs=2, seed=3)\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, timeout=300, env=env,
            cwd=Path(__file__).parents[2])
        assert proc.returncode == 0, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr


class TestCrashMidWrite:
    def test_crash_between_pack_and_reply_is_quarantined(
            self, tmp_path, monkeypatch):
        """Worker dies after creating + writing its segment but before
        replying: the parent must fail over, reclaim the orphaned
        segment, and respawn the worker."""
        before = _repro_segments()
        monkeypatch.setenv(_EXIT_AFTER_PACK_ENV, CHEAP_NAME)
        results = run_parallel([CHEAP], output_dir=tmp_path, jobs=1,
                               seed=5, max_retries=1, backoff_s=0.0)
        assert len(results) == 1
        # The env var rides fork inheritance into every respawn, so the
        # driver fails its whole budget and is recorded as a failure.
        assert is_recorded_failure(results[0])
        assert "WorkerDied" in results[0].rows[0]["error"]
        assert get_pool(1).respawns >= 2
        assert _repro_segments() == before

    def test_crashed_worker_pool_still_serves(self, tmp_path,
                                              monkeypatch):
        before = _repro_segments()
        monkeypatch.setenv(_EXIT_AFTER_PACK_ENV, CHEAP_NAME)
        run_parallel([CHEAP], output_dir=tmp_path / "a", jobs=1,
                     seed=5, max_retries=0, backoff_s=0.0)
        monkeypatch.delenv(_EXIT_AFTER_PACK_ENV)
        # Respawned workers re-read the env at fork time; after clearing
        # it, the same pool must complete the driver normally (the one
        # worker respawned while the hook was still set dies once more,
        # then its replacement — forked post-delenv — succeeds).
        results = run_parallel([CHEAP], output_dir=tmp_path / "b",
                               jobs=1, seed=5, backoff_s=0.0)
        assert not is_recorded_failure(results[0])
        assert _repro_segments() == before


class TestTimeoutKills:
    def test_hang_timeout_reclaims_segment(self, tmp_path):
        before = _repro_segments()
        plan = FaultPlan(
            worker=WorkerFaults(hang_s={CHEAP_NAME: 30.0}),
            retry=RetryPolicy(max_retries=0, backoff_s=0.0))
        results = run_parallel([CHEAP], output_dir=tmp_path, jobs=1,
                               seed=5, max_retries=0, backoff_s=0.0,
                               timeout_s=0.5, fault_plan=plan)
        assert is_recorded_failure(results[0])
        assert results[0].rows[0]["error"] == "timeout"
        pool = get_pool(1)
        assert pool.respawns >= 1
        assert _repro_segments() == before
        # The respawned worker is immediately usable.
        follow_up = run_parallel([CHEAP], output_dir=tmp_path / "b",
                                 jobs=1, seed=5)
        assert not is_recorded_failure(follow_up[0])
