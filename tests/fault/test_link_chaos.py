"""Property-style chaos tests for the lossy link receive path."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.fault import (FaultInjector, FaultPlan, LinkFaults,
                         default_chaos_plan)
from repro.link.packetizer import Packet, Packetizer
from repro.link.protocol import FaultedArqReport, simulate_arq_with_faults


def _ramp(n: int = 1024, sample_bits: int = 10) -> np.ndarray:
    lo, hi = -(1 << (sample_bits - 1)), (1 << (sample_bits - 1)) - 1
    return (np.arange(n, dtype=np.int64) % (hi - lo + 1) + lo).astype(
        np.int32)


class TestLossyRoundTripProperty:
    @pytest.mark.parametrize("seed", range(12))
    def test_damaged_stream_never_raises_and_accounting_balances(
            self, seed):
        codes = _ramp(600)  # not the full code range: isin is meaningful
        packetizer = Packetizer(payload_bytes=32)
        raw = [p.to_bytes() for p in packetizer.packetize(codes)]
        injector = FaultInjector(default_chaos_plan(seed=seed))
        damaged = injector.inject_packet_stream(raw)

        recovered, report = packetizer.depacketize_lossy(damaged)

        assert report.received == len(damaged)
        assert (report.accepted + report.crc_failures + report.malformed
                + report.duplicates) == report.received
        assert recovered.size <= codes.size
        assert recovered.dtype == codes.dtype
        # Every recovered sample is a value the transmitter sent.
        assert np.isin(recovered, codes).all()

    def test_disabled_faults_round_trip_exactly(self):
        codes = _ramp()
        packetizer = Packetizer(payload_bytes=32)
        raw = [p.to_bytes() for p in packetizer.packetize(codes)]
        injector = FaultInjector(FaultPlan(seed=7))  # all rates zero

        stream = injector.inject_packet_stream(raw)
        recovered, report = packetizer.depacketize_lossy(stream)

        assert stream == raw
        np.testing.assert_array_equal(recovered, codes)
        assert report.to_dict() == {
            "accepted": len(raw), "crc_failures": 0, "duplicates": 0,
            "malformed": 0, "missing": 0, "received": len(raw),
            "reordered": 0, "trailing_bytes_dropped": 0}
        assert injector.counters["injected"] == 0


class TestCrcBurstDetection:
    def test_crc16_catches_every_burst_up_to_16_bits(self):
        """CRC-16 detects all burst errors no longer than its width;
        flip_burst stays within that bound, so a damaged packet must
        never pass validation."""
        packetizer = Packetizer(payload_bytes=32)
        [packet] = packetizer.packetize(_ramp(16))
        raw = packet.to_bytes()
        injector = FaultInjector(FaultPlan(seed=11))
        for trial in range(200):
            damaged = injector.flip_burst(raw, f"trial:{trial}",
                                          max_burst_bits=16)
            assert damaged != raw
            assert not Packet.from_bytes(damaged).valid

    def test_replay_is_byte_identical(self):
        packetizer = Packetizer(payload_bytes=32)
        [packet] = packetizer.packetize(_ramp(16))
        raw = packet.to_bytes()

        def burst_log(seed: int) -> str:
            injector = FaultInjector(FaultPlan(seed=seed))
            for trial in range(20):
                injector.flip_burst(raw, f"trial:{trial}")
            return injector.to_json()

        assert burst_log(4) == burst_log(4)
        assert burst_log(4) != burst_log(5)


class TestFaultedArq:
    def test_clean_link_delivers_everything_first_try(self):
        codes = _ramp(256)
        injector = FaultInjector(FaultPlan())
        report = simulate_arq_with_faults(codes, injector,
                                          payload_bytes=32)
        n_packets = math.ceil(codes.size * 2 / 32)
        assert report.delivered == n_packets
        assert report.recovered == 0 and report.dropped == 0
        assert report.transmissions == n_packets
        assert report.payload_bits_delivered == codes.size * 2 * 8
        assert 0 < report.goodput_fraction < 1  # framing overhead

    def test_lossy_link_recovers_within_retry_budget(self):
        plan = FaultPlan(seed=3, link=LinkFaults(drop_rate=0.3))
        injector = FaultInjector(plan)
        codes = _ramp(2048)
        report = simulate_arq_with_faults(codes, injector,
                                          payload_bytes=32,
                                          max_retries=6)
        n_packets = math.ceil(codes.size * 2 / 32)
        assert report.recovered > 0
        assert report.transmissions > n_packets
        assert report.delivered + report.dropped == n_packets
        assert report.transmissions <= n_packets * 7
        assert injector.counters["recovered"] == report.recovered
        assert injector.counters["failed"] == report.dropped

    def test_zero_retries_drop_heavily_and_are_logged(self):
        plan = FaultPlan(seed=5, link=LinkFaults(drop_rate=0.5))
        injector = FaultInjector(plan)
        report = simulate_arq_with_faults(_ramp(2048), injector,
                                          payload_bytes=32,
                                          max_retries=0)
        assert report.dropped > 0
        assert report.dropped == injector.counters["failed"]

    def test_retry_budget_defaults_to_the_plan(self):
        plan = FaultPlan(seed=3, link=LinkFaults(drop_rate=0.3))
        explicit = simulate_arq_with_faults(
            _ramp(512), FaultInjector(plan), payload_bytes=32,
            max_retries=plan.retry.max_retries)
        implicit = simulate_arq_with_faults(
            _ramp(512), FaultInjector(plan), payload_bytes=32)
        assert explicit.to_dict() == implicit.to_dict()
        with pytest.raises(ValueError):
            simulate_arq_with_faults(_ramp(64), FaultInjector(plan),
                                     max_retries=-1)

    def test_energy_accounting(self):
        report = FaultedArqReport(delivered=2, recovered=1, dropped=0,
                                  transmissions=3,
                                  payload_bits_delivered=512,
                                  total_bits_sent=864)
        assert report.goodput_fraction == pytest.approx(512 / 864)
        assert report.delivered_energy_per_bit(10e-9) == pytest.approx(
            10e-9 * 864 / 512)
        dead = FaultedArqReport(delivered=0, recovered=0, dropped=4,
                                transmissions=4,
                                payload_bits_delivered=0,
                                total_bits_sent=1152)
        assert dead.goodput_fraction == 0.0
        assert math.isinf(dead.delivered_energy_per_bit(10e-9))
        with pytest.raises(ValueError):
            dead.delivered_energy_per_bit(-1.0)
