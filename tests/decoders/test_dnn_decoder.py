"""Tests for the DNN decoder wrapper."""

import numpy as np

from repro.decoders.dnn_decoder import DnnDecoder
from repro.dnn.layers import Dense, Tanh
from repro.dnn.network import Network
from repro.signals.datasets import make_speech_dataset


def small_decoder(rng, n_in=32, n_out=40):
    net = Network([Dense(n_in, 64, rng=rng), Tanh(),
                   Dense(64, n_out, rng=rng), Tanh()],
                  input_shape=(n_in,))
    return DnnDecoder(net, epochs=30, learning_rate=0.3)


class TestDnnDecoder:
    def test_not_fitted_initially(self, rng):
        assert not small_decoder(rng).fitted

    def test_training_reduces_loss(self, rng):
        data = make_speech_dataset(8, 600, rng, window=4, noise_rms=0.05)
        decoder = small_decoder(rng, n_in=32)
        history = decoder.fit(data.features, data.targets, rng)
        assert history[-1] < history[0]
        assert decoder.fitted

    def test_learns_speech_mapping(self, rng):
        data = make_speech_dataset(8, 1500, rng, window=4, noise_rms=0.05)
        split = 1200
        decoder = small_decoder(rng, n_in=32)
        decoder.fit(data.features[:split], data.targets[:split], rng)
        score = decoder.score(data.features[split:], data.targets[split:])
        assert score > 0.4

    def test_decode_shape(self, rng):
        decoder = small_decoder(rng)
        out = decoder.decode(rng.standard_normal((7, 32)))
        assert out.shape == (7, 40)

    def test_score_of_constant_target_is_zero(self, rng):
        decoder = small_decoder(rng, n_in=4, n_out=2)
        features = rng.standard_normal((10, 4))
        targets = np.ones((10, 2))
        assert decoder.score(features, targets) == 0.0
