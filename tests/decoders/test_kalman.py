"""Tests for the Kalman filter decoder."""

import numpy as np
import pytest

from repro.decoders.kalman import KalmanFilterDecoder
from repro.signals.datasets import make_cursor_dataset


class TestFitting:
    def test_recovers_dynamics_of_linear_system(self, rng):
        # x_t = 0.9 x_{t-1} + noise, y = 2x + noise.
        t_len = 3000
        x = np.zeros((t_len, 1))
        for t in range(1, t_len):
            x[t] = 0.9 * x[t - 1] + 0.1 * rng.standard_normal(1)
        y = 2.0 * x + 0.01 * rng.standard_normal((t_len, 1))
        decoder = KalmanFilterDecoder()
        decoder.fit(x, y)
        assert decoder.A[0, 0] == pytest.approx(0.9, abs=0.05)
        assert decoder.H[0, 0] == pytest.approx(2.0, abs=0.1)

    def test_fitted_flag(self):
        decoder = KalmanFilterDecoder()
        assert not decoder.fitted
        decoder.fit(np.random.default_rng(0).standard_normal((10, 2)),
                    np.random.default_rng(1).standard_normal((10, 3)))
        assert decoder.fitted

    def test_rejects_mismatched_lengths(self, rng):
        decoder = KalmanFilterDecoder()
        with pytest.raises(ValueError):
            decoder.fit(rng.standard_normal((10, 2)),
                        rng.standard_normal((9, 3)))

    def test_rejects_too_short(self, rng):
        decoder = KalmanFilterDecoder()
        with pytest.raises(ValueError):
            decoder.fit(rng.standard_normal((2, 2)),
                        rng.standard_normal((2, 3)))

    def test_rejects_1d(self, rng):
        decoder = KalmanFilterDecoder()
        with pytest.raises(ValueError):
            decoder.fit(rng.standard_normal(10),
                        rng.standard_normal((10, 3)))


class TestDecoding:
    def test_decode_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError):
            KalmanFilterDecoder().decode(rng.standard_normal((5, 3)))

    def test_cursor_decoding_beats_chance(self, rng):
        data = make_cursor_dataset(48, 4000, rng, noise_rms=0.2)
        split = 3000
        decoder = KalmanFilterDecoder()
        decoder.fit(data.velocity[:split], data.features[:split])
        score = decoder.score(data.velocity[split:],
                              data.features[split:])
        assert score > 0.5

    def test_decoded_shape(self, rng):
        data = make_cursor_dataset(16, 500, rng)
        decoder = KalmanFilterDecoder()
        decoder.fit(data.velocity, data.features)
        decoded = decoder.decode(data.features)
        assert decoded.shape == data.velocity.shape

    def test_initial_state_honored(self, rng):
        data = make_cursor_dataset(16, 200, rng)
        decoder = KalmanFilterDecoder()
        decoder.fit(data.velocity, data.features)
        start = np.array([5.0, -5.0])
        decoded = decoder.decode(data.features[:1], initial_state=start)
        # One update step pulls toward the observation but the prior shows.
        assert not np.allclose(decoded[0], 0.0)

    def test_filter_smooths_noise(self, rng):
        # On a true linear-dynamical system with heavy observation noise,
        # the filter must beat a memoryless least-squares readout.
        t_len, split = 4000, 3000
        x = np.zeros((t_len, 2))
        for t in range(1, t_len):
            x[t] = 0.95 * x[t - 1] + 0.2 * rng.standard_normal(2)
        h = rng.standard_normal((12, 2))
        y = x @ h.T + 2.0 * rng.standard_normal((t_len, 12))
        decoder = KalmanFilterDecoder()
        decoder.fit(x[:split], y[:split])
        kalman = decoder.decode(y[split:])
        w, *_ = np.linalg.lstsq(y[:split], x[:split], rcond=None)
        naive = y[split:] @ w
        truth = x[split:]
        err_kalman = np.mean((kalman - truth) ** 2)
        err_naive = np.mean((naive - truth) ** 2)
        assert err_kalman < err_naive
