"""Tests for the Wiener filter decoder."""

import numpy as np
import pytest

from repro.decoders.wiener import WienerFilterDecoder
from repro.signals.datasets import make_cursor_dataset


class TestFitting:
    def test_fitted_flag(self, rng):
        decoder = WienerFilterDecoder(n_lags=2)
        assert not decoder.fitted
        decoder.fit(rng.standard_normal((20, 2)),
                    rng.standard_normal((20, 4)))
        assert decoder.fitted

    def test_rejects_mismatched(self, rng):
        with pytest.raises(ValueError):
            WienerFilterDecoder().fit(rng.standard_normal((10, 2)),
                                      rng.standard_normal((11, 3)))

    def test_rejects_too_few_samples(self, rng):
        decoder = WienerFilterDecoder(n_lags=10)
        with pytest.raises(ValueError):
            decoder.fit(rng.standard_normal((5, 2)),
                        rng.standard_normal((5, 3)))

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            WienerFilterDecoder(n_lags=0)
        with pytest.raises(ValueError):
            WienerFilterDecoder(regularization=-1.0)


class TestDecoding:
    def test_decode_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError):
            WienerFilterDecoder().decode(rng.standard_normal((5, 3)))

    def test_recovers_instantaneous_linear_map(self, rng):
        x = rng.standard_normal((1000, 4))
        w = rng.standard_normal((4, 2))
        y = x @ w
        decoder = WienerFilterDecoder(n_lags=1, regularization=1e-8)
        decoder.fit(y, x)
        pred = decoder.decode(x)
        np.testing.assert_allclose(pred[5:], y[5:], atol=1e-6)

    def test_lags_capture_delayed_dependence(self, rng):
        # Target depends on the feature two frames ago.
        features = rng.standard_normal((2000, 3))
        targets = np.roll(features[:, :1], 2, axis=0)
        targets[:2] = 0
        lagged = WienerFilterDecoder(n_lags=4)
        lagged.fit(targets, features)
        instant = WienerFilterDecoder(n_lags=1)
        instant.fit(targets, features)
        err_lagged = np.mean((lagged.decode(features) - targets) ** 2)
        err_instant = np.mean((instant.decode(features) - targets) ** 2)
        assert err_lagged < 0.1 * err_instant

    def test_cursor_decoding_beats_chance(self, rng):
        data = make_cursor_dataset(48, 4000, rng, noise_rms=0.2)
        split = 3000
        decoder = WienerFilterDecoder(n_lags=5)
        decoder.fit(data.velocity[:split], data.features[:split])
        score = decoder.score(data.velocity[split:], data.features[split:])
        assert score > 0.5

    def test_decoded_shape(self, rng):
        decoder = WienerFilterDecoder(n_lags=3)
        decoder.fit(rng.standard_normal((50, 2)),
                    rng.standard_normal((50, 6)))
        assert decoder.decode(rng.standard_normal((20, 6))).shape == (20, 2)
