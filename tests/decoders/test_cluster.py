"""Tests for the unsupervised spike-sorting pipeline."""

import numpy as np
import pytest

from repro.decoders.cluster import (
    extract_snippets,
    kmeans,
    pca_features,
    sort_spikes,
)
from repro.decoders.spikesort import SpikeDetector
from repro.signals.spikes import (
    biphasic_spike_template,
    poisson_spike_train,
    render_spike_waveform,
)

FS = 30e3


def two_unit_recording(rng, duration=4.0):
    """Noise with two units of distinct waveform shapes and amplitudes."""
    n = int(duration * FS)
    signal = 0.6 * rng.standard_normal(n)
    t_fast = biphasic_spike_template(FS, depolarization_s=1.5e-4,
                                     amplitude=9.0)
    t_slow = biphasic_spike_template(FS, depolarization_s=4e-4,
                                     amplitude=5.0)
    truth = {}
    for name, template, rate in (("fast", t_fast, 8.0),
                                 ("slow", t_slow, 8.0)):
        spikes = np.flatnonzero(poisson_spike_train(
            rate, duration, FS, rng, refractory_s=5e-3))
        signal += render_spike_waveform(spikes, template, n)
        truth[name] = spikes
    return signal, truth


class TestSnippets:
    def test_shape_and_alignment(self, rng):
        signal = rng.standard_normal(1000)
        signal[100] = -50.0
        snippets = extract_snippets(signal, np.array([100]), length=16,
                                    pre=4)
        assert snippets.shape == (1, 16)
        assert snippets[0, 4] == -50.0

    def test_edge_padding(self, rng):
        signal = rng.standard_normal(20)
        snippets = extract_snippets(signal, np.array([1, 18]), length=16,
                                    pre=8)
        assert snippets.shape == (2, 16)  # padded, no crash

    def test_rejects_bad_window(self, rng):
        with pytest.raises(ValueError):
            extract_snippets(rng.standard_normal(10), np.array([5]),
                             length=4, pre=4)


class TestPca:
    def test_scores_shape(self, rng):
        snippets = rng.standard_normal((50, 32))
        scores, components = pca_features(snippets, 3)
        assert scores.shape == (50, 3)
        assert components.shape == (3, 32)

    def test_components_orthonormal(self, rng):
        snippets = rng.standard_normal((40, 16))
        _, components = pca_features(snippets, 3)
        np.testing.assert_allclose(components @ components.T, np.eye(3),
                                   atol=1e-9)

    def test_first_component_captures_most_variance(self, rng):
        snippets = rng.standard_normal((100, 8))
        snippets[:, 0] *= 10  # dominant direction
        scores, _ = pca_features(snippets, 2)
        assert scores[:, 0].var() > scores[:, 1].var()

    def test_rejects_too_few_snippets(self, rng):
        with pytest.raises(ValueError):
            pca_features(rng.standard_normal((2, 8)), 3)


class TestKmeans:
    def test_separates_obvious_clusters(self, rng):
        a = rng.standard_normal((40, 2)) + [10, 0]
        b = rng.standard_normal((40, 2)) - [10, 0]
        features = np.vstack([a, b])
        labels, centroids = kmeans(features, 2, rng)
        assert len(np.unique(labels[:40])) == 1
        assert len(np.unique(labels[40:])) == 1
        assert labels[0] != labels[40]
        assert centroids.shape == (2, 2)

    def test_k_one_single_cluster(self, rng):
        labels, _ = kmeans(rng.standard_normal((20, 3)), 1, rng)
        assert np.all(labels == 0)

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ValueError):
            kmeans(rng.standard_normal((5, 2)), 6, rng)


class TestSortSpikes:
    def test_recovers_two_units(self, rng):
        signal, truth = two_unit_recording(rng)
        detected = SpikeDetector(refractory_samples=60).detect(signal)
        result = sort_spikes(signal, detected, n_units=2, rng=rng)
        assert result.n_units == 2
        # Units must differ in waveform: template peak amplitudes apart.
        peaks = np.sort(np.abs(result.templates).max(axis=1))
        assert peaks[1] > 1.3 * peaks[0]

    def test_cluster_assignment_matches_ground_truth(self, rng):
        signal, truth = two_unit_recording(rng)
        detected = SpikeDetector(refractory_samples=60).detect(signal)
        result = sort_spikes(signal, detected, n_units=2, rng=rng)
        # Map each detection to its true unit by proximity.
        true_labels = []
        for idx in detected:
            d_fast = np.min(np.abs(truth["fast"] - idx))
            d_slow = np.min(np.abs(truth["slow"] - idx))
            true_labels.append(0 if d_fast < d_slow else 1)
        true_labels = np.array(true_labels)
        agreement = np.mean(result.labels == true_labels)
        assert max(agreement, 1 - agreement) > 0.8  # up to label swap

    def test_rejects_too_few_spikes(self, rng):
        with pytest.raises(ValueError):
            sort_spikes(rng.standard_normal(100), np.array([10]), 2, rng)
