"""Tests for the shrinkage-LDA classifier."""

import numpy as np
import pytest

from repro.decoders.lda import LdaClassifier


def gaussian_classes(rng, n_per_class=200, separation=3.0, d=8,
                     n_classes=3):
    means = rng.standard_normal((n_classes, d)) * separation
    features, labels = [], []
    for c in range(n_classes):
        features.append(means[c] + rng.standard_normal((n_per_class, d)))
        labels.append(np.full(n_per_class, c))
    return np.vstack(features), np.concatenate(labels)


class TestFitting:
    def test_fitted_flag(self, rng):
        clf = LdaClassifier()
        assert not clf.fitted
        x, y = gaussian_classes(rng)
        clf.fit(x, y)
        assert clf.fitted

    def test_rejects_single_class(self, rng):
        clf = LdaClassifier()
        with pytest.raises(ValueError):
            clf.fit(rng.standard_normal((10, 3)), np.zeros(10))

    def test_rejects_mismatched(self, rng):
        with pytest.raises(ValueError):
            LdaClassifier().fit(rng.standard_normal((10, 3)),
                                np.zeros(9))

    def test_rejects_bad_shrinkage(self):
        with pytest.raises(ValueError):
            LdaClassifier(shrinkage=1.5)


class TestClassification:
    def test_separable_classes_high_accuracy(self, rng):
        x, y = gaussian_classes(rng, separation=4.0)
        clf = LdaClassifier()
        clf.fit(x, y)
        assert clf.score(x, y) > 0.95

    def test_generalizes_to_held_out(self, rng):
        x, y = gaussian_classes(rng, n_per_class=300, separation=3.0)
        order = rng.permutation(len(x))
        x, y = x[order], y[order]
        split = 600
        clf = LdaClassifier()
        clf.fit(x[:split], y[:split])
        assert clf.score(x[split:], y[split:]) > 0.9

    def test_predict_returns_known_classes(self, rng):
        x, y = gaussian_classes(rng)
        clf = LdaClassifier()
        clf.fit(x, y)
        assert set(clf.predict(x)) <= set(np.unique(y))

    def test_decision_scores_shape(self, rng):
        x, y = gaussian_classes(rng, n_classes=4)
        clf = LdaClassifier()
        clf.fit(x, y)
        assert clf.decision_function(x[:7]).shape == (7, 4)

    def test_predict_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError):
            LdaClassifier().predict(rng.standard_normal((3, 2)))

    def test_shrinkage_rescues_singular_regime(self, rng):
        # More features than samples: full covariance is singular but
        # shrinkage keeps the classifier usable.
        x, y = gaussian_classes(rng, n_per_class=10, d=50,
                                separation=5.0, n_classes=2)
        clf = LdaClassifier(shrinkage=0.5)
        clf.fit(x, y)
        assert clf.score(x, y) > 0.9

    def test_priors_break_ties(self, rng):
        # With overlapping classes and imbalanced data, the majority
        # class dominates ambiguous samples.
        x0 = rng.standard_normal((400, 2))
        x1 = rng.standard_normal((40, 2)) + 0.1
        x = np.vstack([x0, x1])
        y = np.concatenate([np.zeros(400), np.ones(40)])
        clf = LdaClassifier()
        clf.fit(x, y)
        preds = clf.predict(rng.standard_normal((200, 2)))
        assert np.mean(preds == 0) > 0.7


class TestWithSpectralFeatures:
    def test_classifies_band_states(self, rng):
        # Two "mental states": alpha-dominant vs gamma-dominant epochs —
        # the classic discrete-BCI pipeline with our spectral features.
        from repro.signals.spectral import band_power_features
        fs, n_epochs = 1000.0, 30
        t = np.arange(int(fs)) / fs
        features, labels = [], []
        for i in range(n_epochs):
            noise = 0.5 * rng.standard_normal((2, t.size))
            if i % 2 == 0:
                sig = np.sin(2 * np.pi * 10.0 * t)
            else:
                sig = np.sin(2 * np.pi * 60.0 * t)
            data = noise + sig
            features.append(band_power_features(data, fs).reshape(-1))
            labels.append(i % 2)
        features = np.log(np.array(features) + 1e-12)
        labels = np.array(labels)
        clf = LdaClassifier(shrinkage=0.2)
        clf.fit(features[:20], labels[:20])
        assert clf.score(features[20:], labels[20:]) == 1.0
