"""Tests for spike detection, template matching, and channel selection."""

import numpy as np
import pytest

from repro.decoders.spikesort import (
    SpikeDetector,
    TemplateMatcher,
    channel_activity_ranking,
    mad_noise_estimate,
    select_active_channels,
)
from repro.signals.spikes import (
    biphasic_spike_template,
    poisson_spike_train,
    render_spike_waveform,
)

FS = 30e3


def noisy_channel(rng, rate_hz=20.0, amplitude=8.0, duration=2.0):
    """White noise with embedded biphasic spikes."""
    n = int(duration * FS)
    noise = rng.standard_normal(n)
    template = biphasic_spike_template(FS, amplitude=amplitude)
    spikes = np.flatnonzero(
        poisson_spike_train(rate_hz, duration, FS, rng, refractory_s=3e-3))
    return noise + render_spike_waveform(spikes, template, n), spikes


class TestNoiseEstimate:
    def test_matches_sigma_for_gaussian(self, rng):
        sigma = mad_noise_estimate(2.5 * rng.standard_normal(100_000))
        assert sigma == pytest.approx(2.5, rel=0.03)

    def test_robust_to_spikes(self, rng):
        signal, _ = noisy_channel(rng, rate_hz=30.0, amplitude=20.0)
        assert mad_noise_estimate(signal) == pytest.approx(1.0, rel=0.1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mad_noise_estimate(np.array([]))


class TestSpikeDetector:
    def test_finds_most_embedded_spikes(self, rng):
        signal, truth = noisy_channel(rng, rate_hz=10.0, amplitude=10.0)
        detected = SpikeDetector().detect(signal)
        # The biphasic trough sits ~12 samples after spike onset, so
        # threshold crossings lag the ground-truth indices slightly.
        matched = sum(1 for t in truth
                      if np.any(np.abs(detected - t) <= 15))
        assert matched >= 0.8 * len(truth)

    def test_few_false_positives_on_pure_noise(self, rng):
        noise = rng.standard_normal(int(FS))
        detected = SpikeDetector(threshold_sigmas=5.0).detect(noise)
        assert len(detected) < 10

    def test_refractory_thins_detections(self, rng):
        signal, _ = noisy_channel(rng, rate_hz=100.0, amplitude=10.0)
        dense = SpikeDetector(refractory_samples=0).detect(signal)
        sparse = SpikeDetector(refractory_samples=150).detect(signal)
        assert len(sparse) <= len(dense)

    def test_detect_all_shape(self, rng):
        data = rng.standard_normal((4, 1000))
        assert len(SpikeDetector().detect_all(data)) == 4

    def test_detect_all_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            SpikeDetector().detect_all(rng.standard_normal(100))

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            SpikeDetector(threshold_sigmas=0.0)


class TestTemplateMatcher:
    def test_classifies_own_templates(self, rng):
        t1 = biphasic_spike_template(FS, depolarization_s=2e-4)
        t2 = biphasic_spike_template(FS, depolarization_s=4e-4)
        matcher = TemplateMatcher(np.stack([t1, t2]))
        unit, similarity = matcher.classify(t2 + 0.05 * rng.standard_normal(
            t2.size))
        assert unit == 1
        assert similarity > 0.9

    def test_similarity_range(self, rng):
        matcher = TemplateMatcher(rng.standard_normal((3, 32)))
        _, similarity = matcher.classify(rng.standard_normal(32))
        assert -1.0 <= similarity <= 1.0

    def test_zero_snippet(self):
        matcher = TemplateMatcher(np.ones((1, 8)))
        unit, similarity = matcher.classify(np.zeros(8))
        assert similarity == 0.0

    def test_classify_events_pads_tail(self, rng):
        matcher = TemplateMatcher(rng.standard_normal((2, 16)))
        signal = rng.standard_normal(20)
        events = matcher.classify_events(signal, np.array([10]))
        assert len(events) == 1

    def test_rejects_zero_template(self):
        with pytest.raises(ValueError):
            TemplateMatcher(np.zeros((1, 8)))

    def test_rejects_wrong_snippet_length(self, rng):
        matcher = TemplateMatcher(rng.standard_normal((1, 16)))
        with pytest.raises(ValueError):
            matcher.classify(rng.standard_normal(8))


class TestChannelSelection:
    def _mixed_population(self, rng, n_active=4, n_silent=12):
        rows = []
        for _ in range(n_active):
            signal, _ = noisy_channel(rng, rate_hz=30.0, amplitude=10.0,
                                      duration=1.0)
            rows.append(signal)
        for _ in range(n_silent):
            rows.append(rng.standard_normal(int(FS)))
        return np.stack(rows)

    def test_active_channels_rank_first(self, rng):
        data = self._mixed_population(rng)
        ranking = channel_activity_ranking(data)
        assert set(ranking[:4]) == {0, 1, 2, 3}

    def test_select_returns_sorted_subset(self, rng):
        data = self._mixed_population(rng)
        kept = select_active_channels(data, 4)
        assert list(kept) == sorted(kept)
        assert set(kept) == {0, 1, 2, 3}

    def test_select_all_channels(self, rng):
        data = self._mixed_population(rng, n_active=2, n_silent=2)
        assert len(select_active_channels(data, 4)) == 4

    def test_rejects_bad_count(self, rng):
        data = rng.standard_normal((4, 100))
        with pytest.raises(ValueError):
            select_active_channels(data, 0)
        with pytest.raises(ValueError):
            select_active_channels(data, 5)
