"""Golden values for the per-driver seed derivation.

Cache keys (:mod:`repro.cache.keys`) fold the derived seed into every
whole-driver entry, so the sha256 derivation in
:func:`repro.perf.seeds.derive_driver_seed` must stay stable across
platforms, Python versions, and refactors.  These constants were
computed once from the definition (``sha256(f"{base}:{name}")``, first
8 bytes big-endian, top bit cleared) and pin it forever: a change that
shifts any of them would silently invalidate every existing cache and
break cross-run reproducibility claims.
"""

from __future__ import annotations

import hashlib

from repro.perf.seeds import derive_driver_seed

#: (base seed, driver name) -> expected derived seed.
GOLDEN = {
    (7, "table1"): 2255781951387248460,
    (7, "fig5"): 2713030485994543653,
    (7, "fig8"): 146177321066986236,
    (42, "fig5"): 278786148893265736,
    (0, "fig4"): 4458548768354279816,
    (123456789, "frontier"): 1572863151873299928,
}


class TestGoldenDerivedSeeds:
    def test_pinned_values(self):
        for (base, name), expected in GOLDEN.items():
            assert derive_driver_seed(base, name) == expected, (base,
                                                                name)

    def test_matches_spelled_out_construction(self):
        # Independent re-derivation from the documented formula.
        for (base, name), expected in GOLDEN.items():
            digest = hashlib.sha256(f"{base}:{name}".encode()).digest()
            value = int.from_bytes(digest[:8], "big") >> 1
            assert value == expected

    def test_in_numpy_seed_range(self):
        for expected in GOLDEN.values():
            assert 0 <= expected < 2**63
