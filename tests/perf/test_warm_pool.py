"""Warm-worker pool determinism and reuse (repro.perf.pool).

The contracts added with the zero-copy engine: one persistent pool
serves many ``run_parallel`` calls (warm path), a worker that runs
several drivers back to back leaks no RNG or observability state
between them, and warm results are byte-identical to both a cold pool's
and the serial engine's.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.experiments import ALL_EXPERIMENTS, run_module
from repro.perf import run_parallel
from repro.perf.pool import WarmPool, get_pool, shutdown_pool


@pytest.fixture(autouse=True)
def _fresh_pool():
    """Each test starts and ends without a persistent pool.

    Workers inherit the parent's state at spawn (fork), so a pool left
    over from another test would not see this test's monkeypatching —
    and a pool this test leaves behind would leak that the other way.
    """
    shutdown_pool()
    yield
    shutdown_pool()


def _csv_bytes(directory):
    return {path.name: path.read_bytes()
            for path in sorted(directory.glob("*.csv"))}


def _run_serial(modules, directory, seed):
    """The serial engine's path for a driver subset."""
    for module in modules:
        run_module(module, seed=seed).save_csv(directory)


class TestPoolReuse:
    def test_get_pool_reuses_matching_size(self):
        pool = get_pool(2)
        assert get_pool(2) is pool
        assert pool.jobs == 2

    def test_get_pool_resizes(self):
        pool = get_pool(2)
        resized = get_pool(3)
        assert resized is not pool
        assert pool.closed
        assert resized.jobs == 3

    def test_shutdown_pool_closes(self):
        pool = get_pool(2)
        shutdown_pool()
        assert pool.closed

    def test_workers_persist_across_runs(self, tmp_path):
        modules = list(ALL_EXPERIMENTS[:4])
        run_parallel(modules, output_dir=tmp_path / "a", seed=5, jobs=2)
        pool = get_pool(2)
        pids_first = {worker.proc.pid for worker in pool._workers}
        run_parallel(modules, output_dir=tmp_path / "b", seed=5, jobs=2)
        assert get_pool(2) is pool
        pids_second = {worker.proc.pid for worker in pool._workers}
        assert pids_first == pids_second  # nobody respawned
        assert pool.tasks_completed == 2 * len(modules)
        assert sum(worker.served for worker in pool._workers) == \
            pool.tasks_completed


class TestWarmDeterminism:
    def test_warm_worker_matches_serial_and_cold(self, tmp_path):
        """A worker that has already served drivers produces the same
        bytes as a fresh one and as the serial engine — no RNG bleed
        between tasks on a reused worker."""
        modules = list(ALL_EXPERIMENTS[:4])
        serial = tmp_path / "serial"
        cold = tmp_path / "cold"
        warm = tmp_path / "warm"
        _run_serial(modules, serial, seed=11)
        # Cold: fresh pool, first task each worker ever serves.
        run_parallel(modules, output_dir=cold, seed=11, jobs=2)
        # Warm: same pool, every worker has now served >= 1 task; with
        # 4 drivers on 2 workers each worker serves several in a row.
        run_parallel(modules, output_dir=warm, seed=11, jobs=2)
        assert _csv_bytes(serial) == _csv_bytes(cold) == _csv_bytes(warm)

    def test_two_drivers_on_one_worker_byte_identical(self, tmp_path):
        """Force serialization through a single warm worker: driver B
        runs on the exact process that just ran driver A."""
        modules = list(ALL_EXPERIMENTS[:3])
        serial = tmp_path / "serial"
        single = tmp_path / "single"
        _run_serial(modules, serial, seed=23)
        run_parallel(modules, output_dir=single, seed=23, jobs=2)
        pool = get_pool(2)
        assert max(worker.served for worker in pool._workers) >= 2
        assert _csv_bytes(serial) == _csv_bytes(single)

    def test_warm_events_match_cold_events(self, tmp_path):
        modules = list(ALL_EXPERIMENTS[:3])

        def timeline(directory):
            obs.reset_all()
            obs.enable_all()
            try:
                run_parallel(modules, output_dir=directory, seed=7,
                             jobs=2)
                path = obs.EVENTS.write_jsonl(directory / "events.jsonl")
                return path.read_bytes()
            finally:
                obs.disable_all()
                obs.reset_all()

        cold = timeline(tmp_path / "cold")
        warm = timeline(tmp_path / "warm")
        assert cold == warm


class TestPoolErrors:
    def test_submit_after_shutdown_rejected(self):
        pool = get_pool(2)
        shutdown_pool()
        with pytest.raises(RuntimeError):
            pool.submit({"name": "fig5"})

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            WarmPool(0)
