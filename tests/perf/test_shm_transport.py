"""Tests for the shared-memory result transport (repro.perf.shm).

The transport's contracts: payloads round-trip exactly (values *and*
Python types — an int column must not come back float), the shm/pickle
mode decision and the event-visible sizes are deterministic functions of
the payload, and every segment's life ends inside
:func:`~repro.perf.shm.unpack_payload` — nothing is left for the
resource tracker to complain about.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory
from pathlib import Path

import pytest

from repro.experiments.base import ExperimentResult
from repro.perf.shm import (
    SHM_MIN_BYTES,
    pack_payload,
    reclaim_segment,
    segment_name,
    split_rows,
    unpack_payload,
)

_COUNTER = iter(range(10_000))


def _segment() -> str:
    """A collision-free segment name for one test."""
    return segment_name(f"test-{os.getpid():x}", next(_COUNTER))


def _result(rows, **kwargs) -> ExperimentResult:
    defaults = dict(name="fig_test", title="transport test",
                    summary={"n": len(rows)}, seed=7,
                    derived_seed=123456, duration_s=0.5)
    defaults.update(kwargs)
    return ExperimentResult(rows=rows, **defaults)


def _payload(rows, spans=None, metrics=None, events=None, **kwargs):
    return {"name": "fig_test", "pid": os.getpid(),
            "result": _result(rows, **kwargs),
            "spans": spans or [], "metrics": metrics,
            "events": events or []}


class TestSplitRows:
    def test_uniform_numeric_columns_pack(self):
        rows = [{"i": 1, "f": 0.5, "b": True, "s": "x"},
                {"i": 2, "f": 1.5, "b": False, "s": "y"}]
        columns, rest_rows, row_keys = split_rows(rows)
        assert sorted(name for name, _, _ in columns) == ["b", "f", "i"]
        kinds = {name: kind for name, kind, _ in columns}
        assert kinds == {"i": "int", "f": "float", "b": "bool"}
        assert rest_rows == [{"s": "x"}, {"s": "y"}]
        assert row_keys == ["i", "f", "b", "s"]

    def test_mixed_int_float_column_stays_pickled(self):
        # Packing 1 and 0.5 into one float array would silently turn
        # the int into a float on round-trip.
        columns, rest_rows, _ = split_rows([{"v": 1}, {"v": 0.5}])
        assert columns == []
        assert rest_rows == [{"v": 1}, {"v": 0.5}]

    def test_none_and_strings_stay_pickled(self):
        columns, rest_rows, _ = split_rows(
            [{"v": None, "w": "a"}, {"v": None, "w": "b"}])
        assert columns == []

    def test_heterogeneous_keys_disable_packing(self):
        columns, rest_rows, _ = split_rows([{"a": 1}, {"b": 2}])
        assert columns == []
        assert rest_rows == [{"a": 1}, {"b": 2}]

    def test_huge_int_stays_pickled(self):
        columns, _, _ = split_rows([{"v": 2 ** 80}, {"v": 1}])
        assert columns == []

    def test_empty_rows(self):
        assert split_rows([]) == ([], [], [])


class TestRoundTrip:
    def test_shm_round_trip_preserves_values_and_types(self):
        rows = [{"i": index, "f": index * 0.25, "b": index % 2 == 0,
                 "label": f"row{index}", "maybe": None}
                for index in range(50)]
        payload = _payload(rows, cache_info={"hit": False, "key": "k"})
        header = pack_payload(payload, segment=_segment(), min_bytes=0)
        assert header["transport"] == "shm"
        out = unpack_payload(header)
        result = out["result"]
        assert result.rows == rows
        for row in result.rows:
            assert type(row["i"]) is int
            assert type(row["f"]) is float
            assert type(row["b"]) is bool
        assert result.name == "fig_test"
        assert result.summary == {"n": 50}
        assert result.seed == 7
        assert result.derived_seed == 123456
        assert result.cache_info == {"hit": False, "key": "k"}

    def test_pickle_mode_for_small_untelemetered_payloads(self):
        payload = _payload([{"v": 1}])
        header = pack_payload(payload, segment=_segment(),
                              min_bytes=SHM_MIN_BYTES)
        assert header["transport"] == "pickle"
        assert unpack_payload(header)["result"].rows == [{"v": 1}]

    def test_telemetry_forces_shm(self):
        # Telemetry blocks always travel by segment so the pipe only
        # ever carries the small header.
        payload = _payload([{"v": 1}],
                           events=[{"seq": 0, "driver": "fig_test",
                                    "kind": "metric", "name": "m",
                                    "attrs": {}}])
        header = pack_payload(payload, segment=_segment(),
                              min_bytes=SHM_MIN_BYTES)
        assert header["transport"] == "shm"
        out = unpack_payload(header)
        assert out["events"][0]["name"] == "m"

    def test_none_segment_forces_pickle(self):
        rows = [{"v": float(index)} for index in range(10_000)]
        header = pack_payload(_payload(rows), segment=None, min_bytes=0)
        assert header["transport"] == "pickle"

    def test_telemetry_blocks_round_trip(self):
        spans = [{"name": "experiment.fig_test", "attrs": {}}]
        metrics = {"counters": {"x": 1.0}}
        events = [{"seq": 0, "driver": "fig_test", "kind": "cache",
                   "name": "driver.miss", "attrs": {"key": "abc"}}]
        payload = _payload([{"v": 1}], spans=spans, metrics=metrics,
                           events=events)
        out = unpack_payload(pack_payload(payload, segment=_segment(),
                                          min_bytes=0))
        assert out["spans"] == spans
        assert out["metrics"] == metrics
        assert out["events"] == events

    def test_cached_csv_text_round_trips(self):
        payload = _payload([{"v": 1}])
        payload["result"].cached_csv_text = "v\n1\n"
        out = unpack_payload(pack_payload(payload, segment=_segment(),
                                          min_bytes=0))
        assert out["result"].cached_csv_text == "v\n1\n"


class TestDeterminism:
    def test_event_visible_sizes_are_repeatable(self):
        rows = [{"i": index, "f": index * 0.5} for index in range(100)]
        headers = [pack_payload(_payload(rows), segment=_segment(),
                                min_bytes=0) for _ in range(2)]
        first, second = (header["stats"] for header in headers)
        for key in ("mode", "rows", "packed_columns", "column_bytes",
                    "result_bytes"):
            assert first[key] == second[key]
        for header in headers:  # consume (and unlink) both segments
            unpack_payload(header)

    def test_mode_threshold_uses_column_bytes(self):
        rows = [{"v": float(index)} for index in range(10)]
        small = pack_payload(_payload(rows), segment=_segment(),
                             min_bytes=10 * 8 + 1)
        assert small["transport"] == "pickle"
        forced = pack_payload(_payload(rows), segment=_segment(),
                              min_bytes=10 * 8)
        assert forced["transport"] == "shm"
        unpack_payload(forced)


class TestLifecycle:
    def test_segment_gone_after_unpack(self):
        segment = _segment()
        rows = [{"v": float(index)} for index in range(100)]
        header = pack_payload(_payload(rows), segment=segment,
                              min_bytes=0)
        unpack_payload(header)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment)

    def test_no_dev_shm_residue(self):
        dev_shm = Path("/dev/shm")
        if not dev_shm.is_dir():
            pytest.skip("no /dev/shm on this platform")
        segment = _segment()
        rows = [{"v": float(index)} for index in range(100)]
        header = pack_payload(_payload(rows), segment=segment,
                              min_bytes=0)
        assert (dev_shm / segment).exists()
        unpack_payload(header)
        assert not (dev_shm / segment).exists()

    def test_reclaim_segment(self):
        segment = _segment()
        shm = shared_memory.SharedMemory(name=segment, create=True,
                                         size=64)
        shm.close()
        assert reclaim_segment(segment) is True
        assert reclaim_segment(segment) is False
