"""Tests for the parallel experiment engine and per-driver seeding.

The headline contract: ``run_all(jobs=N, seed=S)`` writes CSVs
byte-identical to a serial ``run_all(seed=S)`` — the per-driver seed
derivation makes artifacts a function of (seed, driver name) only, never
of scheduling.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs
from repro.experiments import ALL_EXPERIMENTS, experiment_name, run_all
from repro.perf import derive_driver_seed, resolve_jobs, run_parallel


class TestDeriveDriverSeed:
    def test_none_passes_through(self):
        assert derive_driver_seed(None, "fig5") is None

    def test_deterministic(self):
        assert (derive_driver_seed(42, "fig5")
                == derive_driver_seed(42, "fig5"))

    def test_distinct_per_driver_and_seed(self):
        seeds = {derive_driver_seed(42, name)
                 for name in ("fig5", "fig7", "fig8", "table1")}
        assert len(seeds) == 4
        assert derive_driver_seed(42, "fig5") != derive_driver_seed(
            43, "fig5")

    def test_fits_numpy_seed_range(self):
        value = derive_driver_seed(2**31, "fig7")
        assert 0 <= value < 2**63
        np.random.default_rng(value)  # must be a legal seed


class TestResolveJobs:
    def test_explicit_count(self):
        assert resolve_jobs(3) == 3

    def test_zero_and_none_mean_all_cpus(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


def _csv_bytes(directory):
    return {path.name: path.read_bytes()
            for path in sorted(directory.glob("*.csv"))}


class TestParallelRunAll:
    def test_parallel_csvs_byte_identical_to_serial(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = run_all(output_dir=serial_dir, seed=7)
        parallel = run_all(output_dir=parallel_dir, seed=7, jobs=4)

        assert _csv_bytes(serial_dir) == _csv_bytes(parallel_dir)
        assert len(_csv_bytes(serial_dir)) == len(ALL_EXPERIMENTS)
        assert [r.title for r in serial] == [r.title for r in parallel]
        assert all(r.seed == 7 for r in serial + parallel)
        assert ([r.derived_seed for r in serial]
                == [r.derived_seed for r in parallel])

    def test_results_come_back_in_input_order(self, tmp_path):
        modules = list(ALL_EXPERIMENTS[:3])
        results = run_parallel(modules, output_dir=tmp_path, jobs=2,
                               seed=11)
        expected = [derive_driver_seed(11, experiment_name(m))
                    for m in modules]
        assert [r.derived_seed for r in results] == expected

    def test_worker_events_adopted_in_submission_order(self, tmp_path):
        modules = list(ALL_EXPERIMENTS[:3])
        obs.enable_all()  # events ride on the trace/metrics substrates
        try:
            run_parallel(modules, output_dir=tmp_path, jobs=2, seed=5)
            drivers = [e.driver for e in obs.EVENTS.events
                       if e.driver != ""]
            # each driver's block is contiguous and in submission order
            order = list(dict.fromkeys(drivers))
            assert order == [experiment_name(m) for m in modules]
            seqs = [e.seq for e in obs.EVENTS.events]
            assert seqs == list(range(len(seqs)))
        finally:
            obs.disable_all()
            obs.reset_all()

    def test_worker_spans_and_metrics_merge(self, tmp_path):
        obs.enable_all()
        try:
            run_parallel(list(ALL_EXPERIMENTS[:2]), output_dir=tmp_path,
                         jobs=2, seed=3)
            roots = obs.TRACER.roots
            names = {root.name for root in roots}
            assert "experiments.run_parallel" in names
            worker_roots = [root for root in roots
                            if root.name != "experiments.run_parallel"]
            assert worker_roots
            assert all("worker_pid" in root.attrs
                       for root in worker_roots)
            snapshot = obs.REGISTRY.snapshot()
            assert snapshot["counters"].get(
                "experiments.parallel_runs") == 2
        finally:
            obs.disable_all()
            obs.reset_all()


class TestEventTimelineDeterminism:
    """ISSUE 6 headline property: fixed-seed event timelines are
    byte-identical across repetitions within a mode, and serial vs
    parallel runs show zero driver-scoped deltas."""

    def _timeline(self, tmp_path, name, seed, jobs):
        obs.reset_all()
        obs.enable_all()  # events ride on the trace/metrics substrates
        try:
            run_all(output_dir=tmp_path / name, seed=seed, jobs=jobs)
            return obs.EVENTS.to_jsonl()
        finally:
            obs.disable_all()
            obs.reset_all()

    def test_jobs4_timeline_byte_identical_across_runs(self, tmp_path):
        first = self._timeline(tmp_path, "p1", seed=7, jobs=4)
        second = self._timeline(tmp_path, "p2", seed=7, jobs=4)
        assert first == second
        assert first  # non-empty: the drivers actually emitted

    def test_serial_vs_parallel_diff_is_zero_deltas(self, tmp_path):
        from repro.obs.analyze import diff_runs
        serial = self._timeline(tmp_path, "s", seed=7, jobs=None)
        parallel = self._timeline(tmp_path, "p", seed=7, jobs=4)
        serial_events = [json.loads(line)
                         for line in serial.splitlines()]
        parallel_events = [json.loads(line)
                           for line in parallel.splitlines()]
        report = diff_runs(serial_events, parallel_events)
        assert report["equal"], report
