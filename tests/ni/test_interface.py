"""Tests for the NeuralInterface facade and Eq. 6 throughput."""

import numpy as np
import pytest

from repro.ni.adc import AdcModel
from repro.ni.geometry import GridArray
from repro.ni.interface import NeuralInterface, sensing_throughput


class TestSensingThroughput:
    def test_paper_example(self):
        # Section 5.1: n=1024, d=10, f=8 kHz -> ~82 Mbps.
        assert sensing_throughput(1024, 10, 8e3) == pytest.approx(81.92e6)

    def test_linear_in_channels(self):
        assert sensing_throughput(2048, 10, 8e3) == pytest.approx(
            2 * sensing_throughput(1024, 10, 8e3))

    def test_linear_in_bits(self):
        assert sensing_throughput(1024, 16, 8e3) == pytest.approx(
            1.6 * sensing_throughput(1024, 10, 8e3))

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            sensing_throughput(0, 10, 8e3)
        with pytest.raises(ValueError):
            sensing_throughput(10, 0, 8e3)
        with pytest.raises(ValueError):
            sensing_throughput(10, 10, 0.0)


def _make_interface(rows: int = 4, cols: int = 4) -> NeuralInterface:
    return NeuralInterface(
        geometry=GridArray(rows=rows, cols=cols, pitch_m=20e-6),
        adc=AdcModel(bits=10, sampling_rate_hz=8e3))


class TestNeuralInterface:
    def test_channel_count_from_geometry(self):
        assert _make_interface(8, 8).n_channels == 64

    def test_throughput_matches_eq6(self):
        ni = _make_interface(8, 8)
        assert ni.throughput_bps == pytest.approx(64 * 10 * 8e3)

    def test_acquire_digitizes(self, rng):
        ni = _make_interface()
        analog = rng.uniform(-1, 1, size=(16, 50))
        codes = ni.acquire(analog)
        assert codes.dtype == np.int32
        assert codes.shape == (16, 50)

    def test_acquire_rejects_wrong_channels(self, rng):
        ni = _make_interface()
        with pytest.raises(ValueError):
            ni.acquire(rng.uniform(-1, 1, size=(5, 50)))

    def test_acquire_rejects_wrong_rank(self, rng):
        ni = _make_interface()
        with pytest.raises(ValueError):
            ni.acquire(rng.uniform(-1, 1, size=16))

    def test_frame_bits(self):
        ni = _make_interface()
        assert ni.frame_bits(100) == 16 * 100 * 10

    def test_frame_bits_rejects_non_positive(self):
        with pytest.raises(ValueError):
            _make_interface().frame_bits(0)

    def test_sensing_power_scales_with_channels(self):
        small = _make_interface(2, 2)
        large = _make_interface(4, 4)
        assert large.sensing_power_w == pytest.approx(
            4 * small.sensing_power_w)
