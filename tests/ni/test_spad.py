"""Tests for the SPAD neural-imager model."""

import numpy as np
import pytest

from repro.ni.spad import SpadImager


def imager(**kwargs) -> SpadImager:
    defaults = dict(n_pixels=1024)
    defaults.update(kwargs)
    return SpadImager(**defaults)


class TestStatistics:
    def test_mean_counts(self):
        spad = imager(frame_rate_hz=1e3, signal_rate_hz=5e4,
                      dark_rate_hz=2e3)
        assert spad.mean_signal_counts == pytest.approx(50.0)
        assert spad.mean_dark_counts == pytest.approx(2.0)

    def test_shot_noise_snr(self):
        spad = imager(frame_rate_hz=1e3, signal_rate_hz=5e4,
                      dark_rate_hz=2e3)
        assert spad.shot_noise_snr == pytest.approx(50 / np.sqrt(52))

    def test_snr_improves_with_longer_frames(self):
        fast = imager(frame_rate_hz=8e3)
        slow = fast.with_frame_rate(1e3)
        assert slow.shot_noise_snr > fast.shot_noise_snr

    def test_zero_light_zero_snr(self):
        dark = imager(signal_rate_hz=0.0, dark_rate_hz=0.0)
        assert dark.shot_noise_snr == 0.0

    def test_capture_frame_poisson_mean(self, rng):
        spad = imager(n_pixels=4096, counter_bits=12)
        counts = spad.capture_frame(rng)
        expected = spad.mean_signal_counts + spad.mean_dark_counts
        assert counts.mean() == pytest.approx(expected, rel=0.05)

    def test_capture_respects_activity_map(self, rng):
        spad = imager(n_pixels=2, counter_bits=12, frame_rate_hz=100.0)
        activity = np.array([0.0, 2.0])
        counts = np.array([spad.capture_frame(rng, activity)
                           for _ in range(200)])
        assert counts[:, 1].mean() > 5 * max(1.0, counts[:, 0].mean())

    def test_counter_saturation(self, rng):
        spad = imager(counter_bits=4, frame_rate_hz=100.0)  # mean >> 15
        counts = spad.capture_frame(rng)
        assert counts.max() <= 15
        assert spad.saturation_probability > 0.99

    def test_wide_counter_rarely_saturates(self):
        spad = imager(counter_bits=12, frame_rate_hz=1e3)
        assert spad.saturation_probability < 1e-6


class TestThroughputAndPower:
    def test_throughput_formula(self):
        spad = imager(n_pixels=49152, counter_bits=8, frame_rate_hz=1e3)
        assert spad.throughput_bps == pytest.approx(49152 * 8 * 1e3)

    def test_reduced_frame_rate_reduces_throughput(self):
        # The paper's configurable-sampling trade-off for 49k-pixel NIs.
        spad = imager(n_pixels=49152, frame_rate_hz=8e3)
        slow = spad.with_frame_rate(1e3)
        assert slow.throughput_bps == pytest.approx(
            spad.throughput_bps / 8)

    def test_pixel_power_nanowatt_regime(self):
        # Published SPAD arrays report ~hundreds of nW/pixel.
        power = imager().pixel_power_w()
        assert 1e-9 < power < 1e-6

    def test_array_power_linear(self):
        small = imager(n_pixels=1024)
        large = imager(n_pixels=4096)
        assert large.sensing_power_w() == pytest.approx(
            4 * small.sensing_power_w())

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            imager(n_pixels=0)
        with pytest.raises(ValueError):
            imager(counter_bits=0)
        with pytest.raises(ValueError):
            imager(signal_rate_hz=-1.0)

    def test_activity_validation(self, rng):
        spad = imager(n_pixels=4)
        with pytest.raises(ValueError):
            spad.capture_frame(rng, np.ones(3))
        with pytest.raises(ValueError):
            spad.capture_frame(rng, -np.ones(4))
