"""Tests for the NEF-based analog front-end power model."""

import pytest

from repro.ni.afe import AnalogFrontEnd, afe_channel_power, nef_input_current


class TestNefCurrent:
    def test_typical_magnitude(self):
        # NEF 3, 5 uVrms, 5 kHz bandwidth -> microamp-scale current.
        current = nef_input_current(3.0, 5e-6, 5e3)
        assert 1e-8 < current < 1e-4

    def test_quadratic_in_nef(self):
        low = nef_input_current(2.0, 5e-6, 5e3)
        high = nef_input_current(4.0, 5e-6, 5e3)
        assert high == pytest.approx(4.0 * low)

    def test_linear_in_bandwidth(self):
        one = nef_input_current(3.0, 5e-6, 1e3)
        ten = nef_input_current(3.0, 5e-6, 10e3)
        assert ten == pytest.approx(10.0 * one)

    def test_inverse_square_in_noise(self):
        strict = nef_input_current(3.0, 2.5e-6, 5e3)
        relaxed = nef_input_current(3.0, 5e-6, 5e3)
        assert strict == pytest.approx(4.0 * relaxed)

    def test_rejects_sub_unity_nef(self):
        with pytest.raises(ValueError):
            nef_input_current(0.5, 5e-6, 5e3)

    def test_rejects_non_positive_noise(self):
        with pytest.raises(ValueError):
            nef_input_current(3.0, 0.0, 5e3)


class TestChannelPower:
    def test_adc_overhead_adds(self):
        bare = afe_channel_power(3.0, 5e-6, 5e3, adc_overhead=0.0)
        loaded = afe_channel_power(3.0, 5e-6, 5e3, adc_overhead=0.5)
        assert loaded == pytest.approx(1.5 * bare)

    def test_supply_scaling(self):
        v1 = afe_channel_power(3.0, 5e-6, 5e3, supply_v=1.0)
        v2 = afe_channel_power(3.0, 5e-6, 5e3, supply_v=2.0)
        assert v2 == pytest.approx(2.0 * v1)

    def test_rejects_bad_supply(self):
        with pytest.raises(ValueError):
            afe_channel_power(3.0, 5e-6, 5e3, supply_v=0.0)


class TestAnalogFrontEnd:
    def test_total_power_linear_in_channels(self):
        afe = AnalogFrontEnd()
        assert afe.total_power_w(2048) == pytest.approx(
            2.0 * afe.total_power_w(1024))

    def test_channel_power_is_microwatt_scale(self):
        # Published AFEs burn ~1-20 uW/channel; the model should agree.
        afe = AnalogFrontEnd()
        assert 1e-7 < afe.channel_power_w < 1e-4

    def test_with_noise_target(self):
        afe = AnalogFrontEnd(input_noise_vrms=5e-6)
        strict = afe.with_noise_target(2.5e-6)
        assert strict.channel_power_w == pytest.approx(
            4.0 * afe.channel_power_w)

    def test_rejects_non_positive_channels(self):
        with pytest.raises(ValueError):
            AnalogFrontEnd().total_power_w(0)
