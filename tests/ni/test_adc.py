"""Tests for ADC quantization and SQNR."""

import numpy as np
import pytest

from repro.ni.adc import AdcModel, dequantize, quantize, sqnr_db


class TestQuantize:
    def test_code_range(self):
        signal = np.linspace(-2.0, 2.0, 101)
        codes = quantize(signal, bits=8, full_scale=1.0)
        assert codes.min() >= -128
        assert codes.max() <= 127

    def test_zero_maps_to_zero_cell(self):
        assert quantize(np.array([0.0]), bits=8)[0] == 0

    def test_clipping(self):
        codes = quantize(np.array([10.0, -10.0]), bits=4, full_scale=1.0)
        assert codes[0] == 7
        assert codes[1] == -8

    def test_round_trip_error_bounded_by_lsb(self, rng):
        signal = rng.uniform(-0.99, 0.99, size=1000)
        bits = 10
        recon = dequantize(quantize(signal, bits), bits)
        lsb = 2.0 / 2 ** bits
        assert np.max(np.abs(signal - recon)) <= lsb / 2 + 1e-12

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            quantize(np.array([0.0]), bits=0)


class TestSqnr:
    def test_tracks_ideal_for_sinusoid(self, rng):
        t = np.linspace(0, 1, 100000)
        signal = 0.999 * np.sin(2 * np.pi * 123.0 * t)
        for bits in (6, 8, 10):
            measured = sqnr_db(signal, bits)
            ideal = 6.02 * bits + 1.76
            assert measured == pytest.approx(ideal, abs=1.5)

    def test_more_bits_more_sqnr(self, rng):
        signal = rng.uniform(-1, 1, 10000)
        assert sqnr_db(signal, 12) > sqnr_db(signal, 8) > sqnr_db(signal, 4)

    def test_rejects_zero_signal(self):
        with pytest.raises(ValueError):
            sqnr_db(np.zeros(10), 8)


class TestAdcModel:
    def test_bits_per_second(self):
        adc = AdcModel(bits=10, sampling_rate_hz=8e3)
        assert adc.bits_per_second_per_channel == pytest.approx(80e3)

    def test_convert_shape_preserved(self, rng):
        adc = AdcModel(bits=10)
        data = rng.standard_normal((4, 100))
        assert adc.convert(data).shape == (4, 100)

    def test_ideal_sqnr(self):
        assert AdcModel(bits=10).ideal_sqnr_db() == pytest.approx(61.96)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            AdcModel(bits=0)
        with pytest.raises(ValueError):
            AdcModel(sampling_rate_hz=0.0)
