"""Tests for electrode-array geometry and volumetric efficiency."""

import math

import pytest

from repro.ni.geometry import (
    ArrayGeometry,
    GridArray,
    ShankArray,
    channel_spacing,
    volumetric_efficiency,
)
from repro.units import mm2, um


class TestChannelSpacing:
    def test_square_lattice(self):
        # 1024 channels on 144 mm^2 -> ~375 um spacing.
        spacing = channel_spacing(mm2(144), 1024)
        assert spacing == pytest.approx(math.sqrt(144e-6 / 1024))

    def test_target_spacing_requires_density(self):
        # One channel per 20 um x 20 um cell.
        spacing = channel_spacing(um(20) ** 2 * 1024, 1024)
        assert spacing == pytest.approx(20e-6)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            channel_spacing(0.0, 10)
        with pytest.raises(ValueError):
            channel_spacing(1.0, 0)


class TestVolumetricEfficiency:
    def test_half_sensing(self):
        assert volumetric_efficiency(1.0, 2.0) == pytest.approx(0.5)

    def test_full_sensing(self):
        assert volumetric_efficiency(2.0, 2.0) == pytest.approx(1.0)

    def test_rejects_sensing_above_total(self):
        with pytest.raises(ValueError):
            volumetric_efficiency(3.0, 2.0)

    def test_rejects_non_positive_total(self):
        with pytest.raises(ValueError):
            volumetric_efficiency(1.0, 0.0)


class TestArrayGeometry:
    def test_total_area(self):
        geo = ArrayGeometry(n_channels=100, sensing_area_m2=1e-4,
                            overhead_area_m2=1e-5)
        assert geo.total_area_m2 == pytest.approx(1.1e-4)

    def test_volumetric_efficiency_property(self):
        geo = ArrayGeometry(n_channels=100, sensing_area_m2=3e-4,
                            overhead_area_m2=1e-4)
        assert geo.volumetric_efficiency == pytest.approx(0.75)

    def test_meets_spacing_target(self):
        dense = ArrayGeometry(n_channels=10000,
                              sensing_area_m2=(20e-6) ** 2 * 10000,
                              overhead_area_m2=0.0)
        sparse = ArrayGeometry(n_channels=4, sensing_area_m2=1e-4,
                               overhead_area_m2=0.0)
        assert dense.meets_spacing_target()
        assert not sparse.meets_spacing_target()

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            ArrayGeometry(n_channels=0, sensing_area_m2=1.0,
                          overhead_area_m2=0.0)
        with pytest.raises(ValueError):
            ArrayGeometry(n_channels=1, sensing_area_m2=1.0,
                          overhead_area_m2=-1.0)


class TestGridArray:
    def test_channel_count(self):
        grid = GridArray(rows=32, cols=32, pitch_m=um(50))
        assert grid.n_channels == 1024

    def test_sensing_area(self):
        grid = GridArray(rows=10, cols=10, pitch_m=um(100))
        assert grid.sensing_area_m2 == pytest.approx(100 * (100e-6) ** 2)

    def test_channel_positions(self):
        grid = GridArray(rows=2, cols=3, pitch_m=1.0)
        assert grid.channel_position(0) == pytest.approx((0.5, 0.5))
        assert grid.channel_position(5) == pytest.approx((2.5, 1.5))

    def test_position_out_of_range(self):
        grid = GridArray(rows=2, cols=2, pitch_m=1.0)
        with pytest.raises(ValueError):
            grid.channel_position(4)

    def test_spacing_equals_pitch(self):
        grid = GridArray(rows=8, cols=8, pitch_m=um(20))
        assert grid.spacing_m == pytest.approx(20e-6)


class TestShankArray:
    def test_linear_scaling(self):
        base = ShankArray(n_shanks=1, channels_per_shank=384,
                          shank_area_m2=mm2(22))
        scaled = base.with_shanks(4)
        assert scaled.n_channels == 4 * 384
        assert scaled.sensing_area_m2 == pytest.approx(
            4 * base.sensing_area_m2)

    def test_overhead_preserved(self):
        base = ShankArray(n_shanks=2, channels_per_shank=10,
                          shank_area_m2=1e-6, overhead_area_m2=5e-7)
        assert base.with_shanks(3).overhead_area_m2 == pytest.approx(5e-7)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            ShankArray(n_shanks=0, channels_per_shank=1, shank_area_m2=1.0)
