"""Tests for the design-space explorer."""

import pytest

from repro.core.explorer import ExplorationReport, explore


@pytest.fixture(scope="module")
def bisc_report():
    from repro.core.scaling import scale_to_standard
    from repro.core.socs import soc_by_number
    return explore(scale_to_standard(soc_by_number(1)),
                   target_channels=2048)


class TestExplore:
    def test_all_strategies_present(self, bisc_report):
        strategies = {o.strategy for o in bisc_report.outcomes}
        assert any("naive" in s for s in strategies)
        assert any("high margin" in s for s in strategies)
        assert any("QAM" in s for s in strategies)
        assert any("compressed" in s for s in strategies)
        assert any("event stream" in s for s in strategies)
        assert any("on-implant mlp" in s for s in strategies)
        assert any("partitioned dncnn" in s for s in strategies)

    def test_best_strategy_is_feasible_minimum(self, bisc_report):
        best = bisc_report.best_strategy()
        assert best is not None
        assert best.feasible_at_target
        for outcome in bisc_report.outcomes:
            if outcome.feasible_at_target:
                assert best.power_ratio_at_target <= \
                    outcome.power_ratio_at_target + 1e-12

    def test_frontier_keys_match_outcomes(self, bisc_report):
        frontier = bisc_report.frontier()
        assert set(frontier) == {o.strategy for o in bisc_report.outcomes}

    def test_event_stream_dominates_frontier(self, bisc_report):
        # Spike-only streaming has the largest (unbounded) safe range.
        frontier = bisc_report.frontier()
        event = next(v for k, v in frontier.items() if "event" in k)
        assert event is None or event > 8192

    def test_closed_loop_strategy_present(self, bisc_report):
        loop = next(o for o in bisc_report.outcomes
                    if "closed loop" in o.strategy)
        # The per-decision deadline dwarfs the per-sample one, so the
        # closed-loop frontier far exceeds the streaming-DNN frontier.
        streaming = next(o for o in bisc_report.outcomes
                         if o.strategy == "on-implant mlp")
        assert loop.max_channels > streaming.max_channels

    def test_partitioned_frontier_at_least_full(self, bisc_report):
        frontier = bisc_report.frontier()
        assert frontier["partitioned mlp"] >= frontier["on-implant mlp"]

    def test_dncnn_infeasible_at_2048_for_bisc(self, bisc_report):
        dncnn = next(o for o in bisc_report.outcomes
                     if o.strategy == "on-implant dncnn")
        assert not dncnn.feasible_at_target

    def test_report_metadata(self, bisc_report):
        assert isinstance(bisc_report, ExplorationReport)
        assert bisc_report.soc_name == "BISC"
        assert bisc_report.target_channels == 2048

    def test_rejects_below_standard_target(self):
        from repro.core.scaling import scale_to_standard
        from repro.core.socs import soc_by_number
        soc = scale_to_standard(soc_by_number(1))
        with pytest.raises(ValueError):
            explore(soc, target_channels=512)


class TestNoFeasibleStrategy:
    def test_best_none_when_everything_fails(self):
        # HALO* at a huge target: nothing can be feasible.
        from repro.core.scaling import scale_to_standard
        from repro.core.socs import soc_by_number
        halo = scale_to_standard(soc_by_number(8))
        report = explore(halo, target_channels=1 << 17,
                         compression_ratio=1.01)
        streaming = [o for o in report.outcomes
                     if "OOK" in o.strategy or "QAM" in o.strategy]
        assert any(not o.feasible_at_target for o in streaming)
