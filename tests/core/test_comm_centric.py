"""Tests for the Section 5.1 naive / high-margin analysis (Figs. 5-6)."""

import pytest

from repro.core.comm_centric import (
    DesignHypothesis,
    budget_crossing_channels,
    evaluate_comm_centric,
    sweep_comm_centric,
)

SWEEP = [1024, 2048, 4096, 8192]


class TestNaiveDesign:
    def test_power_ratio_constant(self, wireless_scaled):
        # Fig. 5 claim: the naive ratio does not change with n.
        for soc in wireless_scaled:
            points = sweep_comm_centric(soc, SWEEP, DesignHypothesis.NAIVE)
            ratios = [p.power_ratio for p in points]
            assert max(ratios) - min(ratios) < 1e-12, soc.name

    def test_always_within_budget(self, wireless_scaled):
        for soc in wireless_scaled:
            for point in sweep_comm_centric(soc, SWEEP,
                                            DesignHypothesis.NAIVE):
                assert point.within_budget, soc.name

    def test_sensing_fraction_flat(self, bisc):
        points = sweep_comm_centric(bisc, SWEEP, DesignHypothesis.NAIVE)
        fractions = [p.sensing_area_fraction for p in points]
        assert max(fractions) - min(fractions) < 1e-12

    def test_never_crosses_budget(self, wireless_scaled):
        for soc in wireless_scaled:
            assert budget_crossing_channels(
                soc, DesignHypothesis.NAIVE) is None


class TestHighMarginDesign:
    def test_power_eventually_exceeds_budget(self, wireless_scaled):
        # Fig. 5 claim: P_soc eventually exceeds P_budget for all SoCs.
        for soc in wireless_scaled:
            crossing = budget_crossing_channels(
                soc, DesignHypothesis.HIGH_MARGIN)
            assert crossing is not None, soc.name

    def test_crossings_within_plotted_range(self, wireless_scaled):
        for soc in wireless_scaled:
            crossing = budget_crossing_channels(
                soc, DesignHypothesis.HIGH_MARGIN)
            assert 1024 < crossing <= 8192, soc.name

    def test_crossing_matches_pointwise_evaluation(self, bisc):
        crossing = budget_crossing_channels(bisc,
                                            DesignHypothesis.HIGH_MARGIN)
        before = evaluate_comm_centric(bisc, crossing - 64,
                                       DesignHypothesis.HIGH_MARGIN)
        after = evaluate_comm_centric(bisc, crossing + 64,
                                      DesignHypothesis.HIGH_MARGIN)
        assert before.within_budget
        assert not after.within_budget

    def test_sensing_fraction_grows_toward_one(self, wireless_scaled):
        # Fig. 6 claim: normalized sensing area grows and dominates.
        for soc in wireless_scaled:
            points = sweep_comm_centric(soc, SWEEP,
                                        DesignHypothesis.HIGH_MARGIN)
            fractions = [p.sensing_area_fraction for p in points]
            assert all(a < b for a, b in zip(fractions, fractions[1:]))
            assert fractions[-1] > 0.8, soc.name

    def test_non_sensing_area_frozen(self, bisc):
        small = evaluate_comm_centric(bisc, 1024,
                                      DesignHypothesis.HIGH_MARGIN)
        large = evaluate_comm_centric(bisc, 8192,
                                      DesignHypothesis.HIGH_MARGIN)
        non_sensing_small = small.total_area_m2 - small.sensing_area_m2
        non_sensing_large = large.total_area_m2 - large.sensing_area_m2
        assert non_sensing_small == pytest.approx(non_sensing_large)

    def test_total_power_same_as_naive(self, bisc):
        # The hypotheses differ in area scaling, not power.
        naive = evaluate_comm_centric(bisc, 4096, DesignHypothesis.NAIVE)
        margin = evaluate_comm_centric(bisc, 4096,
                                       DesignHypothesis.HIGH_MARGIN)
        assert naive.total_power_w == pytest.approx(margin.total_power_w)


class TestAnchor:
    def test_anchor_matches_scaled_totals(self, bisc):
        point = evaluate_comm_centric(bisc, 1024, DesignHypothesis.NAIVE)
        assert point.total_power_w == pytest.approx(bisc.power_w)
        assert point.total_area_m2 == pytest.approx(bisc.area_m2)

    def test_power_split_fractions(self, bisc):
        point = evaluate_comm_centric(bisc, 1024, DesignHypothesis.NAIVE)
        assert point.non_sensing_power_w / point.total_power_w == \
            pytest.approx(bisc.record.comm_power_fraction)

    def test_rejects_downscaling(self, bisc):
        with pytest.raises(ValueError):
            evaluate_comm_centric(bisc, 512, DesignHypothesis.NAIVE)
