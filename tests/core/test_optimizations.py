"""Tests for the Section 6.2 optimization ladder (Fig. 12)."""

import pytest

from repro.accel.tech import TECH_12NM, TECH_45NM
from repro.core.comp_centric import Workload
from repro.core.optimizations import (
    LADDER,
    OptimizationConfig,
    densified_sensing_area_m2,
    evaluate_ladder,
    evaluate_ladder_step,
    max_active_channels,
)


class TestLadderStructure:
    def test_four_steps_in_paper_order(self):
        names = [name for name, _ in LADDER]
        assert names == ["ChDr", "La+ChDr", "La+ChDr+Tech",
                         "La+ChDr+Tech+Dense"]

    def test_steps_are_cumulative(self):
        configs = dict(LADDER)
        assert not configs["ChDr"].layer_reduction
        assert configs["La+ChDr"].layer_reduction
        assert configs["La+ChDr+Tech"].tech is TECH_12NM
        assert configs["La+ChDr+Tech+Dense"].density_factor == 2.0

    def test_config_rejects_bad_density(self):
        with pytest.raises(ValueError):
            OptimizationConfig(density_factor=0.5)


class TestMaxActiveChannels:
    def test_dropout_needed_at_4096(self, bisc):
        # At 4096 channels the full MLP no longer fits BISC; channel
        # dropout must reduce the active set.
        active = max_active_channels(bisc, Workload.MLP, 4096,
                                     OptimizationConfig())
        assert 0 < active < 4096

    def test_monotone_in_optimization_strength(self, bisc):
        base = max_active_channels(bisc, Workload.MLP, 2048,
                                   OptimizationConfig())
        with_la = max_active_channels(
            bisc, Workload.MLP, 2048,
            OptimizationConfig(layer_reduction=True))
        with_tech = max_active_channels(
            bisc, Workload.MLP, 2048,
            OptimizationConfig(layer_reduction=True, tech=TECH_12NM))
        assert base <= with_la <= with_tech

    def test_dense_reduces_budget_and_active_set(self, bisc):
        with_tech = max_active_channels(
            bisc, Workload.MLP, 4096,
            OptimizationConfig(layer_reduction=True, tech=TECH_12NM))
        with_dense = max_active_channels(
            bisc, Workload.MLP, 4096,
            OptimizationConfig(layer_reduction=True, tech=TECH_12NM,
                               density_factor=2.0))
        assert with_dense <= with_tech

    def test_capped_at_target(self, bisc):
        # At 1024 the MLP fits BISC outright -> no dropout needed.
        active = max_active_channels(bisc, Workload.MLP, 1024,
                                     OptimizationConfig())
        assert active == 1024

    def test_rejects_tiny_target(self, bisc):
        with pytest.raises(ValueError):
            max_active_channels(bisc, Workload.MLP, 8,
                                OptimizationConfig())


class TestDensifiedArea:
    def test_no_change_at_anchor(self, bisc):
        assert densified_sensing_area_m2(bisc, 1024, 2.0) == pytest.approx(
            bisc.sensing_area_anchor_m2)

    def test_added_channels_halved(self, bisc):
        full = bisc.sensing_area_m2(2048)
        dense = densified_sensing_area_m2(bisc, 2048, 2.0)
        anchor = bisc.sensing_area_anchor_m2
        assert dense == pytest.approx(anchor + (full - anchor) / 2)

    def test_factor_one_is_identity(self, bisc):
        assert densified_sensing_area_m2(bisc, 4096, 1.0) == pytest.approx(
            bisc.sensing_area_m2(4096))


class TestFig12Claims:
    @pytest.fixture(scope="class")
    def ladder_2048(self, request):
        from repro.core.scaling import scale_to_standard
        from repro.core.socs import wireless_socs
        socs = [scale_to_standard(r) for r in wireless_socs()]
        return {soc.name: evaluate_ladder(soc, 2048) for soc in socs}

    def test_chdr_reduces_model_to_tens_of_percent(self, ladder_2048):
        # Paper: ChDr reduces the model to ~32 % on average at 2048.
        fractions = [steps[0].model_size_fraction
                     for steps in ladder_2048.values()]
        avg = sum(fractions) / len(fractions)
        assert 0.2 <= avg <= 0.5

    def test_la_improves_over_chdr(self, ladder_2048):
        # Paper: La increases feasible model size (avg +30 %).
        for steps in ladder_2048.values():
            assert steps[1].model_size_fraction >= \
                steps[0].model_size_fraction - 1e-9

    def test_tech_improves_over_la(self, ladder_2048):
        for steps in ladder_2048.values():
            assert steps[2].model_size_fraction >= \
                steps[1].model_size_fraction - 1e-9

    def test_tech_average_near_72pct(self, ladder_2048):
        fractions = [steps[2].model_size_fraction
                     for steps in ladder_2048.values()]
        avg = sum(fractions) / len(fractions)
        assert 0.55 <= avg <= 0.85

    def test_dense_reduces_model_size(self, ladder_2048):
        # Paper: Dense lowers P_budget and shrinks the feasible model.
        for steps in ladder_2048.values():
            assert steps[3].model_size_fraction <= \
                steps[2].model_size_fraction + 1e-9

    def test_step_metadata(self, ladder_2048):
        for steps in ladder_2048.values():
            assert [s.step_name for s in steps] == [n for n, _ in LADDER]
            assert all(s.n_channels == 2048 for s in steps)


class TestLadderAtScale:
    def test_model_fraction_shrinks_with_target_channels(self, bisc):
        chdr = OptimizationConfig()
        f2048 = evaluate_ladder_step(bisc, 2048, "ChDr",
                                     chdr).model_size_fraction
        f8192 = evaluate_ladder_step(bisc, 8192, "ChDr",
                                     chdr).model_size_fraction
        assert f8192 < f2048

    def test_fraction_zero_when_nothing_fits(self, wireless_scaled):
        # The smallest-budget SoC cannot fit any model at 8192 with Dense.
        halo = next(s for s in wireless_scaled if s.name == "HALO*")
        step = evaluate_ladder_step(
            halo, 8192, "La+ChDr+Tech+Dense",
            OptimizationConfig(layer_reduction=True, tech=TECH_12NM,
                               density_factor=2.0))
        assert step.model_size_fraction <= 0.02
