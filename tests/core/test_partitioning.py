"""Tests for Section 6.1 DNN partitioning (Fig. 11)."""

import pytest

from repro.core.comp_centric import Workload, build_workload
from repro.core.partitioning import (
    admissible_splits,
    evaluate_partitioned,
    find_split_layer,
    max_feasible_channels_partitioned,
    partitioning_gain,
)


class TestSplitSelection:
    def test_mlp_has_admissible_split_at_2048(self):
        net = build_workload(Workload.MLP, 2048)
        assert admissible_splits(net)  # the n/4 bottleneck qualifies

    def test_dncnn_has_no_admissible_split_at_2048(self):
        net = build_workload(Workload.DNCNN, 2048)
        assert admissible_splits(net) == []

    def test_earliest_rule_returns_first(self):
        net = build_workload(Workload.MLP, 2048)
        splits = admissible_splits(net)
        assert find_split_layer(net) == splits[0]

    def test_earliest_rule_none_for_dncnn(self):
        net = build_workload(Workload.DNCNN, 2048)
        assert find_split_layer(net) is None

    def test_split_output_within_transmission_cap(self):
        net = build_workload(Workload.MLP, 4096)
        sizes = net.compute_layer_output_values()
        for split in admissible_splits(net):
            assert sizes[split - 1] <= 1024

    def test_mlp_beyond_4096_loses_its_split(self):
        # The n/4 bottleneck exceeds 1024 values past 4096 channels.
        net = build_workload(Workload.MLP, 8192)
        assert admissible_splits(net) == []


class TestEvaluatePartitioned:
    def test_never_worse_than_full(self, wireless_scaled):
        # The optimal rule includes "no split", so partitioned implant
        # power is at most the full on-implant power.
        from repro.core.comp_centric import evaluate_comp_centric
        for soc in wireless_scaled:
            for workload in Workload:
                full = evaluate_comp_centric(soc, workload, 2048)
                part = evaluate_partitioned(soc, workload, 2048)
                assert part.total_power_w <= full.total_power_w * (1 + 1e-9)

    def test_mlp_split_reduces_compute(self, bisc):
        from repro.core.comp_centric import evaluate_comp_centric
        full = evaluate_comp_centric(bisc, Workload.MLP, 2048)
        part = evaluate_partitioned(bisc, Workload.MLP, 2048)
        assert part.split_layer is not None
        assert part.comp_power_w < full.comp_power_w

    def test_split_increases_comm(self, bisc):
        from repro.core.comp_centric import evaluate_comp_centric
        full = evaluate_comp_centric(bisc, Workload.MLP, 2048)
        part = evaluate_partitioned(bisc, Workload.MLP, 2048)
        assert part.comm_power_w > full.comm_power_w

    def test_dncnn_falls_back_to_full_network(self, bisc):
        part = evaluate_partitioned(bisc, Workload.DNCNN, 2048)
        assert part.split_layer is None
        assert part.transmitted_values == 40

    def test_earliest_rule_supported(self, bisc):
        part = evaluate_partitioned(bisc, Workload.MLP, 2048,
                                    rule="earliest")
        assert part.split_layer is not None

    def test_rejects_unknown_rule(self, bisc):
        with pytest.raises(ValueError):
            evaluate_partitioned(bisc, Workload.MLP, 2048, rule="latest")


class TestFig11Claims:
    def test_mlp_gains_on_flagships(self, wireless_scaled):
        # Paper: layer reduction enables ~20 % more channels on average
        # for the MLP.
        gains = [partitioning_gain(s, Workload.MLP).gain_ratio
                 for s in wireless_scaled[:2]]
        assert all(g >= 1.1 for g in gains)

    def test_mlp_average_gain_near_20pct(self, wireless_scaled):
        gains = [partitioning_gain(s, Workload.MLP).gain_ratio
                 for s in wireless_scaled]
        avg = sum(gains) / len(gains)
        assert 1.10 <= avg <= 1.35

    def test_mlp_best_gain_substantial(self, wireless_scaled):
        gains = [partitioning_gain(s, Workload.MLP).gain_ratio
                 for s in wireless_scaled]
        assert max(gains) >= 1.3

    def test_dncnn_no_benefit(self, wireless_scaled):
        # Paper: the DN-CNN shows no benefit from layer reduction.
        for soc in wireless_scaled:
            gain = partitioning_gain(soc, Workload.DNCNN)
            assert gain.gain_ratio == pytest.approx(1.0), soc.name

    def test_partitioned_max_channels_never_lower(self, wireless_scaled):
        from repro.core.comp_centric import max_feasible_channels
        for soc in wireless_scaled[:3]:
            full = max_feasible_channels(soc, Workload.MLP)
            part = max_feasible_channels_partitioned(soc, Workload.MLP)
            assert part >= full, soc.name

    def test_gain_ratio_zero_when_never_fits(self, bisc):
        from repro.core.partitioning import PartitioningGain
        gain = PartitioningGain(soc_name="x", workload=Workload.MLP,
                                max_channels_full=0,
                                max_channels_partitioned=0)
        assert gain.gain_ratio == 0.0
