"""Tests for the Table 1 database."""

import pytest

from repro.core.socs import (
    DEFAULT_SAMPLE_BITS,
    STANDARD_CHANNELS,
    TABLE1,
    NIType,
    ScalingRule,
    SoCRecord,
    soc_by_number,
    wireless_socs,
)
from repro.units import mm2, mw_per_cm2, to_mw


class TestTable1Contents:
    def test_eleven_designs(self):
        assert len(TABLE1) == 11

    def test_paper_numbering(self):
        assert [r.number for r in TABLE1] == list(range(1, 12))

    def test_wireless_split(self):
        # Designs 1-8 are wireless; 9-11 wired.
        assert [r.wireless for r in TABLE1] == [True] * 8 + [False] * 3

    def test_spad_designs(self):
        spads = [r.number for r in TABLE1 if r.ni_type is NIType.SPAD]
        assert spads == [2, 11]

    def test_spad_designs_have_49152_channels(self):
        for number in (2, 11):
            assert soc_by_number(number).n_channels == 49152

    def test_halo_over_budget_as_reported(self):
        halo = soc_by_number(8)
        assert not halo.below_budget
        assert halo.power_density_w_m2 == pytest.approx(mw_per_cm2(1500))

    def test_all_others_below_budget(self):
        for record in TABLE1:
            if record.number != 8:
                assert record.below_budget

    def test_neuralink_parameters(self):
        neuralink = soc_by_number(3)
        assert neuralink.n_channels == 1024
        assert neuralink.area_m2 == pytest.approx(mm2(20))
        assert neuralink.sampling_hz == pytest.approx(10e3)

    def test_sampling_rates_in_1_to_30_khz(self):
        for record in TABLE1:
            assert 1e3 <= record.sampling_hz <= 30e3

    def test_default_sample_bits(self):
        assert DEFAULT_SAMPLE_BITS == 10
        assert all(r.sample_bits == 10 for r in TABLE1)

    def test_standard_channels(self):
        assert STANDARD_CHANNELS == 1024


class TestScalingMetadata:
    def test_neuropixels_scales_linearly(self):
        assert soc_by_number(9).scaling_rule is ScalingRule.LINEAR

    def test_spads_use_nominal(self):
        assert soc_by_number(2).scaling_rule is ScalingRule.NOMINAL
        assert soc_by_number(11).scaling_rule is ScalingRule.NOMINAL

    def test_halo_overridden(self):
        assert soc_by_number(8).scaling_rule is ScalingRule.OVERRIDE

    def test_muller_area_correction(self):
        assert soc_by_number(5).area_correction == pytest.approx(2.0)

    def test_wimagine_corrections(self):
        wimagine = soc_by_number(7)
        assert wimagine.area_correction == pytest.approx(100.0)
        assert wimagine.power_correction == pytest.approx(50.0)


class TestHelpers:
    def test_power_w_from_density(self):
        bisc = soc_by_number(1)
        assert to_mw(bisc.power_w) == pytest.approx(38.88)

    def test_lookup_raises_for_unknown(self):
        with pytest.raises(KeyError):
            soc_by_number(12)

    def test_wireless_socs_returns_eight(self):
        assert len(wireless_socs()) == 8

    def test_with_updates(self):
        modified = soc_by_number(1).with_updates(sample_bits=16)
        assert modified.sample_bits == 16
        assert soc_by_number(1).sample_bits == 10


class TestValidation:
    def _base_kwargs(self):
        return dict(number=99, name="X", ni_type=NIType.ELECTRODES,
                    n_channels=10, area_m2=1e-6,
                    power_density_w_m2=100.0, sampling_hz=1e3,
                    wireless=True, below_budget=True)

    def test_rejects_bad_channels(self):
        kwargs = self._base_kwargs() | {"n_channels": 0}
        with pytest.raises(ValueError):
            SoCRecord(**kwargs)

    def test_rejects_bad_fraction(self):
        kwargs = self._base_kwargs() | {"sensing_area_fraction": 1.0}
        with pytest.raises(ValueError):
            SoCRecord(**kwargs)

    def test_rejects_bad_correction(self):
        kwargs = self._base_kwargs() | {"area_correction": 0.0}
        with pytest.raises(ValueError):
            SoCRecord(**kwargs)
