"""Tests for the channel-count roadmap."""

import math

import pytest

from repro.core.roadmap import ChannelRoadmap


class TestTrend:
    def test_anchor_point(self):
        roadmap = ChannelRoadmap()
        assert roadmap.channels_in(2025) == pytest.approx(1024)

    def test_doubling_period(self):
        roadmap = ChannelRoadmap()
        assert roadmap.channels_in(2032) == pytest.approx(2048)
        assert roadmap.channels_in(2039) == pytest.approx(4096)

    def test_year_reaching_inverts(self):
        roadmap = ChannelRoadmap()
        for channels in (1024, 2048, 10_000, 100_000):
            year = roadmap.year_reaching(channels)
            assert roadmap.channels_in(year) == pytest.approx(channels)

    def test_past_for_below_anchor(self):
        roadmap = ChannelRoadmap()
        assert roadmap.year_reaching(512) < 2025

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            ChannelRoadmap(doubling_years=0.0)
        with pytest.raises(ValueError):
            ChannelRoadmap().year_reaching(0)


class TestHorizons:
    def test_unbounded_strategy_never_breaks(self):
        assert math.isinf(ChannelRoadmap().strategy_horizon(None))

    def test_dnn_frontier_breaks_within_a_decade(self, bisc):
        # The ~2048-channel MLP frontier is overtaken by 2032.
        from repro.core.comp_centric import Workload, max_feasible_channels
        roadmap = ChannelRoadmap()
        frontier = max_feasible_channels(bisc, Workload.MLP)
        horizon = roadmap.strategy_horizon(frontier)
        assert 2025 <= horizon <= 2035

    def test_qam_buys_years_over_ook(self, bisc):
        from repro.core.comm_centric import (
            DesignHypothesis,
            budget_crossing_channels,
        )
        from repro.core.qam_design import max_channels_at_efficiency
        roadmap = ChannelRoadmap()
        ook = budget_crossing_channels(bisc, DesignHypothesis.HIGH_MARGIN)
        qam = max_channels_at_efficiency(bisc, 1.0)
        assert roadmap.strategy_horizon(qam) > \
            roadmap.strategy_horizon(ook) - 5  # comparable decade

    def test_acceleration_shortens_horizons(self):
        base = ChannelRoadmap()
        fast = base.with_acceleration(2.0)
        assert fast.strategy_horizon(4096) < base.strategy_horizon(4096)
        assert fast.doubling_years == pytest.approx(3.5)

    def test_acceleration_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ChannelRoadmap().with_acceleration(0.0)
