"""Tests for the closed-loop BCI analysis."""

import math

import pytest

from repro.core.closed_loop import (
    BRAIN_REACTION_TIME_S,
    StimulationConfig,
    evaluate_closed_loop,
)
from repro.dnn.models import build_speech_mlp


class TestStimulation:
    def test_power_formula(self):
        config = StimulationConfig(n_electrodes=1, pulse_rate_hz=100.0,
                                   amplitude_a=100e-6,
                                   pulse_width_s=200e-6,
                                   electrode_impedance_ohm=10e3,
                                   driver_overhead=1.0)
        # E = I^2 R t * 2 = 1e-8 * 1e4 * 2e-4 * 2 = 4e-8 J; x100 Hz = 4 uW.
        assert config.power_w == pytest.approx(4e-6)

    def test_power_scales_with_electrodes(self):
        one = StimulationConfig(n_electrodes=1)
        many = StimulationConfig(n_electrodes=32)
        assert many.power_w == pytest.approx(32 * one.power_w)

    def test_stim_power_is_microwatts(self):
        # Typical cortical stimulation is uW-mW scale — far below the
        # sensing budget.
        assert 1e-6 < StimulationConfig().power_w < 1e-3

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            StimulationConfig(n_electrodes=0)
        with pytest.raises(ValueError):
            StimulationConfig(driver_overhead=0.5)


class TestClosedLoop:
    def test_reaction_time_constant(self):
        assert BRAIN_REACTION_TIME_S == pytest.approx(0.18)

    def test_loop_feasible_at_1024(self, bisc):
        net = build_speech_mlp(1024)
        point = evaluate_closed_loop(bisc, net, 1024)
        assert point.meets_deadline
        assert point.feasible

    def test_loop_latency_components(self, bisc):
        net = build_speech_mlp(1024)
        point = evaluate_closed_loop(bisc, net, 1024, window_samples=8)
        assert point.acquisition_s == pytest.approx(8 / bisc.sampling_hz)
        assert point.loop_latency_s == pytest.approx(
            point.acquisition_s + point.decode_s + point.stimulation_s)

    def test_loose_deadline_needs_fewer_macs_than_fig10(self, bisc):
        # Decoding once per decision (0.18 s budget) is far cheaper than
        # the per-sample real-time constraint of Fig. 10.
        from repro.core.comp_centric import Workload, evaluate_comp_centric
        net = build_speech_mlp(1024)
        loop = evaluate_closed_loop(bisc, net, 1024)
        streaming = evaluate_comp_centric(bisc, Workload.MLP, 1024)
        assert loop.comp_power_w < 0.05 * streaming.comp_power_w

    def test_tight_deadline_fails(self, bisc):
        net = build_speech_mlp(1024)
        point = evaluate_closed_loop(bisc, net, 1024,
                                     deadline_s=5e-3)
        # 5 ms minus acquisition and stimulation leaves nothing.
        assert not point.meets_deadline

    def test_infinite_decode_when_budget_consumed(self, bisc):
        net = build_speech_mlp(1024)
        point = evaluate_closed_loop(
            bisc, net, 1024, window_samples=10_000,
            deadline_s=0.18)  # acquisition alone exceeds the deadline
        assert math.isinf(point.decode_s)
        assert not point.feasible

    def test_no_transmitter_power_in_loop(self, bisc):
        net = build_speech_mlp(1024)
        point = evaluate_closed_loop(bisc, net, 1024)
        assert point.total_power_w == pytest.approx(
            point.sensing_power_w + point.comp_power_w
            + point.stim_power_w)

    def test_scales_further_than_streaming_dnn(self, bisc):
        # With the loose per-decision deadline the loop stays feasible
        # beyond the Fig. 10 streaming limit.
        from repro.core.comp_centric import Workload, max_feasible_channels
        stream_limit = max_feasible_channels(bisc, Workload.MLP)
        net = build_speech_mlp(stream_limit + 1024)
        point = evaluate_closed_loop(bisc, net, stream_limit + 1024)
        assert point.feasible

    def test_rejects_invalid(self, bisc):
        net = build_speech_mlp(128)
        with pytest.raises(ValueError):
            evaluate_closed_loop(bisc, net, 0)
        with pytest.raises(ValueError):
            evaluate_closed_loop(bisc, net, 128, deadline_s=0.0)
