"""Parity tests: the vectorized power-ratio curves and frontier searches
must match their scalar reference evaluators point for point."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import comm_centric, event_stream, qam_design
from repro.core.comm_centric import DesignHypothesis, evaluate_comm_centric
from repro.core.event_stream import EventStreamConfig, evaluate_event_stream
from repro.core.explorer import (
    _compressed_stream_ratio,
    _max_channels_compressed,
)
from repro.core.frontier import first_run_frontier, grid_frontier
from repro.core.qam_design import evaluate_qam_design
from repro.link.budget import LinkBudget


@pytest.mark.parametrize("hypothesis", list(DesignHypothesis))
def test_comm_centric_curve_matches_scalar(bisc, hypothesis):
    grid = np.array([1024, 1536, 2048, 4096, 9999], dtype=np.int64)
    curve = comm_centric.power_ratio_curve(bisc, grid, hypothesis)
    scalar = [evaluate_comm_centric(bisc, int(n), hypothesis).power_ratio
              for n in grid]
    np.testing.assert_array_equal(curve, scalar)


def test_event_stream_curve_matches_scalar(bisc):
    config = EventStreamConfig()
    grid = np.array([64, 1024, 3000, 8192], dtype=np.int64)
    curve = event_stream.power_ratio_curve(bisc, grid, config)
    scalar = [evaluate_event_stream(bisc, int(n), config).power_ratio
              for n in grid]
    np.testing.assert_array_equal(curve, scalar)


def test_qam_curve_matches_scalar(bisc):
    budget = LinkBudget()
    grid = np.array([1024, 2048, 4096, 5000], dtype=np.int64)
    curve = qam_design.min_efficiency_curve(bisc, grid, budget)
    scalar = [evaluate_qam_design(bisc, int(n), budget).min_efficiency
              for n in grid]
    np.testing.assert_array_equal(curve, scalar)


def test_compressed_ratio_array_matches_scalar(bisc):
    grid = np.array([1, 512, 1024, 4096], dtype=np.int64)
    curve = _compressed_stream_ratio(bisc, grid, 3.0, 2e-7)
    scalar = [_compressed_stream_ratio(bisc, int(n), 3.0, 2e-7)
              for n in grid]
    np.testing.assert_array_equal(curve, scalar)


def test_compressed_frontier_matches_brute_force(bisc):
    n_limit = 3000
    exact = _max_channels_compressed(bisc, 3.0, 2e-7, n_limit=n_limit)
    dense = np.arange(1, n_limit + 1, dtype=np.int64)
    fits = _compressed_stream_ratio(bisc, dense, 3.0, 2e-7) <= 1.0
    brute = int(dense[np.flatnonzero(fits)[-1]]) if fits.any() else 0
    assert exact == brute


def test_grid_frontier_never_probes_past_limit():
    seen = []

    def curve(n):
        n = np.asarray(n)
        seen.append(int(n.max()))
        return n / 100.0

    assert grid_frontier(curve, n_limit=5000) == 100
    assert max(seen) <= 5000


def test_grid_frontier_edge_cases():
    assert grid_frontier(lambda n: np.asarray(n) * 0.0 + 2.0, 100) == 0
    assert grid_frontier(lambda n: np.asarray(n) * 0.0, 100) == 100
    with pytest.raises(ValueError):
        grid_frontier(lambda n: np.asarray(n, dtype=float), 0)


def test_first_run_frontier_matches_scan_semantics():
    grid = np.array([10, 20, 30, 40, 50])
    assert first_run_frontier(grid, [False, True, True, False, True]) == 30
    assert first_run_frontier(grid, [True] * 5) == 50
    assert first_run_frontier(grid, [False] * 5) == 0


def test_max_channels_event_stream_is_exact_frontier(bisc):
    # A heavy detector makes the curve cross 1.0 inside the search range
    # so the exactness property (feasible at n, infeasible at n+1) is
    # actually exercised rather than clamped at n_limit.
    config = EventStreamConfig(detector_ops_per_sample=20000)
    frontier = event_stream.max_channels_event_stream(bisc, config)
    assert 0 < frontier < 1 << 20
    at = event_stream.power_ratio_curve(
        bisc, np.array([frontier], dtype=np.int64), config)
    past = event_stream.power_ratio_curve(
        bisc, np.array([frontier + 1], dtype=np.int64), config)
    assert float(at[0]) <= 1.0 < float(past[0])
