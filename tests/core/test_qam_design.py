"""Tests for the Section 5.2 QAM analysis (Fig. 7)."""

import math

import pytest

from repro.core.qam_design import (
    bits_per_symbol_for,
    evaluate_qam_design,
    max_channels_at_efficiency,
    sweep_qam_efficiency,
)


class TestBitsPerSymbol:
    def test_paper_schedule(self):
        # Section 5.2: 1 bit for n <= 1024, 2 for 1024 < n <= 2048, ...
        assert bits_per_symbol_for(1024) == 1
        assert bits_per_symbol_for(1025) == 2
        assert bits_per_symbol_for(2048) == 2
        assert bits_per_symbol_for(2049) == 3
        assert bits_per_symbol_for(6144) == 6

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            bits_per_symbol_for(0)


class TestEvaluation:
    def test_bisc_near_15pct_at_1024(self, bisc):
        # Fig. 7: ~15 % efficiency is the current standard at 1024 ch.
        point = evaluate_qam_design(bisc, 1024)
        assert point.min_efficiency == pytest.approx(0.07, abs=0.05)

    def test_min_efficiency_increases_with_channels(self, bisc):
        sweep = sweep_qam_efficiency(bisc, [1024, 2048, 3072, 4096])
        effs = [p.min_efficiency for p in sweep]
        assert all(a < b for a, b in zip(effs, effs[1:]))

    def test_energy_steps_at_block_boundaries(self, bisc):
        # Crossing a 1024 block adds one bit/symbol and raises Eb.
        at_3072 = evaluate_qam_design(bisc, 3072)
        at_3136 = evaluate_qam_design(bisc, 3136)
        assert at_3136.bits_per_symbol == at_3072.bits_per_symbol + 1
        assert (at_3136.ideal_energy_per_bit_j
                > at_3072.ideal_energy_per_bit_j)

    def test_infeasible_when_sensing_exceeds_budget(self, neuralink):
        # Neuralink's sensing power density exceeds the budget slope, so
        # far beyond the crossing sensing alone eats the budget.
        point = evaluate_qam_design(neuralink, 30 * 1024)
        assert math.isinf(point.min_efficiency)
        assert not point.feasible

    def test_even_ideal_qam_cannot_scale_indefinitely(self,
                                                      wireless_scaled):
        # Fig. 7 headline: implants cannot transmit full neural data at
        # scale even with ideal modulation.
        for soc in wireless_scaled:
            assert max_channels_at_efficiency(soc, 1.0) < 8192, soc.name

    def test_rejects_downscaling(self, bisc):
        with pytest.raises(ValueError):
            evaluate_qam_design(bisc, 512)


class TestHeadlineMultipliers:
    def test_20pct_doubles_for_realizable_socs(self, wireless_scaled):
        # Fig. 7: at 20 % efficiency, SoCs could double current channel
        # counts on average.  "Realizable" = feasible at ~15 % today.
        realizable = [s for s in wireless_scaled
                      if evaluate_qam_design(s, 1024).min_efficiency <= 0.15]
        assert len(realizable) >= 3
        maxima = [max_channels_at_efficiency(s, 0.20) for s in realizable]
        avg = sum(maxima) / len(maxima)
        assert avg == pytest.approx(2048, rel=0.15)

    def test_100pct_quadruples_for_realizable_socs(self, wireless_scaled):
        realizable = [s for s in wireless_scaled
                      if evaluate_qam_design(s, 1024).min_efficiency <= 0.15]
        maxima = [max_channels_at_efficiency(s, 1.0) for s in realizable]
        avg = sum(maxima) / len(maxima)
        assert avg == pytest.approx(4096, rel=0.20)

    def test_higher_efficiency_more_channels(self, bisc):
        assert (max_channels_at_efficiency(bisc, 1.0)
                > max_channels_at_efficiency(bisc, 0.2)
                > max_channels_at_efficiency(bisc, 0.1))

    def test_rejects_bad_efficiency(self, bisc):
        with pytest.raises(ValueError):
            max_channels_at_efficiency(bisc, 0.0)
        with pytest.raises(ValueError):
            max_channels_at_efficiency(bisc, 1.5)
