"""Tests for the multi-implant (tiled) scaling alternative."""

import pytest

from repro.core.multi_implant import (
    MultiImplantSystem,
    channels_vs_single_implant,
    max_implants,
)


class TestSystemProperties:
    def test_totals_scale_linearly(self, bisc):
        system = MultiImplantSystem(bisc, 4)
        assert system.total_channels == 4096
        assert system.total_area_m2 == pytest.approx(4 * bisc.area_m2)
        assert system.total_power_w == pytest.approx(4 * bisc.power_w)

    def test_per_tile_safety_independent_of_count(self, bisc):
        assert MultiImplantSystem(bisc, 1).per_tile_safe
        assert MultiImplantSystem(bisc, 100).per_tile_safe

    def test_bandwidth_constraint_binds(self, bisc):
        # 12 tiles x 82 Mbps < 1 Gbps, 13 tiles > 1 Gbps.
        assert MultiImplantSystem(bisc, 12).within_wearable_bandwidth
        assert not MultiImplantSystem(bisc, 13).within_wearable_bandwidth

    def test_area_constraint_binds(self, bisc):
        # 400 cm^2 / 1.44 cm^2 = 277 tiles.
        assert MultiImplantSystem(bisc, 277).within_cortical_area
        assert not MultiImplantSystem(bisc, 278).within_cortical_area

    def test_rejects_invalid(self, bisc):
        with pytest.raises(ValueError):
            MultiImplantSystem(bisc, 0)
        with pytest.raises(ValueError):
            MultiImplantSystem(bisc, 1, wearable_bandwidth_bps=0.0)


class TestMaxImplants:
    def test_bisc_is_bandwidth_limited(self, bisc):
        # Bandwidth (12) binds before cortical area (277).
        assert max_implants(bisc) == 12

    def test_wider_wearable_admits_more_tiles(self, bisc):
        assert max_implants(bisc, wearable_bandwidth_bps=4e9) == 48

    def test_area_limits_eventually(self, bisc):
        assert max_implants(bisc, wearable_bandwidth_bps=1e12) == 277

    def test_tiling_beats_single_implant_dnn_frontier(
            self, wireless_scaled):
        # Tiling reaches more channels than the single-implant DNN
        # frontier of Fig. 10 — the system-level argument for SCALO-like
        # deployments.
        from repro.core.comp_centric import Workload, max_feasible_channels
        for soc in wireless_scaled:
            tiles = max_implants(soc)
            single = max_feasible_channels(soc, Workload.MLP)
            assert tiles * soc.n_channels > single, soc.name

    def test_result_is_feasible_and_maximal(self, bisc):
        best = max_implants(bisc)
        assert MultiImplantSystem(bisc, best).feasible
        assert not MultiImplantSystem(bisc, best + 1).feasible


class TestComparison:
    def test_multiplier_vs_single_implant(self, bisc):
        # Against the ~2048-channel single-implant MLP frontier.
        multiplier = channels_vs_single_implant(bisc, 2048)
        assert multiplier == pytest.approx(12 * 1024 / 2048)

    def test_rejects_bad_limit(self, bisc):
        with pytest.raises(ValueError):
            channels_vs_single_implant(bisc, 0)
