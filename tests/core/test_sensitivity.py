"""Tests for the sensitivity-analysis module."""

import pytest

from repro.core.sensitivity import (
    SensitivityResult,
    sweep_noise_figure,
    sweep_record_parameter,
    tornado,
)
from repro.core.socs import soc_by_number


@pytest.fixture(scope="module")
def bisc_record():
    return soc_by_number(1)


class TestSweeps:
    def test_comm_fraction_raises_mlp_frontier(self, bisc_record):
        # More of the anchor power attributed to the (replaceable)
        # transceiver leaves more headroom for compute.
        result = sweep_record_parameter(
            bisc_record, "comm_power_fraction", (0.15, 0.25, 0.35),
            "mlp_max_channels")
        assert result.outcomes[0] <= result.outcomes[-1]

    def test_sensing_area_fraction_moves_crossing(self, bisc_record):
        result = sweep_record_parameter(
            bisc_record, "sensing_area_fraction", (0.45, 0.55, 0.65),
            "high_margin_crossing")
        # Larger sensing share -> budget tracks power longer -> later
        # crossing.
        assert result.outcomes[0] < result.outcomes[-1]

    def test_sample_bits_shrink_qam_frontier(self, bisc_record):
        result = sweep_record_parameter(
            bisc_record, "sample_bits", (8.0, 10.0, 12.0),
            "qam_channels_at_20pct")
        assert result.outcomes[0] >= result.outcomes[-1]

    def test_headline_robust_to_split_estimates(self, bisc_record):
        # The Fig. 10 frontier moves by well under 2x across +-0.1
        # perturbations of the estimated splits — the EXPERIMENTS.md
        # robustness claim.
        for result in tornado(bisc_record):
            assert result.relative_swing < 1.0, result.parameter

    def test_noise_figure_sweep_monotone(self, bisc_record):
        result = sweep_noise_figure(bisc_record, (5.0, 7.0, 9.0))
        assert list(result.outcomes) == sorted(result.outcomes,
                                               reverse=True)

    def test_swing_computation(self):
        result = SensitivityResult(parameter="p", metric="m",
                                   values=(1.0, 2.0, 3.0),
                                   outcomes=(10.0, 15.0, 30.0))
        assert result.swing == 20.0
        assert result.relative_swing == pytest.approx(20.0 / 15.0)

    def test_rejects_unknown_field(self, bisc_record):
        with pytest.raises(ValueError):
            sweep_record_parameter(bisc_record, "nonexistent", (1.0,),
                                   "mlp_max_channels")

    def test_rejects_unknown_metric(self, bisc_record):
        with pytest.raises(ValueError):
            sweep_record_parameter(bisc_record, "comm_power_fraction",
                                   (0.25,), "nonsense")

    def test_rejects_empty_sweep(self, bisc_record):
        with pytest.raises(ValueError):
            sweep_record_parameter(bisc_record, "comm_power_fraction",
                                   (), "mlp_max_channels")
