"""Tests for Section 4.1/4.2 scaling — pinning the Fig. 4 anchor points."""

import pytest

from repro.core.scaling import scale_to_standard
from repro.core.socs import TABLE1, soc_by_number
from repro.units import mbps, to_mm2, to_mw, to_mw_per_cm2


class TestFig4Anchors:
    """Each design scaled to 1024 channels must land where Fig. 4 puts it."""

    def test_bisc_unchanged(self):
        scaled = scale_to_standard(soc_by_number(1))
        assert to_mm2(scaled.area_m2) == pytest.approx(144.0)
        assert to_mw(scaled.power_w) == pytest.approx(38.88)

    def test_gilhotra_nominal(self):
        scaled = scale_to_standard(soc_by_number(2))
        assert to_mm2(scaled.area_m2) == pytest.approx(144.0)
        assert to_mw_per_cm2(scaled.power_density_w_m2) == pytest.approx(
            33.0)

    def test_shen_eq1(self):
        # sqrt(1024/16) = 8x area, 64x power.
        scaled = scale_to_standard(soc_by_number(4))
        assert to_mm2(scaled.area_m2) == pytest.approx(1.34 * 8)
        assert to_mw(scaled.power_w) == pytest.approx(
            2.2 * 1.34e-2 * 64, rel=1e-3)

    def test_muller_matches_paper_narrative(self):
        # Eq. 1 alone gives ~10 mW/cm^2; the 2x area correction gives 20.
        scaled = scale_to_standard(soc_by_number(5))
        assert to_mw_per_cm2(scaled.power_density_w_m2) == pytest.approx(
            20.0, rel=0.01)

    def test_wimagine_matches_paper_narrative(self):
        # 2x area + 50x power/area reductions -> ~30 mW/cm^2 at ~78 mm^2.
        scaled = scale_to_standard(soc_by_number(7))
        assert to_mw_per_cm2(scaled.power_density_w_m2) == pytest.approx(
            30.4, rel=0.01)
        assert to_mm2(scaled.area_m2) == pytest.approx(78.4, rel=0.01)

    def test_wimagine_spacing_near_200um(self):
        scaled = scale_to_standard(soc_by_number(7))
        spacing_um = (scaled.sensing_area_anchor_m2 / 1024) ** 0.5 * 1e6
        assert 150 < spacing_um < 320

    def test_halo_star_sits_below_budget(self):
        scaled = scale_to_standard(soc_by_number(8))
        assert scaled.name == "HALO*"
        density = to_mw_per_cm2(scaled.power_density_w_m2)
        assert density <= 40.0

    def test_neuropixels_density_preserved_by_linear_scaling(self):
        scaled = scale_to_standard(soc_by_number(9))
        assert to_mw_per_cm2(scaled.power_density_w_m2) == pytest.approx(
            21.0)
        assert to_mm2(scaled.area_m2) == pytest.approx(22 * 1024 / 384)

    def test_all_designs_safe_at_1024(self):
        # The Fig. 4 claim: every scaled design is below the budget line.
        for record in TABLE1:
            scaled = scale_to_standard(record)
            assert scaled.power_w <= scaled.budget_w() * (1 + 1e-9), \
                scaled.name


class TestScaledSoCProperties:
    def test_sensing_plus_non_sensing_area(self, bisc):
        assert bisc.sensing_area_anchor_m2 + bisc.non_sensing_area_m2 == \
            pytest.approx(bisc.area_m2)

    def test_sensing_plus_comm_power(self, bisc):
        assert bisc.sensing_power_anchor_w + bisc.comm_power_anchor_w == \
            pytest.approx(bisc.power_w)

    def test_eq5_linear_power(self, bisc):
        assert bisc.sensing_power_w(2048) == pytest.approx(
            2 * bisc.sensing_power_w(1024))

    def test_eq5_linear_area(self, bisc):
        assert bisc.sensing_area_m2(4096) == pytest.approx(
            4 * bisc.sensing_area_m2(1024))

    def test_eq6_throughput(self, bisc):
        # BISC: 1024 ch * 10 b * 8 kHz = 81.92 Mbps.
        assert bisc.sensing_throughput_bps() == pytest.approx(mbps(81.92))

    def test_implied_energy_per_bit_plausible(self, all_scaled):
        for soc in all_scaled:
            eb = soc.implied_energy_per_bit_j
            assert 1e-13 < eb < 1e-9  # sub-pJ to sub-nJ per bit

    def test_budget_uses_anchor_area_by_default(self, bisc):
        assert bisc.budget_w() == pytest.approx(bisc.area_m2 * 400.0)

    def test_rejects_bad_channels(self, bisc):
        with pytest.raises(ValueError):
            bisc.sensing_power_w(0)
