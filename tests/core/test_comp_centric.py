"""Tests for the Section 5.3 computation-centric analysis (Fig. 10)."""

import math

import pytest

from repro.accel.tech import TECH_12NM
from repro.core.comp_centric import (
    Workload,
    build_workload,
    evaluate_comp_centric,
    max_feasible_channels,
    sweep_comp_centric,
)


class TestBuildWorkload:
    def test_both_workloads_build(self):
        for workload in Workload:
            net = build_workload(workload, 1024)
            assert net.output_values == 40

    def test_workload_scales_with_channels(self):
        small = build_workload(Workload.MLP, 512).total_macs
        large = build_workload(Workload.MLP, 1024).total_macs
        assert large > 2 * small


class TestFig10Claims:
    def test_flagship_socs_integrate_both_dnns_at_1024(self,
                                                       wireless_scaled):
        # Paper: SoCs 1 and 2 can integrate the DN-CNN at 1024 channels.
        for soc in wireless_scaled[:2]:
            for workload in Workload:
                assert evaluate_comp_centric(soc, workload, 1024).fits, \
                    (soc.name, workload)

    def test_most_socs_cannot_integrate_dncnn_at_1024(self,
                                                      wireless_scaled):
        fitting = [s.name for s in wireless_scaled
                   if evaluate_comp_centric(s, Workload.DNCNN, 1024).fits]
        assert len(fitting) <= 3

    def test_small_budget_socs_exceed_by_factors(self, wireless_scaled):
        # Paper: some SoCs exceed the budget ~5x for the DN-CNN at 1024.
        ratios = [evaluate_comp_centric(s, Workload.DNCNN, 1024).power_ratio
                  for s in wireless_scaled]
        assert any(r > 4.0 for r in ratios)

    def test_avg_max_channels_mlp_near_1800(self, wireless_scaled):
        # Paper: average maximum channel count ~1800 for the MLP among
        # SoCs that accommodate it.
        fitting = [s for s in wireless_scaled
                   if evaluate_comp_centric(s, Workload.MLP, 1024).fits]
        maxima = [max_feasible_channels(s, Workload.MLP) for s in fitting]
        avg = sum(maxima) / len(maxima)
        assert 1300 <= avg <= 2100

    def test_avg_max_channels_dncnn_near_1400(self, wireless_scaled):
        fitting = [s for s in wireless_scaled
                   if evaluate_comp_centric(s, Workload.DNCNN, 1024).fits]
        maxima = [max_feasible_channels(s, Workload.DNCNN) for s in fitting]
        avg = sum(maxima) / len(maxima)
        assert 1100 <= avg <= 1700

    def test_dncnn_limit_below_mlp(self, bisc):
        # The heavier DN-CNN crosses the budget before the MLP.
        assert (max_feasible_channels(bisc, Workload.DNCNN)
                < max_feasible_channels(bisc, Workload.MLP))

    def test_no_soc_reaches_twice_standard(self, wireless_scaled):
        # Headline: even the MLP cannot scale to 2x the standard (2048)
        # beyond a narrow margin; none should reach 4096.
        for soc in wireless_scaled:
            assert max_feasible_channels(soc, Workload.MLP) < 4096, soc.name


class TestEvaluation:
    def test_power_ratio_grows_with_channels(self, bisc):
        sweep = sweep_comp_centric(bisc, Workload.MLP,
                                   [1024, 2048, 4096])
        ratios = [p.power_ratio for p in sweep]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_total_power_is_sum_of_parts(self, bisc):
        point = evaluate_comp_centric(bisc, Workload.MLP, 1024)
        assert point.total_power_w == pytest.approx(
            point.sensing_power_w + point.comp_power_w
            + point.comm_power_w)

    def test_comm_power_is_small_output_stream(self, bisc):
        # Only 40 output values are transmitted: comm << comp.
        point = evaluate_comp_centric(bisc, Workload.MLP, 1024)
        assert point.comm_power_w < 0.15 * point.comp_power_w

    def test_better_tech_reduces_power(self, bisc):
        base = evaluate_comp_centric(bisc, Workload.MLP, 1024)
        scaled = evaluate_comp_centric(bisc, Workload.MLP, 1024,
                                       tech=TECH_12NM)
        assert scaled.comp_power_w < base.comp_power_w

    def test_infeasible_deadline_gives_infinite_power(self, bisc):
        # A network whose MACseq cannot fit one sampling period at all.
        point = evaluate_comp_centric(bisc, Workload.MLP, 200_000)
        assert math.isinf(point.comp_power_w) or point.power_ratio > 1.0

    def test_schedule_attached_when_feasible(self, bisc):
        point = evaluate_comp_centric(bisc, Workload.MLP, 1024)
        assert point.schedule is not None
        assert point.schedule.mac_units > 0

    def test_model_parameters_reported(self, bisc):
        point = evaluate_comp_centric(bisc, Workload.MLP, 1024)
        assert point.model_parameters > 1e6

    def test_rejects_non_positive_channels(self, bisc):
        with pytest.raises(ValueError):
            evaluate_comp_centric(bisc, Workload.MLP, 0)
