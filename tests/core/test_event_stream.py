"""Tests for the event-driven (spike-only) streaming dataflow."""

import pytest

from repro.core.event_stream import (
    EventStreamConfig,
    break_even_spike_rate_hz,
    evaluate_event_stream,
    max_channels_event_stream,
)


class TestConfig:
    def test_bits_per_event(self):
        config = EventStreamConfig(channel_id_bits=16, timestamp_bits=10,
                                   shape_bits=6)
        assert config.bits_per_event == 32

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            EventStreamConfig(spike_rate_hz=-1.0)
        with pytest.raises(ValueError):
            EventStreamConfig(channel_id_bits=0)


class TestEvaluation:
    def test_sparse_population_slashes_data_rate(self, bisc):
        point = evaluate_event_stream(bisc, 1024)
        # 10 Hz x 26 b/event vs 10 b x 8 kHz raw.
        assert point.data_reduction > 100

    def test_reduction_matches_formula(self, bisc):
        config = EventStreamConfig(spike_rate_hz=20.0)
        point = evaluate_event_stream(bisc, 2048, config)
        expected = (bisc.sample_bits * bisc.sampling_hz
                    / (20.0 * config.bits_per_event))
        assert point.data_reduction == pytest.approx(expected)

    def test_comm_power_far_below_raw(self, bisc):
        point = evaluate_event_stream(bisc, 1024)
        raw_comm = (point.raw_throughput_bps
                    * bisc.implied_energy_per_bit_j)
        assert point.comm_power_w < raw_comm / 50

    def test_detector_power_modest(self, bisc):
        point = evaluate_event_stream(bisc, 1024)
        assert point.detector_power_w < 0.2 * point.sensing_power_w

    def test_total_power_is_sum(self, bisc):
        point = evaluate_event_stream(bisc, 1024)
        assert point.total_power_w == pytest.approx(
            point.sensing_power_w + point.detector_power_w
            + point.comm_power_w)

    def test_rejects_non_positive_channels(self, bisc):
        with pytest.raises(ValueError):
            evaluate_event_stream(bisc, 0)


class TestScaling:
    def test_event_streaming_outscales_raw(self, wireless_scaled):
        # Event streaming pushes every SoC far beyond the raw-streaming
        # crossing, because the comm term nearly vanishes.
        from repro.core.comm_centric import (
            DesignHypothesis,
            budget_crossing_channels,
        )
        for soc in wireless_scaled:
            raw_cross = budget_crossing_channels(
                soc, DesignHypothesis.HIGH_MARGIN)
            event_max = max_channels_event_stream(soc, n_limit=1 << 16)
            assert event_max == 0 or event_max > raw_cross, soc.name

    def test_busy_population_can_exceed_raw(self, bisc):
        # Above the break-even rate the event stream is *worse* than raw.
        rate = break_even_spike_rate_hz(bisc)
        busy = EventStreamConfig(spike_rate_hz=rate * 2)
        point = evaluate_event_stream(bisc, 1024, busy)
        assert point.data_reduction < 1.0

    def test_break_even_rate_formula(self, bisc):
        config = EventStreamConfig()
        rate = break_even_spike_rate_hz(bisc, config)
        assert rate == pytest.approx(
            bisc.sample_bits * bisc.sampling_hz / config.bits_per_event)

    def test_max_channels_monotone_in_spike_rate(self, neuralink):
        sparse = max_channels_event_stream(
            neuralink, EventStreamConfig(spike_rate_hz=5.0),
            n_limit=1 << 16)
        busy = max_channels_event_stream(
            neuralink, EventStreamConfig(spike_rate_hz=500.0),
            n_limit=1 << 16)
        assert busy <= sparse
