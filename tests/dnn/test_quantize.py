"""Tests for post-training quantization."""

import numpy as np
import pytest

from repro.dnn.layers import Dense, ReLU
from repro.dnn.network import Network
from repro.dnn.quantize import (
    quantization_sweep,
    quantize_network,
    quantize_tensor,
)


class TestQuantizeTensor:
    def test_idempotent_on_grid_values(self):
        tensor = np.array([-1.0, -0.5, 0.0, 0.5, 1.0])
        quantized = quantize_tensor(tensor, bits=8)
        np.testing.assert_allclose(quantize_tensor(quantized, 8),
                                   quantized, atol=1e-12)

    def test_peak_preserved(self, rng):
        tensor = rng.standard_normal(100)
        quantized = quantize_tensor(tensor, bits=8)
        assert np.max(np.abs(quantized)) == pytest.approx(
            np.max(np.abs(tensor)), rel=0.01)

    def test_error_bounded_by_half_step(self, rng):
        tensor = rng.standard_normal(1000)
        bits = 8
        quantized = quantize_tensor(tensor, bits)
        step = np.max(np.abs(tensor)) / (2 ** (bits - 1) - 1)
        assert np.max(np.abs(tensor - quantized)) <= step / 2 + 1e-12

    def test_zero_tensor_untouched(self):
        np.testing.assert_array_equal(quantize_tensor(np.zeros(5), 8),
                                      np.zeros(5))

    def test_more_bits_less_error(self, rng):
        tensor = rng.standard_normal(500)
        err4 = np.abs(quantize_tensor(tensor, 4) - tensor).max()
        err12 = np.abs(quantize_tensor(tensor, 12) - tensor).max()
        assert err12 < err4

    def test_rejects_one_bit(self):
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(3), 1)


def build_factory(rng_seed=5):
    def build():
        rng = np.random.default_rng(rng_seed)
        return Network([Dense(16, 32, rng=rng), ReLU(),
                        Dense(32, 8, rng=rng)], input_shape=(16,))
    return build


class TestQuantizeNetwork:
    def test_counts_quantized_layers(self):
        net = build_factory()()
        assert quantize_network(net, 8) == 2

    def test_changes_weights(self):
        net = build_factory()()
        before = net.layers[0].weight.copy()
        quantize_network(net, 3)
        assert not np.allclose(net.layers[0].weight, before)

    def test_rejects_shape_only_network(self):
        net = Network([Dense(4, 2)], input_shape=(4,))
        with pytest.raises(ValueError):
            quantize_network(net, 8)


class TestSweep:
    def test_error_monotone_in_bits(self, rng):
        inputs = rng.standard_normal((8, 16))
        reports = quantization_sweep(build_factory(), inputs,
                                     bit_widths=(4, 8, 12))
        errors = [r.output_rmse for r in reports]
        assert errors[0] > errors[1] > errors[2]

    def test_eight_bits_is_accurate_enough(self, rng):
        # The Fig. 9 accelerator uses an 8-bit datatype; relative output
        # error at 8 bits should be small.
        inputs = rng.standard_normal((16, 16))
        reports = quantization_sweep(build_factory(), inputs,
                                     bit_widths=(8,))
        assert reports[0].relative_error < 0.05

    def test_reference_rms_consistent(self, rng):
        inputs = rng.standard_normal((4, 16))
        reports = quantization_sweep(build_factory(), inputs,
                                     bit_widths=(4, 16))
        assert reports[0].output_rms == pytest.approx(
            reports[1].output_rms)
