"""Tests for the speech-workload builders and alpha scaling."""

import pytest

from repro.dnn.models import (
    SPEECH_BASE_CHANNELS,
    SPEECH_OUTPUT_LABELS,
    alpha_scaling_factor,
    build_speech_dncnn,
    build_speech_mlp,
)


class TestAlpha:
    def test_base_is_one(self):
        assert alpha_scaling_factor(SPEECH_BASE_CHANNELS) == 1.0

    def test_1024_is_eight(self):
        assert alpha_scaling_factor(1024) == 8.0

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            alpha_scaling_factor(0)


class TestMlpBuilder:
    def test_output_is_40_labels(self):
        assert build_speech_mlp(1024).output_values == SPEECH_OUTPUT_LABELS

    def test_output_size_independent_of_channels(self):
        # Section 5.3: classification output size does not scale with input.
        for n in (128, 512, 2048):
            assert build_speech_mlp(n).output_values == SPEECH_OUTPUT_LABELS

    def test_macs_superlinear_in_channels(self):
        base = build_speech_mlp(512).total_macs
        doubled = build_speech_mlp(1024).total_macs
        assert doubled > 2.5 * base  # super-linear (roughly quadratic)

    def test_depth_grows_with_alpha(self):
        shallow = build_speech_mlp(128).n_compute_layers
        deep = build_speech_mlp(4096).n_compute_layers
        assert deep > shallow

    def test_bottleneck_is_quarter_width(self):
        net = build_speech_mlp(2048)
        sizes = net.compute_layer_output_values()
        assert 512 in sizes  # the n/4 bottleneck

    def test_bottleneck_enables_partitioning_below_4096(self):
        sizes = build_speech_mlp(4096).compute_layer_output_values()
        assert any(s <= 1024 for s in sizes[:-1])

    def test_forward_runs_when_materialized(self, rng):
        net = build_speech_mlp(128, rng=rng)
        x = rng.standard_normal((2,) + net.input_shape)
        assert net.forward(x).shape == (2, SPEECH_OUTPUT_LABELS)

    def test_rejects_non_positive_channels(self):
        with pytest.raises(ValueError):
            build_speech_mlp(0)


class TestDncnnBuilder:
    def test_output_is_40_labels(self):
        assert build_speech_dncnn(1024).output_values == SPEECH_OUTPUT_LABELS

    def test_heavier_than_mlp(self):
        # The paper's DN-CNN crosses the budget before the MLP does.
        for n in (1024, 2048):
            assert (build_speech_dncnn(n).total_macs
                    > build_speech_mlp(n).total_macs)

    def test_intermediate_maps_exceed_1024_values(self):
        # No admissible partition split (Section 6.1 finding).
        sizes = build_speech_dncnn(2048).compute_layer_output_values()
        assert all(s > 1024 for s in sizes[:-1])

    def test_conv_depth_grows_with_alpha(self):
        shallow = build_speech_dncnn(128).n_compute_layers
        deep = build_speech_dncnn(4096).n_compute_layers
        assert deep > shallow

    def test_forward_runs_when_materialized(self, rng):
        net = build_speech_dncnn(64, rng=rng)
        x = rng.standard_normal((2,) + net.input_shape)
        assert net.forward(x).shape == (2, SPEECH_OUTPUT_LABELS)

    def test_rejects_even_kernel(self):
        with pytest.raises(ValueError):
            build_speech_dncnn(128, kernel_size=4)

    def test_shape_only_build_is_cheap_at_scale(self):
        # Building at 8192 channels must not allocate weight arrays.
        net = build_speech_dncnn(8192)
        assert net.total_macs > 1e8
        assert all(not getattr(layer, "materialized", False)
                   for layer in net.layers)
