"""Tests for the SGD training loop."""

import numpy as np
import pytest

from repro.dnn.layers import Dense, Tanh
from repro.dnn.network import Network
from repro.dnn.train import mse_loss, sgd_step, sgd_train


class TestMseLoss:
    def test_zero_for_perfect(self):
        x = np.ones((2, 3))
        loss, grad = mse_loss(x, x)
        assert loss == 0.0
        np.testing.assert_array_equal(grad, np.zeros_like(x))

    def test_known_value(self):
        loss, _ = mse_loss(np.array([[2.0]]), np.array([[0.0]]))
        assert loss == pytest.approx(4.0)

    def test_gradient_direction(self):
        _, grad = mse_loss(np.array([[2.0]]), np.array([[0.0]]))
        assert grad[0, 0] > 0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.zeros((1, 2)), np.zeros((2, 1)))


class TestSgd:
    def test_learns_linear_map(self, rng):
        net = Network([Dense(4, 2, rng=rng)], input_shape=(4,))
        true_w = rng.standard_normal((2, 4))
        x = rng.standard_normal((256, 4))
        y = x @ true_w.T
        history = sgd_train(net, x, y, rng, epochs=60, learning_rate=0.1)
        assert history[-1] < history[0] * 0.05

    def test_learns_nonlinear_map(self, rng):
        net = Network([Dense(3, 16, rng=rng), Tanh(),
                       Dense(16, 1, rng=rng)], input_shape=(3,))
        x = rng.uniform(-1, 1, (512, 3))
        y = np.tanh(x.sum(axis=1, keepdims=True))
        history = sgd_train(net, x, y, rng, epochs=40, learning_rate=0.2)
        assert history[-1] < history[0] * 0.2

    def test_history_length(self, rng):
        net = Network([Dense(2, 1, rng=rng)], input_shape=(2,))
        history = sgd_train(net, np.zeros((8, 2)), np.zeros((8, 1)), rng,
                            epochs=7)
        assert len(history) == 7

    def test_rejects_mismatched_data(self, rng):
        net = Network([Dense(2, 1, rng=rng)], input_shape=(2,))
        with pytest.raises(ValueError):
            sgd_train(net, np.zeros((8, 2)), np.zeros((7, 1)), rng)

    def test_rejects_empty_data(self, rng):
        net = Network([Dense(2, 1, rng=rng)], input_shape=(2,))
        with pytest.raises(ValueError):
            sgd_train(net, np.zeros((0, 2)), np.zeros((0, 1)), rng)

    def test_sgd_step_moves_parameters(self, rng):
        net = Network([Dense(2, 1, rng=rng)], input_shape=(2,))
        dense = net.layers[0]
        out = net.forward(np.ones((4, 2)))
        net.backward(np.ones_like(out))
        before = dense.weight.copy()
        sgd_step(net, 0.1)
        assert not np.allclose(dense.weight, before)

    def test_sgd_step_rejects_bad_rate(self, rng):
        net = Network([Dense(2, 1, rng=rng)], input_shape=(2,))
        with pytest.raises(ValueError):
            sgd_step(net, 0.0)
