"""Tests for the classification head: Softmax + cross-entropy."""

import numpy as np
import pytest

from repro.dnn.layers import Dense, ReLU, Softmax
from repro.dnn.network import Network
from repro.dnn.train import cross_entropy_loss, sgd_step


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = Softmax().forward(rng.standard_normal((5, 7)))
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-12)

    def test_outputs_positive(self, rng):
        out = Softmax().forward(rng.standard_normal((3, 4)) * 10)
        assert np.all(out > 0)

    def test_shift_invariance(self, rng):
        layer = Softmax()
        x = rng.standard_normal((2, 5))
        a = layer.forward(x)
        b = layer.forward(x + 100.0)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_numerically_stable_at_extremes(self):
        out = Softmax().forward(np.array([[1000.0, 0.0, -1000.0]]))
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0)

    def test_backward_matches_numeric_gradient(self, rng):
        layer = Softmax()
        x = rng.standard_normal((2, 4))

        def loss():
            return float(np.sum(layer.forward(x) ** 2))

        out = layer.forward(x)
        analytic = layer.backward(2 * out)
        eps = 1e-6
        numeric = np.zeros_like(x)
        flat, nflat = x.reshape(-1), numeric.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            hi = loss()
            flat[i] = orig - eps
            lo = loss()
            flat[i] = orig
            nflat[i] = (hi - lo) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_no_mac_work(self):
        assert not Softmax().mac_profile((10,)).is_compute


class TestCrossEntropy:
    def test_perfect_prediction_near_zero_loss(self):
        p = np.array([[1.0, 0.0], [0.0, 1.0]])
        loss, _ = cross_entropy_loss(p, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-9)

    def test_uniform_prediction_log_n(self):
        p = np.full((4, 8), 1 / 8)
        loss, _ = cross_entropy_loss(p, np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(8))

    def test_one_hot_labels_accepted(self):
        p = np.array([[0.7, 0.3]])
        by_index, _ = cross_entropy_loss(p, np.array([0]))
        by_onehot, _ = cross_entropy_loss(p, np.array([[1.0, 0.0]]))
        assert by_index == pytest.approx(by_onehot)

    def test_gradient_through_softmax_is_p_minus_y(self, rng):
        softmax = Softmax()
        logits = rng.standard_normal((3, 5))
        p = softmax.forward(logits)
        labels = np.array([0, 2, 4])
        _, grad = cross_entropy_loss(p, labels)
        through = softmax.backward(grad)
        one_hot = np.zeros_like(p)
        one_hot[np.arange(3), labels] = 1.0
        np.testing.assert_allclose(through, (p - one_hot) / 3, atol=1e-9)

    def test_rejects_bad_labels(self):
        p = np.full((2, 3), 1 / 3)
        with pytest.raises(ValueError):
            cross_entropy_loss(p, np.array([0, 5]))
        with pytest.raises(ValueError):
            cross_entropy_loss(p, np.array([0]))


class TestClassificationTraining:
    def test_learns_linearly_separable_classes(self, rng):
        n, classes = 400, 3
        centers = rng.standard_normal((classes, 4)) * 3
        labels = rng.integers(0, classes, n)
        x = centers[labels] + 0.3 * rng.standard_normal((n, 4))

        net = Network([Dense(4, 16, rng=rng), ReLU(),
                       Dense(16, classes, rng=rng), Softmax()],
                      input_shape=(4,))
        for _ in range(150):
            net.zero_gradients()
            p = net.forward(x)
            _, grad = cross_entropy_loss(p, labels)
            net.backward(grad)
            sgd_step(net, 0.5)
        accuracy = np.mean(np.argmax(net.forward(x), axis=1) == labels)
        assert accuracy > 0.95
