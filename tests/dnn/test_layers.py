"""Tests for the layer implementations: shapes, gradients, MAC profiles."""

import numpy as np
import pytest

from repro.dnn.layers import AvgPool1D, Conv1D, Dense, Flatten, ReLU, Tanh


def numeric_gradient(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(8, 4, rng=rng)
        out = layer.forward(rng.standard_normal((5, 8)))
        assert out.shape == (5, 4)

    def test_forward_matches_matmul(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.standard_normal((1, 3))
        np.testing.assert_allclose(layer.forward(x),
                                   x @ layer.weight.T + layer.bias)

    def test_input_gradient_numerically(self, rng):
        layer = Dense(6, 3, rng=rng)
        x = rng.standard_normal((2, 6))

        def loss():
            return float(np.sum(layer.forward(x) ** 2))

        layer_out = layer.forward(x)
        analytic = layer.backward(2 * layer_out)
        numeric = numeric_gradient(loss, x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_weight_gradient_numerically(self, rng):
        layer = Dense(4, 3, rng=rng)
        x = rng.standard_normal((3, 4))

        def loss():
            return float(np.sum(layer.forward(x) ** 2))

        out = layer.forward(x)
        layer.backward(2 * out)
        numeric = numeric_gradient(loss, layer.weight)
        np.testing.assert_allclose(layer.grad_weight, numeric, atol=1e-4)

    def test_shape_only_mode(self):
        layer = Dense(1000, 1000)
        assert not layer.materialized
        assert layer.n_parameters == 1000 * 1000 + 1000
        with pytest.raises(RuntimeError):
            layer.forward(np.zeros((1, 1000)))

    def test_materialize_enables_forward(self, rng):
        layer = Dense(4, 2)
        layer.materialize(rng)
        assert layer.forward(np.zeros((1, 4))).shape == (1, 2)

    def test_mac_profile(self):
        profile = Dense(256, 64).mac_profile((256,))
        assert (profile.mac_seq, profile.mac_ops) == (256, 64)

    def test_rejects_wrong_input(self, rng):
        layer = Dense(4, 2, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.standard_normal((1, 5)))


class TestConv1D:
    def test_forward_shape_same_padding(self, rng):
        layer = Conv1D(2, 8, kernel_size=7, padding=3, rng=rng)
        out = layer.forward(rng.standard_normal((3, 2, 32)))
        assert out.shape == (3, 8, 32)

    def test_forward_shape_valid(self, rng):
        layer = Conv1D(1, 1, kernel_size=4, rng=rng)
        out = layer.forward(rng.standard_normal((1, 1, 10)))
        assert out.shape == (1, 1, 7)

    def test_forward_matches_manual_correlation(self, rng):
        layer = Conv1D(1, 1, kernel_size=3, rng=rng)
        x = rng.standard_normal((1, 1, 8))
        out = layer.forward(x)
        manual = np.correlate(x[0, 0], layer.weight[0, 0], mode="valid")
        np.testing.assert_allclose(out[0, 0], manual + layer.bias[0])

    def test_input_gradient_numerically(self, rng):
        layer = Conv1D(2, 3, kernel_size=3, padding=1, rng=rng)
        x = rng.standard_normal((2, 2, 6))

        def loss():
            return float(np.sum(layer.forward(x) ** 2))

        out = layer.forward(x)
        analytic = layer.backward(2 * out)
        numeric = numeric_gradient(loss, x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_weight_gradient_numerically(self, rng):
        layer = Conv1D(1, 2, kernel_size=3, rng=rng)
        x = rng.standard_normal((2, 1, 7))

        def loss():
            return float(np.sum(layer.forward(x) ** 2))

        out = layer.forward(x)
        layer.backward(2 * out)
        numeric = numeric_gradient(loss, layer.weight)
        np.testing.assert_allclose(layer.grad_weight, numeric, atol=1e-4)

    def test_mac_profile(self):
        layer = Conv1D(2, 4, kernel_size=5, padding=2)
        profile = layer.mac_profile((2, 100))
        assert profile.mac_seq == 10  # K * in_ch
        assert profile.mac_ops == 400  # out_ch * out_len

    def test_kernel_too_large(self):
        layer = Conv1D(1, 1, kernel_size=10)
        with pytest.raises(ValueError):
            layer.output_shape((1, 5))

    def test_shape_only_mode(self):
        layer = Conv1D(4, 8, 7)
        assert layer.n_parameters == 4 * 8 * 7 + 8
        with pytest.raises(RuntimeError):
            layer.forward(np.zeros((1, 4, 10)))


class TestActivations:
    def test_relu_forward(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_relu_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]))
        grad = layer.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])

    def test_tanh_gradient_numerically(self, rng):
        layer = Tanh()
        x = rng.standard_normal((2, 4))

        def loss():
            return float(np.sum(layer.forward(x) ** 2))

        out = layer.forward(x)
        analytic = layer.backward(2 * out)
        numeric = numeric_gradient(loss, x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_no_mac_work(self):
        assert not ReLU().mac_profile((10,)).is_compute

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros((1, 1)))


class TestFlattenAndPool:
    def test_flatten_round_trip(self, rng):
        layer = Flatten()
        x = rng.standard_normal((2, 3, 4))
        out = layer.forward(x)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        assert back.shape == (2, 3, 4)

    def test_flatten_output_shape(self):
        assert Flatten().output_shape((3, 4)) == (12,)

    def test_avgpool_forward(self):
        x = np.arange(8, dtype=float).reshape(1, 1, 8)
        out = AvgPool1D(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [0.5, 2.5, 4.5, 6.5])

    def test_avgpool_backward_spreads(self):
        layer = AvgPool1D(2)
        layer.forward(np.zeros((1, 1, 4)))
        grad = layer.backward(np.array([[[2.0, 4.0]]]))
        np.testing.assert_allclose(grad[0, 0], [1.0, 1.0, 2.0, 2.0])

    def test_avgpool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            AvgPool1D(3).forward(np.zeros((1, 1, 8)))


class TestScatterCols:
    """Parity: vectorized col2im fold vs the original per-tap loop."""

    def _random_cols(self, rng, batch, out_len, channels, kernel_size):
        return rng.standard_normal((batch, out_len, channels,
                                    kernel_size))

    @pytest.mark.parametrize("batch,out_len,channels,kernel_size", [
        (1, 1, 1, 1),
        (2, 5, 3, 1),
        (2, 5, 3, 3),
        (4, 17, 2, 5),
        (3, 64, 8, 7),
    ])
    def test_scatter_cols_bit_exact_vs_reference(self, rng, batch,
                                                 out_len, channels,
                                                 kernel_size):
        from repro.dnn.layers import _scatter_cols, _scatter_cols_reference
        grad_cols = self._random_cols(rng, batch, out_len, channels,
                                      kernel_size)
        padded_len = out_len + kernel_size - 1
        fast = _scatter_cols(grad_cols, padded_len)
        slow = _scatter_cols_reference(grad_cols, padded_len)
        assert fast.shape == slow.shape == (batch, channels, padded_len)
        assert np.array_equal(fast, slow)  # bit-exact, not just close

    def test_conv_backward_uses_scatter(self, rng):
        # End-to-end: Conv1D.backward's input gradient equals the
        # reference fold applied to its column gradients.
        layer = Conv1D(2, 3, kernel_size=3, padding=1, rng=rng)
        x = rng.standard_normal((2, 2, 10))
        out = layer.forward(x)
        grad = rng.standard_normal(out.shape)
        grad_x = layer.backward(grad)
        assert grad_x.shape == x.shape
