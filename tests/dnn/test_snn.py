"""Tests for the spiking-network substrate."""

import numpy as np
import pytest

from repro.accel.tech import TECH_45NM
from repro.dnn.snn import (
    LIFLayer,
    SpikingNetwork,
    build_speech_snn,
)


class TestLIFLayer:
    def test_integrates_and_fires(self, rng):
        layer = LIFLayer(4, 1, leak=1.0 - 1e-9, threshold=1.0)
        layer.weight = np.full((1, 4), 0.3)
        layer.reset_state(1)
        spikes = np.ones((1, 4), dtype=np.int8)
        out1, _ = layer.step(spikes)  # v = 1.2 >= 1 -> fires
        assert out1[0, 0] == 1

    def test_subthreshold_accumulates(self):
        layer = LIFLayer(1, 1, leak=1.0 - 1e-9, threshold=1.0)
        layer.weight = np.array([[0.4]])
        layer.reset_state(1)
        spike = np.ones((1, 1), dtype=np.int8)
        fired = [layer.step(spike)[0][0, 0] for _ in range(3)]
        assert fired == [0, 0, 1]  # 0.4, 0.8, 1.2

    def test_reset_after_fire(self):
        layer = LIFLayer(1, 1, leak=1.0 - 1e-9, threshold=1.0)
        layer.weight = np.array([[1.5]])
        layer.reset_state(1)
        spike = np.ones((1, 1), dtype=np.int8)
        layer.step(spike)
        assert layer._membrane[0, 0] == 0.0

    def test_leak_decays_potential(self):
        layer = LIFLayer(1, 1, leak=0.5, threshold=10.0)
        layer.weight = np.array([[1.0]])
        layer.reset_state(1)
        spike = np.ones((1, 1), dtype=np.int8)
        silence = np.zeros((1, 1), dtype=np.int8)
        layer.step(spike)
        layer.step(silence)
        assert layer._membrane[0, 0] == pytest.approx(0.5)

    def test_sop_counting(self, rng):
        layer = LIFLayer(8, 16, rng=rng)
        layer.reset_state(1)
        spikes = np.zeros((1, 8), dtype=np.int8)
        spikes[0, :3] = 1
        _, sops = layer.step(spikes)
        assert sops == 3 * 16

    def test_shape_only_raises_on_step(self):
        layer = LIFLayer(4, 4)
        with pytest.raises(RuntimeError):
            layer.step(np.zeros((1, 4), dtype=np.int8))

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            LIFLayer(0, 4)
        with pytest.raises(ValueError):
            LIFLayer(4, 4, leak=1.0)
        with pytest.raises(ValueError):
            LIFLayer(4, 4, threshold=0.0)


class TestSpikingNetwork:
    def test_run_shapes_and_rates(self, rng):
        net = build_speech_snn(64, rng=rng)
        rates = rng.uniform(0.0, 0.5, (3, 64))
        result = net.run(rates, timesteps=50, rng=rng)
        assert result.output_rates.shape == (3, 40)
        assert np.all((result.output_rates >= 0)
                      & (result.output_rates <= 1))

    def test_activity_drives_sops(self, rng):
        net = build_speech_snn(32, rng=rng)
        quiet = net.run(np.full((1, 32), 0.02), 50, rng).total_sops
        busy = net.run(np.full((1, 32), 0.8), 50, rng).total_sops
        assert busy > 3 * quiet

    def test_silence_costs_no_sops_in_layer_one(self, rng):
        net = SpikingNetwork([LIFLayer(8, 8, rng=rng)])
        result = net.run(np.zeros((1, 8)), 20, rng)
        assert result.total_sops == 0

    def test_expected_sops_tracks_simulation(self, rng):
        net = SpikingNetwork([LIFLayer(64, 64, rng=rng)])
        rate = 0.3
        result = net.run(np.full((1, 64), rate), 200, rng)
        expected = net.expected_sops(rate, 200)
        assert result.total_sops == pytest.approx(expected, rel=0.1)

    def test_synapse_and_neuron_counts(self, rng):
        net = SpikingNetwork([LIFLayer(8, 4, rng=rng),
                              LIFLayer(4, 2, rng=rng)])
        assert net.n_synapses == 8 * 4 + 4 * 2
        assert net.n_neurons == 6

    def test_layer_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            SpikingNetwork([LIFLayer(8, 4, rng=rng),
                            LIFLayer(5, 2, rng=rng)])

    def test_rejects_bad_rates(self, rng):
        net = build_speech_snn(16, rng=rng)
        with pytest.raises(ValueError):
            net.run(np.full((1, 16), 1.5), 10, rng)
        with pytest.raises(ValueError):
            net.run(np.zeros((1, 16)), 0, rng)


class TestSnnEnergy:
    def test_sparse_snn_cheaper_than_mlp_lower_bound(self, rng):
        # The Hueber et al. argument: at sparse activity, SNN inference
        # energy undercuts an equivalent dense MLP's MAC energy.
        from repro.dnn.models import build_speech_mlp
        n = 128
        snn = build_speech_snn(n, rng=rng)
        mlp = build_speech_mlp(n)
        timesteps = 16
        sops = snn.expected_sops(mean_input_rate=0.05,
                                 timesteps=timesteps)
        snn_energy = snn.energy_per_inference_j(sops, timesteps)
        mlp_energy = mlp.total_macs * TECH_45NM.energy_per_mac_j
        assert snn_energy < mlp_energy

    def test_power_scales_with_inference_rate(self, rng):
        snn = build_speech_snn(32, rng=rng)
        sops = snn.expected_sops(0.1, 16)
        assert snn.power_w(sops, 16, 200.0) == pytest.approx(
            2 * snn.power_w(sops, 16, 100.0))

    def test_power_rejects_bad_rate(self, rng):
        snn = build_speech_snn(32, rng=rng)
        with pytest.raises(ValueError):
            snn.power_w(100.0, 16, 0.0)

    def test_expected_sops_validates_rate(self, rng):
        snn = build_speech_snn(32, rng=rng)
        with pytest.raises(ValueError):
            snn.expected_sops(1.5, 16)
