"""Tests for the networkx dataflow-graph partitioner."""

import networkx as nx
import pytest

from repro.dnn.graph import (
    SINK,
    SOURCE,
    best_cut,
    build_dataflow_graph,
    enumerate_cuts,
    prefix_cut_equivalence,
)
from repro.dnn.layers import Dense, ReLU
from repro.dnn.models import build_speech_dncnn, build_speech_mlp
from repro.dnn.network import Network


def chain_network():
    return Network([Dense(100, 50), ReLU(),
                    Dense(50, 2000), ReLU(),
                    Dense(2000, 10)], input_shape=(100,))


class TestGraphConstruction:
    def test_node_and_edge_counts(self):
        graph = build_dataflow_graph(chain_network())
        assert graph.number_of_nodes() == 5  # source + 3 layers + sink
        assert graph.number_of_edges() == 4

    def test_is_dag(self):
        graph = build_dataflow_graph(build_speech_mlp(512))
        assert nx.is_directed_acyclic_graph(graph)

    def test_edge_values_are_activation_sizes(self):
        graph = build_dataflow_graph(chain_network())
        assert graph.edges[SOURCE, "layer_1"]["values"] == 100
        assert graph.edges["layer_1", "layer_2"]["values"] == 50
        assert graph.edges["layer_2", "layer_3"]["values"] == 2000
        assert graph.edges["layer_3", SINK]["values"] == 10

    def test_node_macs_match_profiles(self):
        net = chain_network()
        graph = build_dataflow_graph(net)
        total = sum(graph.nodes[n]["macs"] for n in graph.nodes)
        assert total == net.total_macs


class TestCutEnumeration:
    def test_chain_has_prefix_cuts(self):
        graph = build_dataflow_graph(chain_network())
        cuts = enumerate_cuts(graph)
        # Source-only plus one per layer prefix = 4 downward-closed sets.
        assert len(cuts) == 4

    def test_cuts_are_downward_closed(self):
        graph = build_dataflow_graph(chain_network())
        for cut in enumerate_cuts(graph):
            for node in cut.implant_nodes:
                for pred in graph.predecessors(node):
                    assert pred in cut.implant_nodes


class TestBestCut:
    def test_avoids_wide_boundary(self):
        # Cutting after layer_2 would transmit 2000 values; the best cut
        # under a 1024 budget stops at layer_1 (50 values) or runs the
        # whole net (10 values) — and layer_1 keeps less compute.
        graph = build_dataflow_graph(chain_network())
        cut = best_cut(graph, max_values=1024)
        assert "layer_2" not in cut.implant_nodes
        assert cut.crossing_values <= 1024

    def test_minimizes_implant_macs(self):
        graph = build_dataflow_graph(chain_network())
        cut = best_cut(graph, max_values=1024)
        admissible = [c for c in enumerate_cuts(graph)
                      if c.crossing_values <= 1024]
        assert cut.implant_macs == min(c.implant_macs for c in admissible)

    def test_source_only_cut_wins_small_inputs(self):
        # With a 100-value input under the budget, transmitting raw input
        # (zero implant compute) is optimal.
        graph = build_dataflow_graph(chain_network())
        cut = best_cut(graph, max_values=1024)
        assert cut.implant_macs == 0

    def test_raises_when_nothing_fits(self):
        net = Network([Dense(5000, 4000), ReLU(), Dense(4000, 3000)],
                      input_shape=(5000,))
        graph = build_dataflow_graph(net)
        with pytest.raises(ValueError):
            best_cut(graph, max_values=1024)


class TestPrefixEquivalence:
    def test_mlp_prefix_matches_partitioning_module(self):
        # For n > 1024 the raw input no longer fits, so the graph cut
        # must agree with the Section 6.1 prefix machinery.
        net = build_speech_mlp(2048)
        prefix, macs = prefix_cut_equivalence(net, max_values=1024)
        from repro.core.partitioning import admissible_splits
        splits = admissible_splits(net, max_values=1024)
        # The graph's optimum is the bottleneck split (least implant MACs
        # among admissible prefixes); check consistency.
        assert prefix in splits
        assert macs == net.head(prefix).total_macs

    def test_dncnn_has_no_interior_cut(self):
        net = build_speech_dncnn(2048)
        prefix, macs = prefix_cut_equivalence(net, max_values=1024)
        # Only the full-network cut (crossing = 40 outputs) is admissible.
        assert prefix == net.n_compute_layers
        assert macs == net.total_macs
