"""Tests for the Network container, fMAC, and head splitting."""

import numpy as np
import pytest

from repro.dnn.layers import Dense, Flatten, ReLU
from repro.dnn.network import Network, fmac


def small_net(rng=None) -> Network:
    return Network([
        Dense(8, 6, rng=rng), ReLU(),
        Dense(6, 4, rng=rng), ReLU(),
        Dense(4, 2, rng=rng),
    ], input_shape=(8,), name="tiny")


class TestNetwork:
    def test_shape_inference(self):
        net = small_net()
        assert net.output_shape == (2,)
        assert net.output_values == 2

    def test_incompatible_layers_rejected_at_build(self):
        with pytest.raises(ValueError):
            Network([Dense(8, 6), Dense(5, 2)], input_shape=(8,))

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Network([], input_shape=(4,))

    def test_forward_shape(self, rng):
        net = small_net(rng)
        assert net.forward(rng.standard_normal((3, 8))).shape == (3, 2)

    def test_forward_rejects_wrong_shape(self, rng):
        net = small_net(rng)
        with pytest.raises(ValueError):
            net.forward(rng.standard_normal((3, 7)))

    def test_compute_layer_count_skips_activations(self):
        assert small_net().n_compute_layers == 3

    def test_total_macs(self):
        assert small_net().total_macs == 8 * 6 + 6 * 4 + 4 * 2

    def test_n_parameters(self):
        expected = (8 * 6 + 6) + (6 * 4 + 4) + (4 * 2 + 2)
        assert small_net().n_parameters == expected

    def test_compute_layer_output_values(self):
        assert small_net().compute_layer_output_values() == [6, 4, 2]


class TestFmac:
    def test_eq10_lists(self):
        seqs, ops = fmac(small_net())
        assert seqs == [8, 6, 4]
        assert ops == [6, 4, 2]

    def test_flatten_not_counted(self):
        net = Network([Flatten(), Dense(12, 4)], input_shape=(3, 4))
        seqs, ops = fmac(net)
        assert seqs == [12]
        assert ops == [4]


class TestHead:
    def test_head_keeps_prefix(self):
        head = small_net().head(2)
        assert head.n_compute_layers == 2
        assert head.output_shape == (4,)

    def test_head_includes_trailing_activation(self):
        head = small_net().head(1)
        # Dense + ReLU kept.
        assert len(head.layers) == 2
        assert head.output_shape == (6,)

    def test_head_full_network(self):
        head = small_net().head(3)
        assert head.n_compute_layers == 3

    def test_head_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            small_net().head(0)
        with pytest.raises(ValueError):
            small_net().head(4)

    def test_head_forward_matches_prefix(self, rng):
        net = small_net(rng)
        head = net.head(2)
        x = rng.standard_normal((2, 8))
        expected = x
        for layer in net.layers[:4]:
            expected = layer.forward(expected)
        np.testing.assert_allclose(head.forward(x), expected)

    def test_head_macs_below_full(self):
        net = small_net()
        assert net.head(2).total_macs < net.total_macs


class TestGradients:
    def test_zero_gradients_resets(self, rng):
        net = small_net(rng)
        out = net.forward(rng.standard_normal((2, 8)))
        net.backward(np.ones_like(out))
        first_dense = net.layers[0]
        assert np.any(first_dense.grad_weight != 0)
        net.zero_gradients()
        assert np.all(first_dense.grad_weight == 0)
