"""Tests for MAC accounting, pinning the Fig. 8 worked examples."""

import pytest

from repro.dnn.macs import (
    NO_MACS,
    LayerMacs,
    fmac_conv1d,
    fmac_conv_example,
    fmac_dense,
    fmac_matmul_example,
)


class TestFig8Examples:
    def test_matmul_example_matches_paper(self):
        # Fig. 8 top: #MACop = 4, MACseq = 3.
        profile = fmac_matmul_example()
        assert profile.mac_ops == 4
        assert profile.mac_seq == 3

    def test_conv_example_matches_paper(self):
        # Fig. 8 bottom: #MACop = 4, MACseq = 8.
        profile = fmac_conv_example()
        assert profile.mac_ops == 4
        assert profile.mac_seq == 8


class TestLayerMacs:
    def test_total(self):
        assert LayerMacs(mac_seq=3, mac_ops=4).total_macs == 12

    def test_no_macs_sentinel(self):
        assert not NO_MACS.is_compute
        assert NO_MACS.total_macs == 0

    def test_compute_flag(self):
        assert LayerMacs(1, 1).is_compute

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LayerMacs(-1, 2)


class TestDenseProfile:
    def test_dims(self):
        profile = fmac_dense(256, 128)
        assert profile.mac_seq == 256
        assert profile.mac_ops == 128
        assert profile.total_macs == 256 * 128

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            fmac_dense(0, 10)


class TestConvProfile:
    def test_dims(self):
        profile = fmac_conv1d(in_channels=2, out_channels=1, kernel_size=4,
                              output_length=4)
        assert profile.mac_seq == 8
        assert profile.mac_ops == 4

    def test_total_matches_standard_count(self):
        profile = fmac_conv1d(8, 16, 7, 1024)
        assert profile.total_macs == 8 * 16 * 7 * 1024

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            fmac_conv1d(1, 1, 0, 1)
