"""Shared fixtures for the MINDFUL reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scaling import ScaledSoC, scale_to_standard
from repro.core.socs import TABLE1, soc_by_number, wireless_socs


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def bisc() -> ScaledSoC:
    """SoC 1 (BISC) scaled to the 1024-channel standard."""
    return scale_to_standard(soc_by_number(1))


@pytest.fixture
def neuralink() -> ScaledSoC:
    """SoC 3 (Neuralink) scaled to the 1024-channel standard."""
    return scale_to_standard(soc_by_number(3))


@pytest.fixture
def all_scaled() -> list[ScaledSoC]:
    """Every Table 1 design scaled to 1024 channels."""
    return [scale_to_standard(record) for record in TABLE1]


@pytest.fixture
def wireless_scaled() -> list[ScaledSoC]:
    """SoCs 1-8 scaled to 1024 channels."""
    return [scale_to_standard(record) for record in wireless_socs()]
