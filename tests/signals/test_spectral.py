"""Tests for spectral feature extraction."""

import numpy as np
import pytest

from repro.signals.spectral import (
    CANONICAL_BANDS,
    EnvelopeExtractor,
    band_power,
    band_power_features,
    welch_psd,
)

FS = 2000.0


def tone(freq_hz: float, duration_s: float = 4.0,
         amplitude: float = 1.0) -> np.ndarray:
    t = np.arange(int(duration_s * FS)) / FS
    return amplitude * np.sin(2 * np.pi * freq_hz * t)


class TestWelch:
    def test_peak_at_tone_frequency(self):
        freqs, psd = welch_psd(tone(100.0), FS)
        assert freqs[np.argmax(psd)] == pytest.approx(100.0, abs=4.0)

    def test_multichannel_shape(self, rng):
        data = rng.standard_normal((4, 4000))
        freqs, psd = welch_psd(data, FS)
        assert psd.shape == (4, freqs.size)

    def test_rejects_short_data(self):
        with pytest.raises(ValueError):
            welch_psd(np.zeros(10), FS, segment_s=0.25)


class TestBandPower:
    def test_tone_power_lands_in_its_band(self):
        x = tone(100.0)
        inside = band_power(x, FS, 70.0, 170.0)
        outside = band_power(x, FS, 1.0, 30.0)
        assert inside > 100 * outside

    def test_parseval_like_scaling(self):
        weak = band_power(tone(100.0, amplitude=1.0), FS, 70.0, 170.0)
        strong = band_power(tone(100.0, amplitude=2.0), FS, 70.0, 170.0)
        assert strong == pytest.approx(4.0 * weak, rel=0.05)

    def test_rejects_band_above_nyquist(self):
        with pytest.raises(ValueError):
            band_power(tone(10.0), FS, 100.0, 2000.0)

    def test_rejects_inverted_band(self):
        with pytest.raises(ValueError):
            band_power(tone(10.0), FS, 50.0, 20.0)


class TestFeatureMatrix:
    def test_shape_uses_all_canonical_bands(self, rng):
        data = rng.standard_normal((3, 4000))
        features = band_power_features(data, FS)
        assert features.shape == (3, len(CANONICAL_BANDS))

    def test_low_rate_ni_drops_high_bands(self, rng):
        # A 200 Hz NI cannot carry high gamma (70-170 fits under 100 only
        # partially) — bands above Nyquist are skipped.
        data = rng.standard_normal((2, 2000))
        features = band_power_features(data, 200.0)
        assert features.shape[1] < len(CANONICAL_BANDS)

    def test_feature_separates_band_content(self):
        alpha_heavy = tone(10.0)
        gamma_heavy = tone(100.0)
        data = np.stack([alpha_heavy, gamma_heavy])
        features = band_power_features(data, FS)
        names = list(CANONICAL_BANDS)
        alpha_idx = names.index("alpha")
        hg_idx = names.index("high_gamma")
        assert features[0, alpha_idx] > features[0, hg_idx]
        assert features[1, hg_idx] > features[1, alpha_idx]


class TestEnvelope:
    def test_frame_count(self, rng):
        data = rng.standard_normal((4, 4000))
        frames = EnvelopeExtractor(frame_s=0.05).frames(data, FS)
        assert frames.shape == (40, 4)  # 2 s / 50 ms

    def test_tracks_amplitude_modulation(self):
        # High-gamma carrier with a slow on/off envelope.
        carrier = tone(100.0, duration_s=2.0)
        gate = np.zeros_like(carrier)
        gate[:len(gate) // 2] = 1.0
        data = (carrier * gate)[None, :]
        frames = EnvelopeExtractor(frame_s=0.1).frames(data, FS)
        first_half = frames[:8, 0].mean()
        second_half = frames[12:, 0].mean()
        assert first_half > 5 * second_half

    def test_rejects_short_recording(self, rng):
        with pytest.raises(ValueError):
            EnvelopeExtractor(frame_s=1.0).frames(
                rng.standard_normal((1, 100)), FS)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            EnvelopeExtractor(frame_s=0.0)
        with pytest.raises(ValueError):
            EnvelopeExtractor(band_hz=(100.0, 50.0))
