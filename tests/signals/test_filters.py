"""Tests for the DSP conditioning filters."""

import numpy as np
import pytest

from repro.signals.filters import (
    bandpass,
    common_average_reference,
    lfp_band,
    notch,
    spike_band,
)

FS = 10_000.0


def tone(freq_hz: float, duration_s: float = 1.0) -> np.ndarray:
    t = np.arange(int(duration_s * FS)) / FS
    return np.sin(2 * np.pi * freq_hz * t)


def band_power(x: np.ndarray) -> float:
    return float(np.mean(x[500:-500] ** 2))  # trim filter edges


class TestBandpass:
    def test_passes_in_band(self):
        x = tone(1000.0)
        y = bandpass(x, 300.0, 3000.0, FS)
        assert band_power(y) == pytest.approx(band_power(x), rel=0.05)

    def test_rejects_out_of_band(self):
        low, high = tone(10.0), tone(4500.0)
        assert band_power(bandpass(low, 300.0, 3000.0, FS)) < \
            0.01 * band_power(low)
        assert band_power(bandpass(high, 300.0, 3000.0, FS)) < \
            0.05 * band_power(high)

    def test_zero_phase(self):
        # filtfilt: an in-band tone must not be delayed.
        x = tone(1000.0)
        y = bandpass(x, 300.0, 3000.0, FS)
        lag = np.argmax(np.correlate(y[1000:2000], x[1000:2000], "full"))
        assert abs(lag - 999) <= 1

    def test_multichannel(self, rng):
        data = rng.standard_normal((4, 5000))
        out = bandpass(data, 300.0, 3000.0, FS)
        assert out.shape == data.shape

    def test_rejects_bad_band(self):
        with pytest.raises(ValueError):
            bandpass(np.zeros(100), 3000.0, 300.0, FS)
        with pytest.raises(ValueError):
            bandpass(np.zeros(100), 300.0, 6000.0, FS)


class TestNotch:
    def test_kills_mains(self):
        x = tone(60.0, duration_s=2.0)
        y = notch(x, 60.0, FS)
        assert band_power(y) < 0.05 * band_power(x)

    def test_preserves_neighbours(self):
        x = tone(120.0, duration_s=2.0)
        y = notch(x, 60.0, FS)
        assert band_power(y) == pytest.approx(band_power(x), rel=0.1)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            notch(np.zeros(100), 6000.0, FS)
        with pytest.raises(ValueError):
            notch(np.zeros(100), 60.0, FS, quality=0.0)


class TestCar:
    def test_removes_shared_component(self, rng):
        shared = tone(25.0)
        data = np.stack([shared + 0.1 * rng.standard_normal(shared.size)
                         for _ in range(8)])
        out = common_average_reference(data)
        assert band_power(out[0]) < 0.05 * band_power(data[0])

    def test_zero_mean_across_channels(self, rng):
        data = rng.standard_normal((6, 1000))
        out = common_average_reference(data)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-12)

    def test_rejects_single_channel(self, rng):
        with pytest.raises(ValueError):
            common_average_reference(rng.standard_normal((1, 100)))


class TestBandHelpers:
    def test_spike_band_passes_spikes(self):
        x = tone(1000.0)
        assert band_power(spike_band(x, FS)) > 0.8 * band_power(x)

    def test_lfp_band_passes_lfp(self):
        x = tone(20.0, duration_s=2.0)
        assert band_power(lfp_band(x, FS)) > 0.8 * band_power(x)

    def test_bands_are_complementary(self):
        x = tone(20.0, duration_s=2.0) + tone(1000.0, duration_s=2.0)
        spikes = spike_band(x, FS)
        lfp = lfp_band(x, FS)
        # Each band retains about half the mixed power.
        assert band_power(spikes) == pytest.approx(0.5, rel=0.2)
        assert band_power(lfp) == pytest.approx(0.5, rel=0.2)

    def test_low_rate_ni_caps_bands(self):
        # A 1 kHz NI (Muller) cannot carry a 6 kHz spike band; the helper
        # must clamp below Nyquist instead of raising.
        x = np.random.default_rng(0).standard_normal(2000)
        out = lfp_band(x, 1000.0)
        assert out.shape == x.shape
