"""Tests for spike-train and template generation."""

import numpy as np
import pytest

from repro.signals.spikes import (
    SpikeUnit,
    biphasic_spike_template,
    exponential_spike_template,
    poisson_spike_train,
    render_spike_waveform,
)


class TestTemplates:
    def test_exponential_is_negative_going(self):
        template = exponential_spike_template(30e3)
        assert template[0] == pytest.approx(-1.0)
        assert np.all(template <= 0)

    def test_exponential_decays(self):
        template = exponential_spike_template(30e3, decay_s=2e-4)
        assert abs(template[-1]) < abs(template[0])

    def test_exponential_length(self):
        template = exponential_spike_template(30e3, duration_s=2e-3)
        assert template.size == 60

    def test_biphasic_has_trough_and_hump(self):
        template = biphasic_spike_template(30e3)
        assert template.min() == pytest.approx(-1.0, abs=1e-9)
        assert template.max() > 0.0

    def test_biphasic_amplitude_scaling(self):
        template = biphasic_spike_template(30e3, amplitude=3.0)
        assert np.max(np.abs(template)) == pytest.approx(3.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            exponential_spike_template(0.0)


class TestPoissonTrain:
    def test_rate_is_approximately_respected(self, rng):
        rate, duration, fs = 50.0, 20.0, 10e3
        train = poisson_spike_train(rate, duration, fs, rng,
                                    refractory_s=0.0)
        measured = train.sum() / duration
        assert measured == pytest.approx(rate, rel=0.15)

    def test_refractory_enforced(self, rng):
        train = poisson_spike_train(400.0, 5.0, 10e3, rng,
                                    refractory_s=5e-3)
        spikes = np.flatnonzero(train)
        gaps = np.diff(spikes)
        assert np.all(gaps > 50)

    def test_zero_rate_is_silent(self, rng):
        train = poisson_spike_train(0.0, 1.0, 10e3, rng)
        assert train.sum() == 0

    def test_time_varying_rate(self, rng):
        rates = np.concatenate([np.zeros(5000), np.full(5000, 100.0)])
        train = poisson_spike_train(rates, 0.0, 10e3, rng,
                                    refractory_s=0.0)
        assert train[:5000].sum() == 0
        assert train[5000:].sum() > 0

    def test_rejects_negative_rates(self, rng):
        with pytest.raises(ValueError):
            poisson_spike_train(-1.0, 1.0, 10e3, rng)


class TestRenderWaveform:
    def test_single_spike_places_template(self):
        template = np.array([-1.0, -0.5, -0.25])
        wave = render_spike_waveform(np.array([2]), template, 10)
        assert wave[2] == pytest.approx(-1.0)
        assert wave[4] == pytest.approx(-0.25)
        assert wave[0] == 0.0

    def test_truncates_at_buffer_end(self):
        template = np.array([-1.0, -0.5, -0.25])
        wave = render_spike_waveform(np.array([9]), template, 10)
        assert wave[9] == pytest.approx(-1.0)

    def test_overlapping_spikes_superpose(self):
        template = np.array([-1.0, -1.0])
        wave = render_spike_waveform(np.array([0, 1]), template, 4)
        assert wave[1] == pytest.approx(-2.0)

    def test_amplitude_scaling(self):
        template = np.array([-1.0])
        wave = render_spike_waveform(np.array([0]), template, 2,
                                     amplitude=4.0)
        assert wave[0] == pytest.approx(-4.0)

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValueError):
            render_spike_waveform(np.array([10]), np.array([-1.0]), 10)


class TestSpikeUnit:
    def test_spike_times_uses_rate(self, rng):
        unit = SpikeUnit(rate_hz=100.0)
        times = unit.spike_times(10.0, 10e3, rng)
        assert 300 < times.size < 2000  # refractory thins the train

    def test_channel_weights_default_empty(self):
        assert SpikeUnit(rate_hz=1.0).channel_weights == {}
