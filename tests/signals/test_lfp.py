"""Tests for field-potential synthesis."""

import numpy as np
import pytest

from repro.signals.lfp import (
    DEFAULT_BANDS,
    OscillatoryBand,
    pink_noise,
    synthesize_ecog,
)


class TestPinkNoise:
    def test_unit_rms(self, rng):
        noise = pink_noise(16384, rng)
        assert np.sqrt(np.mean(noise ** 2)) == pytest.approx(1.0, rel=1e-6)

    def test_spectral_slope_is_pink(self, rng):
        noise = pink_noise(1 << 16, rng, exponent=1.0)
        spectrum = np.abs(np.fft.rfft(noise)) ** 2
        freqs = np.fft.rfftfreq(noise.size)
        lo = spectrum[(freqs > 0.001) & (freqs < 0.01)].mean()
        hi = spectrum[(freqs > 0.1) & (freqs < 0.5)].mean()
        assert lo > 10 * hi  # low frequencies dominate

    def test_white_noise_flat(self, rng):
        noise = pink_noise(1 << 16, rng, exponent=0.0)
        spectrum = np.abs(np.fft.rfft(noise)) ** 2
        freqs = np.fft.rfftfreq(noise.size)
        lo = spectrum[(freqs > 0.001) & (freqs < 0.01)].mean()
        hi = spectrum[(freqs > 0.1) & (freqs < 0.5)].mean()
        assert lo == pytest.approx(hi, rel=0.5)

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            pink_noise(0, rng)


class TestOscillatoryBand:
    def test_valid_band(self):
        band = OscillatoryBand(center_hz=10.0, bandwidth_hz=4.0,
                               amplitude=0.5)
        assert band.center_hz == 10.0

    def test_rejects_bad_frequencies(self):
        with pytest.raises(ValueError):
            OscillatoryBand(center_hz=0.0, bandwidth_hz=1.0, amplitude=1.0)

    def test_rejects_negative_amplitude(self):
        with pytest.raises(ValueError):
            OscillatoryBand(center_hz=10.0, bandwidth_hz=1.0,
                            amplitude=-0.1)

    def test_default_bands_are_valid(self):
        assert len(DEFAULT_BANDS) >= 3


class TestSynthesizeEcog:
    def test_output_shape(self, rng):
        data = synthesize_ecog(8, 0.5, 2000.0, rng)
        assert data.shape == (8, 1000)

    def test_spatial_correlation_increases_with_parameter(self, rng):
        def mean_corr(rho: float) -> float:
            data = synthesize_ecog(6, 2.0, 1000.0, rng,
                                   spatial_correlation=rho, noise_rms=0.05)
            corr = np.corrcoef(data)
            off_diag = corr[~np.eye(6, dtype=bool)]
            return float(off_diag.mean())

        assert mean_corr(0.9) > mean_corr(0.1)

    def test_band_power_present(self, rng):
        data = synthesize_ecog(2, 4.0, 1000.0, rng, noise_rms=0.0)
        spectrum = np.abs(np.fft.rfft(data[0])) ** 2
        freqs = np.fft.rfftfreq(data.shape[1], d=1 / 1000.0)
        alpha = spectrum[(freqs > 8) & (freqs < 12)].mean()
        gap = spectrum[(freqs > 150) & (freqs < 200)].mean()
        assert alpha > gap

    def test_rejects_bad_parameters(self, rng):
        with pytest.raises(ValueError):
            synthesize_ecog(0, 1.0, 1000.0, rng)
        with pytest.raises(ValueError):
            synthesize_ecog(4, 1.0, 1000.0, rng, spatial_correlation=1.5)
        with pytest.raises(ValueError):
            synthesize_ecog(4, 0.0, 1000.0, rng)
