"""Tests for the sinusoidal vocoder."""

import numpy as np
import pytest

from repro.signals.audio import SinusoidalVocoder, mel_like_frequencies


@pytest.fixture
def vocoder():
    return SinusoidalVocoder(frequencies_hz=mel_like_frequencies(40),
                             sampling_rate_hz=16_000.0,
                             frame_rate_hz=100.0)


class TestFrequencies:
    def test_count_and_range(self):
        freqs = mel_like_frequencies(40, 100.0, 6000.0)
        assert freqs.size == 40
        assert freqs[0] == pytest.approx(100.0)
        assert freqs[-1] == pytest.approx(6000.0)

    def test_log_spacing(self):
        freqs = mel_like_frequencies(10)
        ratios = freqs[1:] / freqs[:-1]
        np.testing.assert_allclose(ratios, ratios[0], rtol=1e-9)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            mel_like_frequencies(0)
        with pytest.raises(ValueError):
            mel_like_frequencies(10, 500.0, 100.0)


class TestSynthesis:
    def test_output_length(self, vocoder):
        frames = np.zeros((25, 40))
        frames[:, 10] = 1.0
        audio = vocoder.synthesize(frames)
        assert audio.size == 25 * vocoder.samples_per_frame

    def test_silence_stays_silent(self, vocoder):
        audio = vocoder.synthesize(np.zeros((10, 40)))
        assert np.all(audio == 0.0)

    def test_peak_normalized(self, vocoder, rng):
        frames = rng.uniform(0, 1, (20, 40))
        audio = vocoder.synthesize(frames)
        assert np.max(np.abs(audio)) == pytest.approx(1.0)

    def test_single_bin_produces_pure_tone(self, vocoder):
        frames = np.zeros((50, 40))
        frames[:, 20] = 1.0
        audio = vocoder.synthesize(frames)
        spectrum = np.abs(np.fft.rfft(audio))
        freqs = np.fft.rfftfreq(audio.size, 1 / 16_000.0)
        peak_freq = freqs[np.argmax(spectrum)]
        assert peak_freq == pytest.approx(vocoder.frequencies_hz[20],
                                          rel=0.02)

    def test_negative_amplitudes_clipped(self, vocoder):
        frames = np.full((10, 40), -1.0)
        audio = vocoder.synthesize(frames)
        assert np.all(audio == 0.0)

    def test_rejects_wrong_width(self, vocoder):
        with pytest.raises(ValueError):
            vocoder.synthesize(np.zeros((10, 39)))


class TestAnalysisRoundTrip:
    def test_analysis_recovers_active_bins(self, vocoder):
        frames = np.zeros((40, 40))
        frames[:20, 5] = 1.0
        frames[20:, 30] = 1.0
        audio = vocoder.synthesize(frames)
        recovered = vocoder.analyze(audio)
        early = recovered[5:15]
        late = recovered[25:35]
        assert early[:, 5].mean() > 3 * early[:, 30].mean()
        assert late[:, 30].mean() > 3 * late[:, 5].mean()

    def test_end_to_end_with_speech_decoder(self, vocoder, rng):
        # Close the paper's loop: synthetic ECoG features -> trained MLP
        # -> 40 decoded bins -> audio.
        from repro.decoders import DnnDecoder
        from repro.dnn.models import build_speech_mlp
        from repro.signals.datasets import make_speech_dataset

        data = make_speech_dataset(32, 300, rng, window=2)
        net = build_speech_mlp(32, rng=rng, window=2)
        decoder = DnnDecoder(net, epochs=5, learning_rate=0.05)
        decoder.fit(data.features, data.targets, rng)
        decoded = decoder.decode(data.features[:30])
        audio = vocoder.synthesize(np.maximum(decoded, 0.0))
        assert audio.size == 30 * vocoder.samples_per_frame
        assert np.isfinite(audio).all()


class TestValidation:
    def test_rejects_frequency_above_nyquist(self):
        with pytest.raises(ValueError):
            SinusoidalVocoder(frequencies_hz=np.array([9000.0]),
                              sampling_rate_hz=16_000.0)

    def test_rejects_empty_bank(self):
        with pytest.raises(ValueError):
            SinusoidalVocoder(frequencies_hz=np.array([]))

    def test_rejects_bad_frame_rate(self):
        with pytest.raises(ValueError):
            SinusoidalVocoder(frequencies_hz=np.array([100.0]),
                              frame_rate_hz=0.0)
