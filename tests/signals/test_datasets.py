"""Tests for the synthetic decoding datasets."""

import numpy as np
import pytest

from repro.signals.datasets import (
    SPEECH_OUTPUT_BINS,
    make_cursor_dataset,
    make_speech_dataset,
)


class TestCursorDataset:
    def test_shapes(self, rng):
        data = make_cursor_dataset(32, 500, rng)
        assert data.features.shape == (500, 32)
        assert data.velocity.shape == (500, 2)
        assert data.position.shape == (500, 2)

    def test_position_integrates_velocity(self, rng):
        data = make_cursor_dataset(8, 100, rng, dt_s=0.02)
        expected = np.cumsum(data.velocity * 0.02, axis=0)
        np.testing.assert_allclose(data.position, expected)

    def test_features_carry_velocity_information(self, rng):
        data = make_cursor_dataset(64, 2000, rng, noise_rms=0.1)
        # Linear regression from features to velocity should beat chance.
        w, *_ = np.linalg.lstsq(data.features, data.velocity, rcond=None)
        pred = data.features @ w
        corr = np.corrcoef(pred[:, 0], data.velocity[:, 0])[0, 1]
        assert corr > 0.5

    def test_velocity_is_bounded(self, rng):
        data = make_cursor_dataset(4, 5000, rng)
        assert np.max(np.abs(data.velocity)) < 20.0

    def test_rejects_bad_sizes(self, rng):
        with pytest.raises(ValueError):
            make_cursor_dataset(0, 100, rng)
        with pytest.raises(ValueError):
            make_cursor_dataset(4, 0, rng)


class TestSpeechDataset:
    def test_shapes(self, rng):
        data = make_speech_dataset(16, 200, rng, window=4)
        assert data.features.shape == (200, 64)
        assert data.targets.shape == (200, SPEECH_OUTPUT_BINS)
        assert data.n_channels == 16
        assert data.window == 4

    def test_targets_bounded_by_tanh(self, rng):
        data = make_speech_dataset(8, 100, rng)
        assert np.max(np.abs(data.targets)) <= 1.0

    def test_mapping_is_learnable(self, rng):
        data = make_speech_dataset(32, 3000, rng, noise_rms=0.05)
        w, *_ = np.linalg.lstsq(data.features, data.targets, rcond=None)
        pred = data.features @ w
        corr = np.corrcoef(pred[:, 0], data.targets[:, 0])[0, 1]
        assert corr > 0.5

    def test_output_bins_match_paper(self):
        assert SPEECH_OUTPUT_BINS == 40

    def test_rejects_bad_sizes(self, rng):
        with pytest.raises(ValueError):
            make_speech_dataset(8, 100, rng, window=0)
