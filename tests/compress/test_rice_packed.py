"""Parity and robustness tests for the packed Rice codec.

The string codec in :mod:`repro.compress.rice` is the oracle: the packed
production codec must produce a bit-for-bit identical stream and decode
it back exactly, for every k and every residual distribution — including
the checkpoint-index fast path and its serial-chain fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compress.rice import (
    CHECKPOINT_INTERVAL,
    PackedBits,
    _chain_terminators,
    optimal_rice_parameter,
    optimal_rice_parameters,
    pack_bitstring,
    rice_decode,
    rice_decode_packed,
    rice_encode,
    rice_encode_packed,
    zigzag,
)


def _random_block(rng, n, spread):
    return rng.integers(-spread, spread + 1, size=n).astype(np.int64)


@pytest.mark.parametrize("spread", [1, 5, 50, 400, 12000])
@pytest.mark.parametrize("n", [1, 63, 64, 65, 1000])
def test_packed_stream_matches_string_oracle(rng, spread, n):
    values = _random_block(rng, n, spread)
    k = optimal_rice_parameter(values)
    stream = rice_encode_packed(values, k)
    assert stream.to_string() == rice_encode(values, k)
    assert np.array_equal(rice_decode_packed(stream, k, n), values)


@pytest.mark.parametrize("k", [0, 1, 2, 7, 13, 24, 30])
def test_round_trip_at_fixed_k(rng, k):
    values = _random_block(rng, 700, 90)
    stream = rice_encode_packed(values, k)
    assert stream.to_string() == rice_encode(values, k)
    decoded = rice_decode_packed(stream, k, values.size)
    assert np.array_equal(decoded, values)


def test_checkpoints_cover_every_interval(rng):
    values = _random_block(rng, 1000, 50)
    stream = rice_encode_packed(values, 5)
    expected = -(-values.size // CHECKPOINT_INTERVAL)
    assert stream.checkpoints is not None
    assert stream.checkpoints.size == expected
    assert stream.checkpoints[0] == 0


def test_pack_bitstring_fallback_decodes_without_checkpoints(rng):
    """A stream packed from raw bits has no seek index; the decoder must
    fall back to the serial chain and still match the oracle."""
    values = _random_block(rng, 500, 200)
    k = optimal_rice_parameter(values)
    bits = rice_encode(values, k)
    stream = pack_bitstring(bits)
    assert stream.checkpoints is None
    assert np.array_equal(rice_decode_packed(stream, k, values.size),
                          rice_decode(bits, k, values.size))


def test_lockstep_and_chain_paths_agree(rng):
    values = _random_block(rng, 2000, 150)
    k = optimal_rice_parameter(values)
    stream = rice_encode_packed(values, k)
    bare = PackedBits(stream.payload, stream.n_bits)
    assert np.array_equal(rice_decode_packed(stream, k, values.size),
                          rice_decode_packed(bare, k, values.size))


def test_partial_decode_returns_prefix(rng):
    values = _random_block(rng, 900, 60)
    k = optimal_rice_parameter(values)
    stream = rice_encode_packed(values, k)
    for count in (1, 64, 65, 500):
        assert np.array_equal(rice_decode_packed(stream, k, count),
                              values[:count])


@pytest.mark.parametrize("extra", [1, 64, 500])
def test_truncated_stream_raises(rng, extra):
    values = _random_block(rng, 300, 40)
    k = optimal_rice_parameter(values)
    stream = rice_encode_packed(values, k)
    with pytest.raises(ValueError, match="[Tt]runcated|missing"):
        rice_decode_packed(stream, k, values.size + extra)


def test_corrupt_checkpoint_index_raises(rng):
    values = _random_block(rng, 800, 60)
    k = optimal_rice_parameter(values)
    stream = rice_encode_packed(values, k)
    bogus = stream.checkpoints.copy()
    bogus[1:] = bogus[1:][::-1]  # out-of-order seek offsets
    corrupt = PackedBits(stream.payload, stream.n_bits, checkpoints=bogus)
    with pytest.raises(ValueError):
        rice_decode_packed(corrupt, k, values.size)


def test_large_residuals_stay_exact():
    """Regression: the float64 cost scan mis-ranked k for residuals
    beyond 2**53; the integer-shift rewrite must stay exact."""
    values = np.array([(1 << 60) + 1, -(1 << 60), 3, -7], dtype=np.int64)
    k = optimal_rice_parameter(values, max_k=60)
    unsigned = zigzag(values)
    costs = [int(np.sum(unsigned >> kk)) + (kk + 1) * values.size
             for kk in range(61)]
    assert costs[k] == min(costs)
    stream = rice_encode_packed(values, 58)
    assert np.array_equal(rice_decode_packed(stream, 58, values.size),
                          values)


def test_optimal_parameters_batch_matches_scalar(rng):
    blocks = rng.integers(-300, 300, size=(6, 256)).astype(np.int64)
    ks, bits = optimal_rice_parameters(blocks)
    assert list(ks) == [optimal_rice_parameter(block) for block in blocks]
    assert list(bits) == [len(rice_encode(block, int(k)))
                          for block, k in zip(blocks, ks)]


def test_chain_terminators_raises_on_truncation():
    zeros = np.array([3, 9], dtype=np.int64)
    with pytest.raises(ValueError, match="truncated"):
        _chain_terminators(zeros, 2, 5)


def test_randomized_parity(rng):
    for _ in range(40):
        n = int(rng.integers(1, 4000))
        spread = int(rng.integers(1, 5000))
        values = _random_block(rng, n, spread)
        k = int(rng.integers(0, 20))
        stream = rice_encode_packed(values, k)
        assert stream.to_string() == rice_encode(values, k)
        assert np.array_equal(rice_decode_packed(stream, k, n), values)
