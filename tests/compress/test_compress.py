"""Tests for the delta + Rice compression substrate."""

import numpy as np
import pytest

from repro.compress.delta import delta_decode, delta_encode
from repro.compress.pipeline import (
    CompressionResult,
    NeuralCompressor,
    compression_ratio,
)
from repro.compress.rice import (
    encoded_length_bits,
    optimal_rice_parameter,
    rice_decode,
    rice_encode,
    unzigzag,
    zigzag,
)
from repro.ni.adc import quantize
from repro.signals.lfp import synthesize_ecog


class TestDelta:
    def test_round_trip_1d(self, rng):
        codes = rng.integers(-512, 512, 200)
        np.testing.assert_array_equal(delta_decode(delta_encode(codes)),
                                      codes)

    def test_round_trip_2d(self, rng):
        codes = rng.integers(-512, 512, (8, 100))
        np.testing.assert_array_equal(delta_decode(delta_encode(codes)),
                                      codes)

    def test_smooth_signal_has_small_deltas(self):
        codes = np.arange(0, 1000, 3)
        deltas = delta_encode(codes)
        assert np.all(np.abs(deltas[1:]) == 3)

    def test_rejects_3d(self, rng):
        with pytest.raises(ValueError):
            delta_encode(rng.integers(0, 2, (2, 2, 2)))


class TestZigzag:
    def test_known_mapping(self):
        values = np.array([0, -1, 1, -2, 2])
        np.testing.assert_array_equal(zigzag(values), [0, 1, 2, 3, 4])

    def test_round_trip(self, rng):
        values = rng.integers(-1000, 1000, 500)
        np.testing.assert_array_equal(unzigzag(zigzag(values)), values)


class TestRice:
    def test_round_trip(self, rng):
        for k in (0, 2, 5):
            values = rng.integers(-100, 100, 64)
            bits = rice_encode(values, k)
            decoded = rice_decode(bits, k, 64)
            np.testing.assert_array_equal(decoded, values)

    def test_encoded_length_matches_stream(self, rng):
        values = rng.integers(-50, 50, 32)
        for k in (0, 1, 3, 6):
            assert len(rice_encode(values, k)) == encoded_length_bits(
                values, k)

    def test_optimal_parameter_is_optimal(self, rng):
        values = rng.integers(-200, 200, 128)
        k_star = optimal_rice_parameter(values)
        best = encoded_length_bits(values, k_star)
        for k in range(12):
            assert best <= encoded_length_bits(values, k)

    def test_small_values_prefer_small_k(self, rng):
        small = rng.integers(-2, 3, 256)
        large = rng.integers(-2000, 2000, 256)
        assert (optimal_rice_parameter(small)
                < optimal_rice_parameter(large))

    def test_truncated_stream_raises(self):
        with pytest.raises(ValueError):
            rice_decode("111", 0, 1)

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            rice_encode(np.array([1]), -1)


class TestNeuralCompressor:
    def _ecog_codes(self, rng, channels=8, samples=2000):
        analog = synthesize_ecog(channels, samples / 2000.0, 2000.0, rng,
                                 noise_rms=0.05)
        return quantize(analog / (4 * np.abs(analog).max()), bits=10)

    def test_neural_data_compresses(self, rng):
        codes = self._ecog_codes(rng)
        result = NeuralCompressor(sample_bits=10).analyze(codes)
        assert isinstance(result, CompressionResult)
        assert result.ratio > 1.5  # oversampled field data is redundant

    def test_white_noise_barely_compresses(self, rng):
        codes = rng.integers(-512, 512, (4, 2000)).astype(np.int32)
        result = NeuralCompressor(sample_bits=10).analyze(codes)
        assert result.ratio < 1.2

    def test_channel_round_trip(self, rng):
        codes = self._ecog_codes(rng, channels=1)[0]
        codec = NeuralCompressor(sample_bits=10)
        bits, k = codec.encode_channel(codes)
        recovered = codec.decode_channel(bits, k, codes.size)
        np.testing.assert_array_equal(recovered, codes)

    def test_codec_power_linear_in_channels(self):
        codec = NeuralCompressor()
        assert codec.codec_power_w(8e3, 2048) == pytest.approx(
            2 * codec.codec_power_w(8e3, 1024))

    def test_codec_power_is_small(self):
        # The codec must cost far less than the comm power it saves:
        # sub-mW at 1024 channels.
        power = NeuralCompressor().codec_power_w(8e3, 1024)
        assert power < 1e-3

    def test_ratio_helper_validates(self):
        with pytest.raises(ValueError):
            compression_ratio(0, 10)
        assert compression_ratio(100, 50) == 2.0

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            NeuralCompressor(sample_bits=0)
        with pytest.raises(ValueError):
            NeuralCompressor(ops_per_sample=-1.0)
