"""Tests for the Eq. 3 power budget."""

import pytest

from repro.thermal.budget import (
    SafetyReport,
    assess,
    is_safe,
    power_budget,
    power_density,
)
from repro.units import mm2, mw, mw_per_cm2


class TestPowerDensity:
    def test_bisc_anchor(self):
        # 38.9 mW over 144 mm^2 -> 27 mW/cm^2.
        density = power_density(mw(38.88), mm2(144))
        assert density == pytest.approx(mw_per_cm2(27.0))

    def test_rejects_zero_area(self):
        with pytest.raises(ValueError):
            power_density(1.0, 0.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            power_density(-1.0, 1.0)


class TestPowerBudget:
    def test_eq3_for_144mm2(self):
        # 144 mm^2 * 40 mW/cm^2 = 57.6 mW.
        assert power_budget(mm2(144)) == pytest.approx(mw(57.6))

    def test_linear_in_area(self):
        assert power_budget(mm2(288)) == pytest.approx(
            2 * power_budget(mm2(144)))

    def test_custom_limit(self):
        assert power_budget(1e-4, 800.0) == pytest.approx(0.08)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            power_budget(0.0)
        with pytest.raises(ValueError):
            power_budget(1.0, 0.0)


class TestSafety:
    def test_safe_design(self):
        assert is_safe(mw(38.88), mm2(144))

    def test_unsafe_design(self):
        # HALO as reported: 1500 mW/cm^2.
        assert not is_safe(mw(15.0), mm2(1.0))

    def test_boundary_is_safe(self):
        assert is_safe(mw(57.6), mm2(144))

    def test_assess_margins(self):
        report = assess(mw(38.88), mm2(144))
        assert isinstance(report, SafetyReport)
        assert report.safe
        assert report.margin_w == pytest.approx(mw(57.6 - 38.88))

    def test_assess_unsafe_negative_margin(self):
        report = assess(mw(15.0), mm2(1.0))
        assert not report.safe
        assert report.margin_w < 0

    def test_describe_contains_verdict(self):
        assert "SAFE" in assess(mw(1.0), mm2(100)).describe()
        assert "UNSAFE" in assess(mw(100.0), mm2(1)).describe()
