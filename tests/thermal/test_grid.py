"""Tests for the 2-D chip thermal solver."""

import numpy as np
import pytest

from repro.thermal.grid import ChipThermalGrid
from repro.thermal.model import TissueThermalModel


@pytest.fixture(scope="module")
def grid():
    return ChipThermalGrid(nx=24, ny=24)


BISC_POWER_W = 38.9e-3


class TestUniformCase:
    def test_matches_1d_model_exactly(self, grid):
        # With uniform power the lateral terms cancel and every cell
        # must sit at the 1-D prediction q'' / h_eff.
        field = grid.solve(grid.uniform_map(BISC_POWER_W))
        density = BISC_POWER_W / (grid.width_m * grid.height_m)
        expected = TissueThermalModel().steady_state_rise_k(density)
        np.testing.assert_allclose(field, expected, rtol=1e-9)

    def test_energy_balance(self, grid):
        # Total heat into tissue equals total dissipated power.
        field = grid.solve(grid.uniform_map(BISC_POWER_W))
        h_eff = grid.tissue.effective_h_w_m2k
        out = float(np.sum(field) * h_eff * grid.cell_area_m2)
        assert out == pytest.approx(BISC_POWER_W, rel=1e-9)

    def test_zero_power_zero_field(self, grid):
        field = grid.solve(grid.uniform_map(0.0))
        np.testing.assert_allclose(field, 0.0, atol=1e-15)


class TestHotspotCase:
    def test_hotspot_peak_exceeds_uniform(self, grid):
        uniform = grid.solve(grid.uniform_map(BISC_POWER_W))
        hotspot = grid.solve(grid.hotspot_map(BISC_POWER_W, 0.05))
        assert hotspot.max() > uniform.max()

    def test_mean_rise_independent_of_distribution(self, grid):
        # Same total power -> same total heat flux -> same mean rise.
        uniform = grid.solve(grid.uniform_map(BISC_POWER_W))
        hotspot = grid.solve(grid.hotspot_map(BISC_POWER_W, 0.05))
        assert hotspot.mean() == pytest.approx(uniform.mean(), rel=1e-9)

    def test_energy_balance_with_hotspot(self, grid):
        field = grid.solve(grid.hotspot_map(BISC_POWER_W, 0.05))
        h_eff = grid.tissue.effective_h_w_m2k
        out = float(np.sum(field) * h_eff * grid.cell_area_m2)
        assert out == pytest.approx(BISC_POWER_W, rel=1e-9)

    def test_thicker_die_spreads_better(self):
        # The Section 3.2 assumption improves with sheet conductance:
        # a standard-thickness die flattens hotspots far better than the
        # 25 um thinned die flexible implants use.
        thin = ChipThermalGrid(nx=24, ny=24, thickness_m=25e-6)
        thick = ChipThermalGrid(nx=24, ny=24, thickness_m=300e-6)
        assert (thick.hotspot_ratio(BISC_POWER_W)
                < thin.hotspot_ratio(BISC_POWER_W))

    def test_hotspot_ratio_above_one(self, grid):
        assert grid.hotspot_ratio(BISC_POWER_W) > 1.0

    def test_wider_hotspot_lower_ratio(self, grid):
        concentrated = grid.hotspot_ratio(BISC_POWER_W, 0.02)
        spread = grid.hotspot_ratio(BISC_POWER_W, 0.5)
        assert spread < concentrated


class TestValidation:
    def test_rejects_wrong_shape(self, grid):
        with pytest.raises(ValueError):
            grid.solve(np.zeros((3, 3)))

    def test_rejects_negative_power(self, grid):
        bad = grid.uniform_map(1e-3)
        bad[0, 0] = -1.0
        with pytest.raises(ValueError):
            grid.solve(bad)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            ChipThermalGrid(nx=1)
        with pytest.raises(ValueError):
            ChipThermalGrid(thickness_m=0.0)

    def test_rejects_bad_hotspot_fraction(self, grid):
        with pytest.raises(ValueError):
            grid.hotspot_map(1e-3, 0.0)


class TestAssemblyParity:
    """The vectorized coo assembly must equal the reference loop bit for
    bit — same matrix, same ordering of the implied linear system."""

    @pytest.mark.parametrize("power", ["uniform", "hotspot"])
    def test_assemble_matches_reference(self, grid, power):
        power_map = (grid.uniform_map(BISC_POWER_W) if power == "uniform"
                     else grid.hotspot_map(BISC_POWER_W))
        fast = grid._assemble(power_map)
        slow = grid._assemble_reference(power_map)
        assert (fast[0] != slow[0]).nnz == 0
        np.testing.assert_array_equal(fast[1], slow[1])

    def test_assemble_matches_on_asymmetric_grid(self):
        grid = ChipThermalGrid(nx=7, ny=13)
        power_map = grid.hotspot_map(5e-3, 0.3)
        fast = grid._assemble(power_map)
        slow = grid._assemble_reference(power_map)
        assert (fast[0] != slow[0]).nnz == 0
        np.testing.assert_array_equal(fast[1], slow[1])
