"""Tests for the tissue heating model."""

import pytest

from repro.thermal.model import TissueThermalModel
from repro.units import SAFE_POWER_DENSITY


class TestSteadyState:
    def test_rise_at_safe_limit_is_one_to_two_degrees(self):
        # The 40 mW/cm^2 limit must correspond to the paper's 1-2 degC
        # safe window (Section 3.2).
        model = TissueThermalModel()
        rise = model.steady_state_rise_k(SAFE_POWER_DENSITY)
        assert 0.5 <= rise <= 2.0

    def test_rise_linear_in_density(self):
        model = TissueThermalModel()
        assert model.steady_state_rise_k(800.0) == pytest.approx(
            2 * model.steady_state_rise_k(400.0))

    def test_zero_density_zero_rise(self):
        assert TissueThermalModel().steady_state_rise_k(0.0) == 0.0

    def test_more_perfusion_less_heating(self):
        low = TissueThermalModel(perfusion_per_s=0.005)
        high = TissueThermalModel(perfusion_per_s=0.02)
        assert (high.steady_state_rise_k(400.0)
                < low.steady_state_rise_k(400.0))

    def test_rejects_negative_density(self):
        with pytest.raises(ValueError):
            TissueThermalModel().steady_state_rise_k(-1.0)


class TestDepthProfile:
    def test_decays_with_depth(self):
        model = TissueThermalModel()
        surface = model.depth_rise_k(400.0, 0.0)
        deep = model.depth_rise_k(400.0, 5e-3)
        assert deep < surface

    def test_penetration_depth_is_millimetric(self):
        model = TissueThermalModel()
        depth = 1.0 / model.decay_constant_per_m
        assert 1e-3 < depth < 2e-2

    def test_rejects_negative_depth(self):
        with pytest.raises(ValueError):
            TissueThermalModel().depth_rise_k(400.0, -1.0)


class TestTransient:
    def test_starts_at_zero(self):
        assert TissueThermalModel().transient_rise_k(400.0, 0.0) == 0.0

    def test_approaches_steady_state(self):
        model = TissueThermalModel()
        steady = model.steady_state_rise_k(400.0)
        late = model.transient_rise_k(400.0, 10 * model.time_constant_s)
        assert late == pytest.approx(steady, rel=1e-3)

    def test_monotone_in_time(self):
        model = TissueThermalModel()
        tau = model.time_constant_s
        values = [model.transient_rise_k(400.0, t)
                  for t in (0.1 * tau, tau, 3 * tau)]
        assert values[0] < values[1] < values[2]

    def test_time_constant_is_seconds_to_minutes(self):
        tau = TissueThermalModel().time_constant_s
        assert 1.0 < tau < 600.0


class TestInverse:
    def test_safe_density_round_trip(self):
        model = TissueThermalModel()
        density = model.safe_density_w_m2(max_rise_k=1.0)
        assert model.steady_state_rise_k(density) == pytest.approx(1.0)

    def test_safe_density_near_paper_limit(self):
        # For 1 degC the model should allow a density in the same decade
        # as the paper's 400 W/m^2 limit.
        density = TissueThermalModel().safe_density_w_m2(1.0)
        assert 100.0 < density < 1200.0

    def test_rejects_non_positive_limit(self):
        with pytest.raises(ValueError):
            TissueThermalModel().safe_density_w_m2(0.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TissueThermalModel(conductivity_w_mk=0.0)
