"""Cross-module integration tests: the full implant pipeline end to end."""

import numpy as np
import pytest

from repro.accel.schedule import best_schedule
from repro.accel.simulate import PEArraySimulator
from repro.accel.tech import TECH_45NM
from repro.core.comp_centric import Workload, evaluate_comp_centric
from repro.core.scaling import scale_to_standard
from repro.core.socs import soc_by_number
from repro.decoders.dnn_decoder import DnnDecoder
from repro.dnn.layers import Dense
from repro.dnn.models import build_speech_mlp
from repro.link.budget import LinkBudget, communication_power
from repro.link.channel import AwgnChannel
from repro.link.modulation import OOK
from repro.link.packetizer import Packetizer
from repro.ni.adc import AdcModel
from repro.ni.geometry import GridArray
from repro.ni.interface import NeuralInterface
from repro.signals.datasets import make_speech_dataset
from repro.signals.lfp import synthesize_ecog
from repro.thermal.budget import assess


class TestCommCentricStream:
    """Signals -> NI -> packetizer -> modulated link -> wearable."""

    def test_lossless_stream_over_clean_link(self, rng):
        n_channels, fs = 16, 2000.0
        ni = NeuralInterface(
            geometry=GridArray(rows=4, cols=4, pitch_m=20e-6),
            adc=AdcModel(bits=10, sampling_rate_hz=fs))
        analog = synthesize_ecog(n_channels, 0.1, fs, rng) * 0.1
        codes = ni.acquire(analog)

        packetizer = Packetizer(payload_bytes=128, sample_bits=10)
        packets = packetizer.packetize(codes)

        # Serialize, modulate with OOK, traverse a high-SNR channel.
        raw = b"".join(p.to_bytes() for p in packets)
        bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8))
        scheme = OOK()
        channel = AwgnChannel(ebn0_linear=10 ** 1.6, rng=rng)
        received = scheme.demodulate(channel.transmit(scheme.modulate(bits)))
        assert np.array_equal(received, bits)  # clean at 16 dB

        # Rebuild packets and recover the exact codes.
        received_bytes = np.packbits(received).tobytes()
        size = len(packets[0].to_bytes())
        from repro.link.packetizer import Packet
        recovered_packets = [
            Packet.from_bytes(received_bytes[i:i + size])
            for i in range(0, len(received_bytes), size)
        ]
        recovered = packetizer.depacketize(recovered_packets)
        np.testing.assert_array_equal(recovered, codes.reshape(-1))

    def test_stream_power_is_within_bisc_budget(self):
        # Eq. 6 + Eq. 9 for a BISC-like configuration stays within Eq. 3.
        soc = scale_to_standard(soc_by_number(1))
        throughput = soc.sensing_throughput_bps()
        power = communication_power(throughput,
                                    soc.implied_energy_per_bit_j)
        report = assess(soc.sensing_power_anchor_w + power, soc.area_m2)
        assert report.safe


class TestCompCentricPipeline:
    """Dataset -> trained DNN -> accelerator execution -> feasibility."""

    def test_trained_mlp_runs_on_pe_array(self, rng):
        # Train a small speech MLP, then execute its first layer on the
        # cycle-approximate PE array and compare numerics.
        net = build_speech_mlp(32, rng=rng, window=2)
        data = make_speech_dataset(32, 64, rng, window=2)
        decoder = DnnDecoder(net, epochs=2, learning_rate=0.01)
        decoder.fit(data.features, data.targets, rng)

        first_dense = next(layer for layer in net.layers
                           if isinstance(layer, Dense))
        x = data.features[0]
        sim = PEArraySimulator(first_dense.weight, first_dense.bias,
                               mac_hw=8, tech=TECH_45NM, relu=True)
        result = sim.run(x)
        expected = np.maximum(first_dense.forward(x[None, :])[0], 0.0)
        np.testing.assert_allclose(result.outputs, expected, atol=1e-9)

    def test_schedule_power_consistent_with_framework(self, rng):
        # The Eq. 13 bound used by the Fig. 10 analysis equals the
        # schedule power computed directly from the same network.
        soc = scale_to_standard(soc_by_number(1))
        net = build_speech_mlp(1024)
        schedule = best_schedule(net.mac_profiles(),
                                 1.0 / soc.sampling_hz, TECH_45NM)
        point = evaluate_comp_centric(soc, Workload.MLP, 1024)
        assert point.comp_power_w == pytest.approx(
            schedule.power_w(TECH_45NM))

    def test_simulator_cycles_bounded_by_deadline_when_feasible(self):
        # A feasible scheduled layer executes within its share of the
        # sampling period on the simulator.
        soc = scale_to_standard(soc_by_number(1))
        net = build_speech_mlp(128)
        deadline = 1.0 / soc.sampling_hz
        schedule = best_schedule(net.mac_profiles(), deadline, TECH_45NM)
        assert schedule.runtime_s <= deadline


class TestEndToEndFeasibilityStory:
    def test_raw_streaming_vs_computation_tradeoff(self):
        # The paper's core trade-off: at 1024 channels raw streaming is
        # cheap; the DNN lower bound costs more power but slashes the
        # transmitted data volume by ~3 orders of magnitude.
        soc = scale_to_standard(soc_by_number(1))
        raw_rate = soc.sensing_throughput_bps()
        point = evaluate_comp_centric(soc, Workload.MLP, 1024)
        dnn_rate = 40 * soc.sample_bits * soc.sampling_hz
        assert dnn_rate < raw_rate / 20
        # Compute grows quadratically while streaming grows linearly, so
        # the compute-to-streaming power ratio worsens with scale — the
        # reason computation-centric designs stop paying off (Fig. 10).
        raw_comm_power = communication_power(
            raw_rate, soc.implied_energy_per_bit_j)
        point_2x = evaluate_comp_centric(soc, Workload.MLP, 2048)
        ratio_1x = point.comp_power_w / raw_comm_power
        ratio_2x = point_2x.comp_power_w / (2 * raw_comm_power)
        assert ratio_2x > ratio_1x

    def test_link_budget_consistent_with_comm_power(self):
        # Eq. 9 with the LinkBudget Eb reproduces the mW-scale comm power
        # the analysis attributes to transceivers.
        soc = scale_to_standard(soc_by_number(1))
        energy = LinkBudget().transmit_energy_per_bit(
            bits_per_symbol=1, efficiency=0.15)
        power = communication_power(soc.sensing_throughput_bps(), energy)
        assert 1e-3 < power < 50e-3
