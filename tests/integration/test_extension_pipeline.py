"""Integration tests chaining the extension substrates end to end."""

import numpy as np
import pytest

from repro.compress import NeuralCompressor
from repro.compress.rice import PackedBits
from repro.core.closed_loop import evaluate_closed_loop
from repro.core.event_stream import EventStreamConfig, evaluate_event_stream
from repro.core.explorer import explore
from repro.core.comm_centric import DesignHypothesis, evaluate_comm_centric
from repro.core.comp_centric import Workload, evaluate_comp_centric
from repro.core.qam_design import evaluate_qam_design
from repro.decoders.spikesort import SpikeDetector
from repro.dnn.models import build_speech_mlp
from repro.dnn.quantize import quantize_network
from repro.dnn.snn import build_speech_snn
from repro.link.packetizer import Packetizer
from repro.ni.adc import quantize
from repro.ni.spad import SpadImager
from repro.signals.lfp import synthesize_ecog
from repro.signals.spikes import (
    biphasic_spike_template,
    poisson_spike_train,
    render_spike_waveform,
)


class TestCompressedStreamPipeline:
    def test_compress_then_packetize_round_trip(self, rng):
        analog = 0.2 * synthesize_ecog(4, 0.5, 2000.0, rng, noise_rms=0.05)
        codes = quantize(analog, bits=10)
        codec = NeuralCompressor(sample_bits=10)
        packetizer = Packetizer(payload_bytes=64, sample_bits=16)

        for channel in codes:
            stream, k = codec.encode_channel(channel)
            # Frame the packed payload bytes as 16-bit words.
            payload = stream.payload
            if payload.size % 2:
                payload = np.append(payload, np.uint8(0))
            words = (payload.astype(np.int32).reshape(-1, 2)
                     @ np.array([256, 1])) - (1 << 15)
            recovered_words = packetizer.depacketize(
                packetizer.packetize(words.astype(np.int32)))
            shifted = np.asarray(recovered_words, dtype=np.int64) + (1 << 15)
            recovered_payload = np.column_stack(
                [shifted >> 8, shifted & 0xFF]).astype(np.uint8).ravel()
            n_payload = stream.payload.size
            assert np.array_equal(recovered_payload[:n_payload],
                                  stream.payload)
            recovered = codec.decode_channel(
                PackedBits(recovered_payload[:n_payload], stream.n_bits),
                k, channel.size)
            np.testing.assert_array_equal(recovered, channel)

    def test_measured_ratio_feeds_explorer(self, rng, bisc):
        analog = 0.2 * synthesize_ecog(8, 1.0, 2000.0, rng, noise_rms=0.05)
        codes = quantize(analog, bits=10)
        ratio = NeuralCompressor(sample_bits=10).analyze(codes).ratio
        report = explore(bisc, target_channels=2048,
                         compression_ratio=ratio)
        compressed = next(o for o in report.outcomes
                          if "compressed" in o.strategy)
        raw = next(o for o in report.outcomes
                   if o.strategy == "raw OOK (high margin)")
        assert compressed.power_ratio_at_target < \
            raw.power_ratio_at_target


class TestEventPipeline:
    def test_detected_rate_drives_event_model(self, rng, bisc):
        # Measure the spike rate with the detector substrate, then feed
        # it into the event-stream analysis.
        fs, duration = 8e3, 4.0
        n = int(fs * duration)
        template = biphasic_spike_template(fs, amplitude=8.0)
        true_rate = 15.0
        spikes = np.flatnonzero(poisson_spike_train(
            true_rate, duration, fs, rng, refractory_s=3e-3))
        signal = rng.standard_normal(n) + render_spike_waveform(
            spikes, template, n)
        detected = SpikeDetector().detect(signal)
        measured_rate = len(detected) / duration
        assert measured_rate == pytest.approx(true_rate, rel=0.4)

        config = EventStreamConfig(spike_rate_hz=measured_rate)
        point = evaluate_event_stream(bisc, 1024, config)
        assert point.data_reduction > 50


class TestSpadPipeline:
    def test_spad_frames_compress_and_stream(self, rng):
        spad = SpadImager(n_pixels=256, counter_bits=8,
                          frame_rate_hz=1e3)
        frames = np.stack([spad.capture_frame(rng) for _ in range(50)],
                          axis=1)  # (pixels, frames)
        codec = NeuralCompressor(sample_bits=spad.counter_bits)
        result = codec.analyze(frames)
        # Poisson counts around a stable mean are compressible.
        assert result.ratio > 1.1

    def test_spad_throughput_matches_gilhotra_scale(self):
        # The Gilhotra design: 49152 pixels at a 1024-equivalent config.
        spad = SpadImager(n_pixels=49152, counter_bits=8,
                          frame_rate_hz=1e3)
        assert 100e6 < spad.throughput_bps < 1e9


class TestQuantizedClosedLoop:
    def test_quantized_decoder_in_loop(self, rng, bisc):
        net = build_speech_mlp(128, rng=rng)
        quantize_network(net, bits=8)
        point = evaluate_closed_loop(bisc, net, 128)
        assert point.feasible
        # The quantized network still runs.
        x = rng.standard_normal((1,) + net.input_shape)
        assert net.forward(x).shape == (1, 40)

    def test_snn_energy_beats_loop_mlp(self, rng, bisc):
        # An SNN decoder at sparse activity undercuts the MLP the loop
        # would otherwise run.
        from repro.accel.tech import TECH_45NM
        mlp = build_speech_mlp(256)
        snn = build_speech_snn(256, rng=rng)
        timesteps = 16
        sops = snn.expected_sops(0.05, timesteps)
        snn_energy = snn.energy_per_inference_j(sops, timesteps)
        mlp_energy = mlp.total_macs * TECH_45NM.energy_per_mac_j
        assert snn_energy < mlp_energy


class TestExplorerConsistency:
    def test_explorer_matches_individual_evaluators(self, bisc):
        report = explore(bisc, target_channels=2048)
        by_name = {o.strategy: o for o in report.outcomes}

        naive = evaluate_comm_centric(bisc, 2048, DesignHypothesis.NAIVE)
        assert by_name["raw OOK (naive)"].power_ratio_at_target == \
            pytest.approx(naive.power_ratio)

        margin = evaluate_comm_centric(bisc, 2048,
                                       DesignHypothesis.HIGH_MARGIN)
        assert by_name["raw OOK (high margin)"].power_ratio_at_target == \
            pytest.approx(margin.power_ratio)

        qam = evaluate_qam_design(bisc, 2048)
        assert by_name["QAM @ 20%"].power_ratio_at_target == \
            pytest.approx(qam.min_efficiency / 0.20)

        mlp = evaluate_comp_centric(bisc, Workload.MLP, 2048)
        assert by_name["on-implant mlp"].power_ratio_at_target == \
            pytest.approx(mlp.power_ratio)
