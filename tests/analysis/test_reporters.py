"""Reporter coverage: text, JSON, and SARIF renderings round-trip."""

import json

from repro.analysis import (Finding, all_rules, render_json, render_sarif,
                            render_text, rule_by_id)

RULES = [rule_by_id("units"), rule_by_id("determinism")]


def _finding(path="src/a.py", line=3, col=4, rule="units",
             message="bare factor"):
    return Finding(path=path, line=line, col=col, rule=rule,
                   message=message)


def _pair(**kwargs):
    digest = kwargs.pop("digest", "cafe0000cafe0000")
    return (_finding(**kwargs), digest)


def test_text_report_lists_findings_and_summary():
    new = [_pair(), _pair(path="src/b.py", rule="determinism",
                          message="np.random", digest="beef")]
    out = render_text(new, [], RULES, n_files=7)
    lines = out.splitlines()
    assert lines[0] == "src/a.py:3:4: [units] bare factor"
    assert lines[1] == "src/b.py:3:4: [determinism] np.random"
    assert "analyzed 7 files with 2 rules: 2 new finding(s)" in lines[-1]
    assert "determinism=1" in lines[-1] and "units=1" in lines[-1]


def test_text_report_empty_run():
    out = render_text([], [], RULES, n_files=3)
    assert out == "analyzed 3 files with 2 rules: 0 new finding(s)"


def test_text_report_mentions_baselined_count():
    out = render_text([], [_pair()], RULES, n_files=1)
    assert out.endswith("0 new finding(s), 1 baselined")


def test_json_report_round_trips_and_orders_findings():
    new = [_pair(path="src/z.py", digest="1111"),
           _pair(path="src/a.py", digest="2222")]
    old = [_pair(path="src/m.py", digest="3333")]
    report = json.loads(render_json(new, old, RULES, n_files=5))
    assert report["schema_version"] == 1
    assert report["n_files"] == 5
    assert report["counts"] == {"new": 2, "baselined": 1}
    # New findings first (in given order), then the baselined tail.
    assert [f["path"] for f in report["findings"]] == [
        "src/z.py", "src/a.py", "src/m.py"]
    assert [f["baselined"] for f in report["findings"]] == [
        False, False, True]
    assert {r["id"] for r in report["rules"]} == {"units", "determinism"}


def test_json_report_empty_is_valid():
    report = json.loads(render_json([], [], [], n_files=0))
    assert report["counts"] == {"new": 0, "baselined": 0}
    assert report["findings"] == []


def test_sarif_document_structure():
    new = [_pair(digest="aaaa")]
    old = [_pair(path="src/old.py", rule="determinism",
                 message="np.random", digest="bbbb")]
    document = json.loads(render_sarif(new, old, RULES, n_files=9))
    assert document["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in document["$schema"]
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-analyze"
    assert [r["id"] for r in driver["rules"]] == ["units", "determinism"]
    assert run["properties"]["n_files"] == 9

    fresh, grandfathered = run["results"]
    assert fresh["ruleId"] == "units"
    assert fresh["ruleIndex"] == 0
    assert fresh["level"] == "error"
    assert fresh["baselineState"] == "new"
    assert fresh["partialFingerprints"] == {"reproAnalysis/v1": "aaaa"}
    location = fresh["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/a.py"
    # SARIF columns are 1-based while Finding.col is 0-based.
    assert location["region"] == {"startLine": 3, "startColumn": 5}

    assert grandfathered["level"] == "note"
    assert grandfathered["baselineState"] == "unchanged"
    assert grandfathered["ruleIndex"] == 1


def test_sarif_empty_report_is_uploadable():
    document = json.loads(render_sarif([], [], all_rules(), n_files=0))
    (run,) = document["runs"]
    assert run["results"] == []
    assert len(run["tool"]["driver"]["rules"]) == len(all_rules())


def test_sarif_multi_file_ordering_is_stable():
    new = [_pair(path="src/b.py", digest="1"),
           _pair(path="src/a.py", digest="2"),
           _pair(path="src/a.py", line=9, digest="3")]
    first = render_sarif(new, [], RULES, n_files=2)
    second = render_sarif(new, [], RULES, n_files=2)
    assert first == second
    document = json.loads(first)
    uris = [r["locations"][0]["physicalLocation"]["artifactLocation"]
            ["uri"] for r in document["runs"][0]["results"]]
    # Results keep the caller-given (already sorted-by-engine) order.
    assert uris == ["src/b.py", "src/a.py", "src/a.py"]


def test_reporters_agree_on_counts():
    new = [_pair(digest="aa"), _pair(path="src/b.py", digest="bb")]
    old = [_pair(path="src/c.py", digest="cc")]
    text = render_text(new, old, RULES, 3)
    as_json = json.loads(render_json(new, old, RULES, 3))
    sarif = json.loads(render_sarif(new, old, RULES, 3))
    assert "2 new finding(s)" in text
    assert as_json["counts"]["new"] == 2
    results = sarif["runs"][0]["results"]
    assert sum(r["baselineState"] == "new" for r in results) == 2
    assert sum(r["baselineState"] == "unchanged" for r in results) == 1
