"""Unit tests for the whole-program layer: symbols, call graph, CFG,
path enumeration, and the Project context."""

import ast
from pathlib import Path

import pytest

from repro.analysis.engine import ParsedFile, collect_files
from repro.analysis.graph import Project
from repro.analysis.graph.callgraph import dotted_parts, qualify
from repro.analysis.graph.cfg import Test as BranchTest
from repro.analysis.graph.cfg import build_cfg
from repro.analysis.graph.dataflow import iter_paths, solve_paths
from repro.analysis.graph.symbols import module_name_for

CORPUS = Path(__file__).parent / "corpus"


def _parse(tmp_path, name, source):
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return ParsedFile.parse(target, name)


def _project(tmp_path, **modules):
    files = [_parse(tmp_path, f"{name}.py", source)
             for name, source in sorted(modules.items())]
    return Project(files)


# -- symbol table ---------------------------------------------------------

def test_module_name_for_repro_packages_and_fixtures():
    assert module_name_for(
        Path("src/repro/perf/shm.py")) == "repro.perf.shm"
    assert module_name_for(
        Path("src/repro/experiments/__init__.py")) == "repro.experiments"
    assert module_name_for(
        Path("tests/analysis/corpus/helper.py")) == "helper"


def test_symbols_index_defs_imports_and_globals(tmp_path):
    project = _project(tmp_path, mod=(
        "import numpy as np\n"
        "from os import path as osp\n"
        "LIMITS = {\"a\": 1}\n"
        "def top():\n"
        "    return 1\n"
        "class Box:\n"
        "    def get(self):\n"
        "        return LIMITS\n"
    ))
    symbols = project.symbols_of(project.files[0])
    assert set(symbols.functions) == {"top", "Box.get"}
    assert set(symbols.classes) == {"Box"}
    assert symbols.imports["np"] == "numpy"
    assert symbols.imports["osp"] == "os.path"
    assert "np" in symbols.module_aliases
    assert isinstance(symbols.module_globals["LIMITS"], ast.Dict)
    assert symbols.expand(("np", "random", "seed")) == "numpy.random.seed"


def test_sibling_fixture_modules_resolve(tmp_path):
    project = _project(
        tmp_path,
        helper="def build():\n    return {}\n",
        driver=("from helper import build\n"
                "def run():\n"
                "    return build()\n"))
    graph = project.call_graph
    assert graph.functions["driver:run"].calls == ["helper:build"]


# -- call graph -----------------------------------------------------------

def test_dotted_parts_and_qualify():
    node = ast.parse("np.random.seed").body[0].value
    assert dotted_parts(node) == ("np", "random", "seed")
    assert dotted_parts(ast.parse("f()").body[0].value) == ()
    assert qualify("m", "Cls.run") == "m:Cls.run"


def test_call_graph_resolves_methods_and_aliases(tmp_path):
    project = _project(tmp_path, engine=(
        "class Pool:\n"
        "    def submit(self, spec):\n"
        "        return self._send(spec)\n"
        "    def _send(self, spec):\n"
        "        return spec\n"
        "def run(pool_cls):\n"
        "    return Pool().submit(1)\n"
    ))
    graph = project.call_graph
    assert graph.functions["engine:Pool.submit"].calls == [
        "engine:Pool._send"]
    # Constructor call resolves to nothing (Pool defines no __init__),
    # but the class is still indexed.
    assert "engine:Pool._send" in graph.callers
    assert graph.callers["engine:Pool._send"] == ["engine:Pool.submit"]


def test_function_level_lazy_imports_resolve(tmp_path):
    project = _project(
        tmp_path,
        tasks="def execute(spec):\n    return spec\n",
        worker=("def loop(queue):\n"
                "    from tasks import execute\n"
                "    for spec in iter(queue.get, None):\n"
                "        execute(spec)\n"))
    graph = project.call_graph
    assert graph.functions["worker:loop"].calls == ["tasks:execute"]


def test_reachability_and_call_chain(tmp_path):
    project = _project(tmp_path, chain=(
        "def a():\n    return b()\n"
        "def b():\n    return c()\n"
        "def c():\n    return 1\n"
        "def unrelated():\n    return 2\n"
    ))
    graph = project.call_graph
    reach = graph.reachable_from(["chain:a"])
    assert reach == {"chain:a", "chain:b", "chain:c"}
    assert graph.call_chain("chain:a", "chain:c") == [
        "chain:a", "chain:b", "chain:c"]
    assert graph.call_chain("chain:a", "chain:unrelated") is None


def test_graph_dumps_are_deterministic(tmp_path):
    project = _project(tmp_path, chain=(
        "def a():\n    return b()\n"
        "def b():\n    return 1\n"
    ))
    graph = project.call_graph
    dump = graph.to_json()
    assert dump["n_functions"] == 2
    assert dump["edges"] == [["chain:a", "chain:b"]]
    assert dump["functions"][0]["qname"] == "chain:a"
    dot = graph.to_dot()
    assert dot.startswith("digraph callgraph {")
    assert '"chain:a" -> "chain:b";' in dot
    assert graph.to_json() == dump  # stable across calls


# -- CFG + path enumeration ----------------------------------------------

def _func(source):
    return ast.parse(source).body[0]


def test_build_cfg_rejects_non_functions():
    with pytest.raises(TypeError, match="function def"):
        build_cfg(ast.parse("x = 1").body[0])


def test_if_else_enumerates_both_paths():
    cfg = build_cfg(_func(
        "def f(flag):\n"
        "    x = 1\n"
        "    if flag:\n"
        "        x = 2\n"
        "    return x\n"))
    path_set = iter_paths(cfg)
    assert not path_set.truncated
    assert len(path_set.paths) == 2
    for path in path_set.paths:
        assert path.blocks[0] == cfg.entry
        assert path.blocks[-1] == cfg.exit


def test_loops_are_bounded_not_unrolled():
    cfg = build_cfg(_func(
        "def f(items):\n"
        "    total = 0\n"
        "    for item in items:\n"
        "        total += item\n"
        "    return total\n"))
    path_set = iter_paths(cfg)
    assert not path_set.truncated
    # Zero-iteration path plus bounded traversals, all finite.
    assert 2 <= len(path_set.paths) <= 4


def test_try_except_adds_exception_edges_and_handler_entries():
    cfg = build_cfg(_func(
        "def f(path):\n"
        "    try:\n"
        "        handle = open(path)\n"
        "    except OSError:\n"
        "        return None\n"
        "    return handle\n"))
    assert cfg.handler_entries
    path_set = iter_paths(cfg)
    # At least one path routes through a handler entry.
    assert any(set(p.blocks) & cfg.handler_entries
               for p in path_set.paths)


def test_pathological_branching_reports_truncation():
    body = "".join(f"    if f{i}():\n        x += 1\n"
                   for i in range(12))
    cfg = build_cfg(_func(f"def f():\n    x = 0\n{body}    return x\n"))
    path_set = iter_paths(cfg, max_paths=64)
    assert path_set.truncated
    assert len(path_set.paths) == 64


def test_solve_paths_folds_transfer_over_items():
    cfg = build_cfg(_func(
        "def f(flag):\n"
        "    a = 1\n"
        "    if flag:\n"
        "        b = 2\n"
        "    return a\n"))
    results, truncated = solve_paths(
        cfg,
        transfer=lambda state, item: state + (
            1 if isinstance(item, ast.Assign) else 0),
        initial=lambda: 0)
    assert not truncated
    assert sorted(state for state, _ in results) == [1, 2]
    assert all(isinstance(item, (ast.stmt, BranchTest))
               for _, path in results for item in path.items(cfg))


# -- Project context ------------------------------------------------------

def test_project_is_a_sequence_of_parsed_files():
    files = collect_files([CORPUS / "units_bad.py"])
    project = Project(files)
    assert len(project) == 1
    assert project[0] is files[0]
    assert list(project) == files


def test_project_caches_structure_and_cfgs(tmp_path):
    project = _project(tmp_path, mod="def f():\n    return 1\n")
    assert project.table is project.table
    assert project.call_graph is project.call_graph
    func = project.symbols_of(project.files[0]).functions["f"]
    assert project.cfg_of(func) is project.cfg_of(func)
