"""End-to-end tests of ``python -m repro analyze``."""

import json
from pathlib import Path

from repro.cli import main

CORPUS = Path(__file__).parent / "corpus"


def test_corpus_fails_the_gate(capsys):
    code = main(["analyze", str(CORPUS), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "[units]" in out
    assert "[determinism]" in out
    assert "[parity-oracle]" in out
    assert "[experiment-contract]" in out
    assert "[export-hygiene]" in out
    assert "[resilience]" in out
    assert "[driver-telemetry]" in out
    assert "22 new finding(s)" in out


def test_json_report_structure(tmp_path, capsys):
    report_path = tmp_path / "lint-report.json"
    code = main(["analyze", str(CORPUS), "--no-baseline",
                 "--format", "json", "--output", str(report_path)])
    assert code == 1
    report = json.loads(report_path.read_text(encoding="utf-8"))
    assert report["counts"]["new"] == 22
    assert report["counts"]["baselined"] == 0
    assert sorted(rule["id"] for rule in report["rules"]) == [
        "determinism", "driver-telemetry", "experiment-contract",
        "export-hygiene", "parity-oracle", "resilience", "units"]
    findings = report["findings"]
    assert len(findings) == 22
    sample = findings[0]
    assert {"path", "line", "col", "rule", "message", "fingerprint",
            "baselined"} <= set(sample)
    assert all(not f["baselined"] for f in findings)
    # stdout also carries the JSON document for piping
    assert json.loads(capsys.readouterr().out)["counts"]["new"] == 22


def test_update_baseline_then_gate_passes(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code = main(["analyze", str(CORPUS), "--baseline", str(baseline),
                 "--update-baseline"])
    assert code == 0
    document = json.loads(baseline.read_text(encoding="utf-8"))
    assert len(document["entries"]) == 22

    capsys.readouterr()
    code = main(["analyze", str(CORPUS), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 new finding(s), 22 baselined" in out


def test_new_violation_breaks_a_baselined_gate(tmp_path, capsys):
    fixture_dir = tmp_path / "pkg"
    fixture_dir.mkdir()
    target = fixture_dir / "power.py"
    target.write_text("BUDGET_W = 40e-3\n", encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    assert main(["analyze", str(fixture_dir), "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    assert main(["analyze", str(fixture_dir),
                 "--baseline", str(baseline)]) == 0

    capsys.readouterr()
    target.write_text("BUDGET_W = 40e-3\nLIMIT_HZ = 30e3\n",
                      encoding="utf-8")
    code = main(["analyze", str(fixture_dir), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 1
    assert "LIMIT_HZ" in out
    assert "1 new finding(s) (units=1), 1 baselined" in out


def test_analysis_errors_exit_two(tmp_path, capsys):
    code = main(["analyze", str(tmp_path / "missing"), "--no-baseline"])
    assert code == 2
    assert "no such path" in capsys.readouterr().err
