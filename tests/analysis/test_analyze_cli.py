"""End-to-end tests of ``python -m repro analyze``."""

import json
from pathlib import Path

from repro.cli import main

CORPUS = Path(__file__).parent / "corpus"


def test_corpus_fails_the_gate(capsys):
    code = main(["analyze", str(CORPUS), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "[units]" in out
    assert "[determinism]" in out
    assert "[parity-oracle]" in out
    assert "[experiment-contract]" in out
    assert "[export-hygiene]" in out
    assert "[resilience]" in out
    assert "[driver-telemetry]" in out
    assert "[resource-lifecycle]" in out
    assert "[pipe-transfer]" in out
    assert "[worker-shared-state]" in out
    assert "[seed-taint]" in out
    assert "[unused-ignore]" in out
    assert "47 new finding(s)" in out


def test_json_report_structure(tmp_path, capsys):
    report_path = tmp_path / "lint-report.json"
    code = main(["analyze", str(CORPUS), "--no-baseline",
                 "--format", "json", "--output", str(report_path)])
    assert code == 1
    report = json.loads(report_path.read_text(encoding="utf-8"))
    assert report["counts"]["new"] == 47
    assert report["counts"]["baselined"] == 0
    assert sorted(rule["id"] for rule in report["rules"]) == [
        "determinism", "driver-telemetry", "experiment-contract",
        "export-hygiene", "parity-oracle", "pipe-transfer",
        "resilience", "resource-lifecycle", "seed-taint", "units",
        "unused-ignore", "worker-shared-state"]
    findings = report["findings"]
    assert len(findings) == 47
    sample = findings[0]
    assert {"path", "line", "col", "rule", "message", "fingerprint",
            "baselined"} <= set(sample)
    assert all(not f["baselined"] for f in findings)
    # stdout also carries the JSON document for piping
    assert json.loads(capsys.readouterr().out)["counts"]["new"] == 47


def test_update_baseline_then_gate_passes(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code = main(["analyze", str(CORPUS), "--baseline", str(baseline),
                 "--update-baseline"])
    assert code == 0
    document = json.loads(baseline.read_text(encoding="utf-8"))
    assert len(document["entries"]) == 47

    capsys.readouterr()
    code = main(["analyze", str(CORPUS), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 new finding(s), 47 baselined" in out


def test_new_violation_breaks_a_baselined_gate(tmp_path, capsys):
    fixture_dir = tmp_path / "pkg"
    fixture_dir.mkdir()
    target = fixture_dir / "power.py"
    target.write_text("BUDGET_W = 40e-3\n", encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    assert main(["analyze", str(fixture_dir), "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    assert main(["analyze", str(fixture_dir),
                 "--baseline", str(baseline)]) == 0

    capsys.readouterr()
    target.write_text("BUDGET_W = 40e-3\nLIMIT_HZ = 30e3\n",
                      encoding="utf-8")
    code = main(["analyze", str(fixture_dir), "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 1
    assert "LIMIT_HZ" in out
    assert "1 new finding(s) (units=1), 1 baselined" in out


def test_analysis_errors_exit_two(tmp_path, capsys):
    code = main(["analyze", str(tmp_path / "missing"), "--no-baseline"])
    assert code == 2
    assert "no such path" in capsys.readouterr().err


def test_rule_selection_restricts_the_run(capsys):
    code = main(["analyze", str(CORPUS), "--no-baseline",
                 "--rule", "units", "--rule", "determinism",
                 "--format", "json"])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert sorted(rule["id"] for rule in report["rules"]) == [
        "determinism", "units"]
    assert {f["rule"] for f in report["findings"]} == {
        "determinism", "units"}


def test_unknown_rule_exits_two_listing_known_rules(capsys):
    code = main(["analyze", str(CORPUS), "--rule", "nope"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown rule 'nope'" in err
    assert "resource-lifecycle" in err


def test_sarif_format_round_trips(tmp_path, capsys):
    report_path = tmp_path / "analysis.sarif"
    code = main(["analyze", str(CORPUS), "--no-baseline",
                 "--format", "sarif", "--output", str(report_path)])
    assert code == 1
    document = json.loads(report_path.read_text(encoding="utf-8"))
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-analyze"
    assert len(run["results"]) == 47
    assert all(r["baselineState"] == "new" for r in run["results"])
    assert all(r["level"] == "error" for r in run["results"])
    # stdout carries the same document
    assert json.loads(capsys.readouterr().out) == document


def test_graph_dump_json_and_dot(tmp_path, capsys):
    code = main(["analyze", str(CORPUS / "transfer_bad"),
                 "--graph", "json"])
    assert code == 0
    graph = json.loads(capsys.readouterr().out)
    assert ["dispatch:run_tasks", "poolmod:get_pool"] in graph["edges"]

    out_path = tmp_path / "graph.dot"
    code = main(["analyze", str(CORPUS / "transfer_bad"),
                 "--graph", "dot", "--output", str(out_path)])
    assert code == 0
    dot = out_path.read_text(encoding="utf-8")
    assert dot.startswith("digraph callgraph {")
    assert '"dispatch:run_tasks" -> "poolmod:get_pool"' in dot


def test_stale_baseline_entries_are_reported(tmp_path, capsys):
    fixture_dir = tmp_path / "pkg"
    fixture_dir.mkdir()
    target = fixture_dir / "power.py"
    target.write_text("BUDGET_W = 40e-3\n", encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    assert main(["analyze", str(fixture_dir), "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    target.write_text("BUDGET_W = 1\n", encoding="utf-8")

    capsys.readouterr()
    code = main(["analyze", str(fixture_dir),
                 "--baseline", str(baseline)])
    err = capsys.readouterr().err
    assert code == 0
    assert "stale baseline entry" in err
    assert "violation no longer exists" in err
