"""Baseline persistence: fingerprints, round-trips, and the gate split."""

from pathlib import Path

import pytest

from repro.analysis import (AnalysisError, Finding, analyze_paths,
                            baseline_entry, collect_files, fingerprint,
                            fingerprint_findings, load_baseline,
                            save_baseline, split_by_baseline, stale_entries)

REPO_ROOT = Path(__file__).resolve().parents[2]
COMMITTED_BASELINE = REPO_ROOT / ".analysis-baseline.json"


def _finding(path="pkg/mod.py", line=3, col=8, rule="units",
             message="bare factor"):
    return Finding(path=path, line=line, col=col, rule=rule, message=message)


def test_fingerprint_ignores_line_numbers_and_whitespace():
    assert fingerprint("units", "a.py", "x = rate * 1e3", 0) == fingerprint(
        "units", "a.py", "   x  =  rate *   1e3  ", 0)


def test_fingerprint_distinguishes_rule_path_text_occurrence():
    base = fingerprint("units", "a.py", "x = 1e3", 0)
    assert fingerprint("determinism", "a.py", "x = 1e3", 0) != base
    assert fingerprint("units", "b.py", "x = 1e3", 0) != base
    assert fingerprint("units", "a.py", "x = 1e6", 0) != base
    assert fingerprint("units", "a.py", "x = 1e3", 1) != base


def test_identical_lines_get_distinct_occurrences():
    findings = [_finding(line=3), _finding(line=9)]
    line_text = {("pkg/mod.py", 3): "x = y * 1e3",
                 ("pkg/mod.py", 9): "x = y * 1e3"}
    digests = [d for _, d in fingerprint_findings(findings, line_text)]
    assert len(set(digests)) == 2


def test_committed_baseline_round_trips_byte_identically(tmp_path):
    entries = load_baseline(COMMITTED_BASELINE)
    assert entries, "the committed baseline should grandfather the lda " \
                    "conditioning epsilon"
    rewritten = tmp_path / "baseline.json"
    save_baseline(rewritten, entries)
    assert rewritten.read_bytes() == COMMITTED_BASELINE.read_bytes()


def test_committed_baseline_contains_only_the_lda_epsilon():
    entries = load_baseline(COMMITTED_BASELINE)
    assert [(e["rule"], e["path"]) for e in entries] == [
        ("units", "src/repro/decoders/lda.py")]


def test_save_baseline_is_order_insensitive(tmp_path):
    one = baseline_entry(_finding(path="a.py"), "aaaa")
    two = baseline_entry(_finding(path="b.py"), "bbbb")
    first = tmp_path / "ab.json"
    second = tmp_path / "ba.json"
    save_baseline(first, [one, two])
    save_baseline(second, [two, one])
    assert first.read_bytes() == second.read_bytes()


def test_split_by_baseline_partitions():
    keep = _finding(path="old.py")
    fresh = _finding(path="new.py")
    fingerprinted = [(keep, "deadbeef"), (fresh, "0badf00d")]
    entries = [baseline_entry(keep, "deadbeef")]
    new, grandfathered = split_by_baseline(fingerprinted, entries)
    assert [f.path for f, _ in new] == ["new.py"]
    assert [f.path for f, _ in grandfathered] == ["old.py"]


def test_stale_entries_returns_unmatched_baseline_records():
    live = _finding(path="live.py")
    fingerprinted = [(live, "deadbeef")]
    entries = [baseline_entry(live, "deadbeef"),
               baseline_entry(_finding(path="gone.py"), "0badf00d")]
    stale = stale_entries(entries, fingerprinted)
    assert [e["path"] for e in stale] == ["gone.py"]
    assert stale_entries(entries[:1], fingerprinted) == []


def test_committed_baseline_entry_is_still_live():
    """Every grandfathered fingerprint must match a current finding."""
    entries = load_baseline(COMMITTED_BASELINE)
    target = REPO_ROOT / "src" / "repro" / "decoders" / "lda.py"
    files = collect_files([target])
    findings = analyze_paths([target])
    line_text = {(parsed.display_path, number): text
                 for parsed in files
                 for number, text in enumerate(parsed.lines, start=1)}
    fingerprinted = fingerprint_findings(findings, line_text)
    assert stale_entries(entries, fingerprinted) == []


def test_load_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == []


def test_load_baseline_rejects_malformed_documents(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("[1, 2, 3]", encoding="utf-8")
    with pytest.raises(AnalysisError):
        load_baseline(bad)
