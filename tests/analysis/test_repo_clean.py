"""Self-gate: the repository must stay clean under its own linter.

This mirrors the CI ``analyze`` job inside the test suite, so a change
that introduces a new invariant violation fails fast locally too.
"""

from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repository_is_clean_under_committed_baseline(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    code = main(["analyze"])
    out = capsys.readouterr().out
    assert code == 0, f"repository lint gate failed:\n{out}"
    assert "0 new finding(s)" in out


def test_default_scan_covers_both_trees(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    main(["analyze"])
    out = capsys.readouterr().out
    n_files = int(out.rsplit("analyzed ", 1)[1].split()[0])
    src_count = sum(1 for _ in (REPO_ROOT / "src").rglob("*.py"))
    assert n_files > src_count, (
        "the default scan should include tests/ on top of src/")
