"""Sanctioned lifecycle forms: with, try/finally, ownership escape."""

import fcntl
from multiprocessing import shared_memory

from repro.obs.trace import span


def roundtrip(name):
    seg = shared_memory.SharedMemory(name=name, create=True, size=64)
    try:
        seg.buf[0] = 1
    finally:
        seg.close()
        seg.unlink()


def read_config(path):
    with open(path) as handle:
        return handle.read()


def update_locked(handle, payload):
    fcntl.flock(handle, fcntl.LOCK_EX)
    try:
        handle.write(payload)
    finally:
        fcntl.flock(handle, fcntl.LOCK_UN)


def traced(work):
    with span("corpus-step"):
        return work()


def adopt(name, registry):
    """Ownership escape: the registry takes over the release."""
    seg = shared_memory.SharedMemory(name=name)
    registry.adopt(seg)
    return None


def handed_back(name):
    """Returning the handle transfers the obligation to the caller."""
    return shared_memory.SharedMemory(name=name)
