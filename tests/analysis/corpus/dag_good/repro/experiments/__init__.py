"""Corpus fixture: registry for a clean DAG driver."""

from . import dagok

ALL_EXPERIMENTS = (dagok,)
