"""Corpus fixture: DAG driver whose Stage declarations are clean.

Covers the skip paths too: a seeded fan-out stage with dynamic names
(output checking falls back to the runtime contract) and a ``**kwargs``
merge stage (opted out of the static signature half).
"""

COLUMNS = ["channel", "power_mw"]


def stage_prepare(base):
    return {"table": [base]}


def stage_shard(table, index, seed):
    return {f"shard_{index}": (table, seed)}


def stage_report(**shards):
    rows = [{"channel": 1, "power_mw": 0.5}]
    result = ExperimentResult(  # noqa: F821 - shape only, never run
        name="dagok", rows=rows, columns=COLUMNS)
    return {"result": result}


def build_graph():
    stages = [Stage("prepare", stage_prepare,  # noqa: F821
                    inputs=("base",), outputs=("table",))]
    for index in range(2):
        stages.append(Stage(  # noqa: F821
            f"shard_{index}", stage_shard, inputs=("table",),
            consts={"index": index}, seed_label=f"shard{index}",
            outputs=(f"shard_{index}",)))
    stages.append(Stage("report", stage_report,  # noqa: F821
                        inputs=("shard_0", "shard_1"),
                        outputs=("result",)))
    return ExperimentGraph(  # noqa: F821 - shape only, never run
        name="dagok", params={"base": 1.0}, stages=tuple(stages))


def run():
    with span("dagok.rows"):  # noqa: F821 - shape only, never run
        rows = [{"channel": 1, "power_mw": 0.5}]
    set_gauge("dagok.n_rows", len(rows))  # noqa: F821
    return ExperimentResult(  # noqa: F821 - contract shape, never run
        name="dagok", rows=rows, columns=COLUMNS)


def render(result):
    return str(result)
