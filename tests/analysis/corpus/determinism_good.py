"""Corpus fixture: randomness threaded through an injected Generator."""

import numpy as np


def draw(rng: np.random.Generator, n: int):
    return rng.normal(size=n)
