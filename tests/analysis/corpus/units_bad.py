"""Corpus fixture: violates both checks of the units rule."""

#: Check B: scientific literal bound to a unit-suffixed name.
POWER_BUDGET_W = 38.9e-3


def sensing_power_mw(total_w):
    """Check A: bare power-of-ten factor in arithmetic."""
    return total_w * 1e3
