"""Corpus fixture: a bare except and an unbounded retry loop."""


def read_entry(path):
    try:
        return path.read_text()
    except:  # noqa: E722  (the bare-except violation under test)
        return None


def fetch_forever(link):
    while True:
        try:
            return link.recv()
        except TimeoutError:
            continue
