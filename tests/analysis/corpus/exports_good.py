"""Corpus fixture: honest export surface, immutable defaults."""

__all__ = ["decode", "encode"]


def encode(values, accumulator=None):
    out = [] if accumulator is None else accumulator
    out.extend(values)
    return out


def decode(values):
    return list(values)
