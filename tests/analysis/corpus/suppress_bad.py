"""Dead inline suppressions (unused-ignore corpus)."""


def scaled(value):
    return value + 1  # lint: ignore[units]


def stamp(value):
    return str(value)  # lint: ignore[determinism]


def helper(rows):
    return list(rows)  # lint: ignore[no-such-rule]
