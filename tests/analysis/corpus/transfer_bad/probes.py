"""Cross-file spec builder smuggling a handle (pipe-transfer corpus)."""


class Probe:
    def __init__(self, depth):
        self.depth = depth


def make_remote_spec(names):
    return {
        "count": len(names),
        "log": open("probe.log", "w"),
    }
