"""Dispatch sites shipping live objects over the pipe."""

from poolmod import get_pool
from probes import Probe, make_remote_spec


def run_tasks(names, jobs):
    pool = get_pool(jobs)
    for name in names:
        pool.submit({
            "name": name,
            "callback": lambda: name,
            "builder": get_pool,
            "probe": Probe(2),
        })
    return pool.submit(make_remote_spec(names))
