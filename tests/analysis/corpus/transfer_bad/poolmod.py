"""Stand-in warm pool the pipe-transfer rule resolves dispatch against."""


class WarmPool:
    def __init__(self, jobs):
        self.jobs = jobs

    def submit(self, spec):
        return spec


def get_pool(jobs):
    return WarmPool(jobs)
