"""Dispatches carrying only allowlisted primitive shapes."""

from poolgood import get_pool


def run_tasks(names, jobs, seed, config):
    pool = get_pool(jobs)
    results = []
    for index, name in enumerate(names):
        spec = {
            "name": str(name),
            "seed": seed + index,
            "label": f"task-{index}",
            "flags": {"cache": True, "jobs": jobs},
            "mode": "wide" if jobs > 1 else "narrow",
            "config": config.to_dict(),
        }
        results.append(pool.submit(spec))
    return results
