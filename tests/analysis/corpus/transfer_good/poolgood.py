"""Stand-in warm pool for the clean pipe-transfer fixture."""


class WarmPool:
    def __init__(self, jobs):
        self.jobs = jobs

    def submit(self, spec):
        return spec


def get_pool(jobs):
    return WarmPool(jobs)
