"""Corpus fixture: stale __all__ and a shared mutable default."""

__all__ = ["encode", "missing_name"]


def encode(values, accumulator=[]):
    accumulator.extend(values)
    return accumulator


def decode(values):
    return list(values)
