"""Corpus fixture: a kernel whose parity oracle no test exercises."""

import numpy as np


def assemble(grid):
    return np.asarray(grid).sum(axis=0)


def assemble_reference(grid):
    total = 0
    for row in grid:
        total = total + np.asarray(row)
    return total
