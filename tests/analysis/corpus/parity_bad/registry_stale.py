"""Corpus fixture: a PARITY_ORACLES registry naming absent callables."""

PARITY_ORACLES = {"pack_fast": "pack_slow"}
