"""Corpus fixture: DAG driver whose Stage declarations are broken.

Four stage-contract violations: an undeclared input, an uncovered
required parameter, a non-module-level fn, and a returned-outputs
mismatch.  The base driver contract (run/render/COLUMNS/
ExperimentResult) is satisfied so only the stage half fires.
"""

COLUMNS = ["channel", "power_mw"]


def stage_prepare(base):
    return {"table": [base]}


def stage_compute(table, gain):
    return {"scaled": [value * gain for value in table]}


def stage_report(scaled):
    result = ExperimentResult(  # noqa: F821 - shape only, never run
        name="dagbroken", rows=[{"channel": 1, "power_mw": scaled[0]}],
        columns=COLUMNS)
    return {"result": result, "rows": scaled}


def build_graph():
    return ExperimentGraph(  # noqa: F821 - shape only, never run
        name="dagbroken", params={"base": 1.0}, stages=(
            Stage("prepare", stage_prepare,  # noqa: F821
                  inputs=("base", "extra"), outputs=("table",)),
            Stage("compute", stage_compute,  # noqa: F821
                  inputs=("table",), outputs=("scaled",)),
            Stage("inline", lambda values: values,  # noqa: F821
                  inputs=("scaled",), outputs=("echoed",)),
            Stage("report", stage_report,  # noqa: F821
                  inputs=("scaled",), outputs=("result",)),
        ))


def run():
    with span("dagbroken.rows"):  # noqa: F821 - shape only, never run
        rows = [{"channel": 1, "power_mw": 0.5}]
    set_gauge("dagbroken.n_rows", len(rows))  # noqa: F821
    return ExperimentResult(  # noqa: F821 - contract shape, never run
        name="dagbroken", rows=rows, columns=COLUMNS)


def render(result):
    return str(result)
