"""Corpus fixture: registry for a DAG driver with broken stages."""

from . import dagbroken

ALL_EXPERIMENTS = (dagbroken,)
