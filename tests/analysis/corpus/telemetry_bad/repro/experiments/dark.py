"""Corpus fixture: contract-clean driver with no spans and no metrics."""

COLUMNS = ["step", "value"]


def run():
    rows = [{"step": 0, "value": 1.0}]
    return ExperimentResult(  # noqa: F821 - contract shape, never run
        name="dark", rows=rows, columns=COLUMNS)


def render(result):
    return str(result)
