"""Corpus fixture: registry whose driver emits no telemetry at all."""

from . import dark

ALL_EXPERIMENTS = (dark,)
