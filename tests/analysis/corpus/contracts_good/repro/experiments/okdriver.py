"""Corpus fixture: contract-clean driver."""

COLUMNS = ["channel", "power_mw"]


def run():
    rows = [{"channel": 1, "power_mw": 0.5}]
    return ExperimentResult(  # noqa: F821 - contract shape, never run
        name="okdriver", rows=rows, columns=COLUMNS)


def render(result):
    return str(result)
