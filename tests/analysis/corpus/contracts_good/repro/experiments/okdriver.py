"""Corpus fixture: contract- and telemetry-clean driver."""

COLUMNS = ["channel", "power_mw"]


def run():
    with span("okdriver.rows"):  # noqa: F821 - shape only, never run
        rows = [{"channel": 1, "power_mw": 0.5}]
    set_gauge("okdriver.n_rows", len(rows))  # noqa: F821
    return ExperimentResult(  # noqa: F821 - contract shape, never run
        name="okdriver", rows=rows, columns=COLUMNS)


def render(result):
    return str(result)
