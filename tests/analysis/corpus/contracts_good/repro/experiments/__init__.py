"""Corpus fixture: registry whose driver honors the contract."""

from . import okdriver

ALL_EXPERIMENTS = (okdriver,)
