"""Corpus fixture: driver that spans its work and exports metrics."""

COLUMNS = ["step", "value"]


def run():
    with span("lit.sweep"):  # noqa: F821 - shape only, never run
        rows = [{"step": 0, "value": 1.0}]
    for row in rows:
        observe("lit.value", row["value"])  # noqa: F821
    inc("lit.rows", len(rows))  # noqa: F821
    return ExperimentResult(  # noqa: F821 - contract shape, never run
        name="lit", rows=rows, columns=COLUMNS)


def render(result):
    return str(result)
