"""Corpus fixture: registry whose driver reports full telemetry."""

from . import lit

ALL_EXPERIMENTS = (lit,)
