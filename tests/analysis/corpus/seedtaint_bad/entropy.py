"""Wall-clock helpers two hops from the sink (seed-taint corpus)."""

import time


def wall_clock_tag():
    return int(time.time_ns())


def session_stamp():
    return wall_clock_tag() + 1
