"""Laundered nondeterminism reaching seed sinks (seed-taint corpus)."""

import os
import time

from entropy import session_stamp


class ExperimentResult:
    def __init__(self, name, rows, seed=None, derived_seed=None):
        self.name = name
        self.rows = rows
        self.seed = seed
        self.derived_seed = derived_seed


def record_run(name, rows):
    return ExperimentResult(name, rows, seed=session_stamp())


def fallback_seed(rows):
    seed = int(time.time())
    return ExperimentResult("fallback", rows, seed=seed)


def derive(name, rows):
    return ExperimentResult(
        name, rows, derived_seed=int.from_bytes(os.urandom(4), "big"))
