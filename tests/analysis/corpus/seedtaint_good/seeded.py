"""Explicit seeds threaded through parameters stay untainted."""


class ExperimentResult:
    def __init__(self, name, rows, seed=None, derived_seed=None):
        self.name = name
        self.rows = rows
        self.seed = seed
        self.derived_seed = derived_seed


def derive_seed(seed, index):
    return seed * 1000003 + index


def record_run(name, rows, seed):
    return ExperimentResult(name, rows, seed=seed,
                            derived_seed=derive_seed(seed, 1))
