"""A live suppression: the units rule would fire on this line."""

POWER_LIMIT_W = 1e-3  # lint: ignore[units]
