"""Leaky shared-memory lifecycles (resource-lifecycle corpus)."""

from multiprocessing import shared_memory


def close_without_unlink(name):
    """Closed but never unlinked: the segment outlives the process."""
    seg = shared_memory.SharedMemory(name=name, create=True, size=64)
    seg.buf[0] = 1
    seg.close()


def early_return_leak(name, skip):
    """The skip path drops the mapping without close or unlink."""
    seg = shared_memory.SharedMemory(name=name)
    if skip:
        return None
    seg.close()
    seg.unlink()
    return True
