"""Tracer span acquired outside ``with`` and never ended."""

from repro.obs.trace import span


def timed_step(work):
    s = span("corpus-step")
    return work()
