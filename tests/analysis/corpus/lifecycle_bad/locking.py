"""fcntl lock held across a raising path (resource-lifecycle corpus)."""

import fcntl


def update_locked(handle, payload, validate):
    fcntl.flock(handle, fcntl.LOCK_EX)
    if not validate(payload):
        raise ValueError("bad payload")
    handle.write(payload)
    fcntl.flock(handle, fcntl.LOCK_UN)
