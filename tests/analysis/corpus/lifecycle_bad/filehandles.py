"""Leaky file handles (resource-lifecycle corpus)."""


def read_config(path, strict):
    """The raising path leaves the handle open."""
    handle = open(path)
    text = handle.read()
    if strict and not text:
        raise ValueError(path)
    handle.close()
    return text


def touch_marker(path):
    """Handle never bound, never closed."""
    open(path, "w")
