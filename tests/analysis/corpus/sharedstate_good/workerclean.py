"""Sanctioned worker-side state handling: set_* setters and resets."""

from multiprocessing import Process

_ENABLED = False
_SEED = None


def set_task_seed(value):
    global _SEED
    _SEED = value


def enable():
    global _ENABLED
    _ENABLED = True


def worker_main(queue):
    for item in iter(queue.get, None):
        set_task_seed(item)
        enable()
        rows = [item * 2]
        rows.append(item)
        queue.put(rows)


def launch(queue):
    proc = Process(target=worker_main, args=(queue,))
    proc.start()
    return proc
