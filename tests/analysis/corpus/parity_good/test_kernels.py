"""Corpus fixture: the parity test that satisfies the rule.

Never collected by pytest (the corpus directory is excluded); it only
needs to mention both halves of the pair.
"""

from parity_good.kernels import fold_bits, fold_bits_reference


def test_fold_bits_matches_reference():
    data = [1, 0, 1, 1]
    assert fold_bits(data) == fold_bits_reference(data)
