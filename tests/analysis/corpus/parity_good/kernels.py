"""Corpus fixture: kernel/oracle pair covered by a parity test."""


def fold_bits(values):
    return sum(v << i for i, v in enumerate(values))


def fold_bits_reference(values):
    total = 0
    for i, v in enumerate(values):
        total += v << i
    return total
