"""Corpus fixture: typed handlers, bounded retries, explicit exits."""

MAX_RETRIES = 3


def read_entry(path):
    try:
        return path.read_text()
    except OSError:
        return None


def fetch_bounded(link):
    for _attempt in range(MAX_RETRIES + 1):
        try:
            return link.recv()
        except TimeoutError:
            continue
    return None


def drain(link):
    items = []
    while True:
        try:
            item = link.recv()
        except TimeoutError:
            break
        items.append(item)
    return items
