"""Module-level mutable state a sibling worker writes into."""

SETTINGS = {"mode": "fast"}
