"""Worker-reachable functions writing module globals (corpus)."""

from multiprocessing import Process

import globalstate

RESULTS = []
TASK_COUNT = 0


def record(row):
    RESULTS.append(row)


def bump():
    global TASK_COUNT
    TASK_COUNT = TASK_COUNT + 1


def retune(mode):
    globalstate.SETTINGS["mode"] = mode


def worker_main(queue):
    for row in iter(queue.get, None):
        record(row)
        bump()
        retune("slow")


def launch(queue):
    proc = Process(target=worker_main, args=(queue,))
    proc.start()
    return proc
