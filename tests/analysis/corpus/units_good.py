"""Corpus fixture: clean under the units rule."""

from repro.units import mw, to_mw

POWER_BUDGET_W = mw(38.9)

#: An acknowledged exception stays silent via inline suppression.
HALF_SCALE = 1e3 * 0.5  # lint: ignore[units]


def sensing_power_mw(total_w):
    """Conversions go through the name-carrying helpers."""
    return to_mw(total_w)


def relative_error(a, b):
    """Additive epsilons and comparisons never fire the rule."""
    return abs(a - b) / (abs(b) + 1e-12)
