"""Corpus fixture: driver violating every clause of the contract."""


def run():
    return ExperimentResult(name="other", rows=[])  # noqa: F821
