"""Corpus fixture: registry with a broken and a missing driver."""

from . import broken

ALL_EXPERIMENTS = (broken, ghost)  # noqa: F821 - 'ghost' intentionally absent
