"""Corpus fixture: ambient randomness in all four forbidden forms."""

import random
import time

import numpy as np


def draw(n):
    np.random.seed(42)
    rng = np.random.default_rng(time.time_ns())
    return [random.random() for _ in range(n)], rng.normal(size=n)
