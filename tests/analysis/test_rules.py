"""Rule-level tests against the golden violation corpus."""

from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import (AnalysisError, all_rules, analyze_paths,
                            collect_files, rule_by_id)

CORPUS = Path(__file__).parent / "corpus"

#: Findings each corpus fixture is designed to produce.  The
#: driver-telemetry count spans two fixtures: contracts_bad/broken.py
#: (2: no span, no metric) and telemetry_bad/dark.py (2 more).  The
#: determinism count includes one deliberate overlap in
#: seedtaint_bad/recorder.py: the per-file rule flags the
#: ``int(time.time())`` assignment while seed-taint flags the sink.
EXPECTED_BY_RULE = {
    "determinism": 5,
    "driver-telemetry": 4,
    "experiment-contract": 9,
    "export-hygiene": 3,
    "parity-oracle": 2,
    "pipe-transfer": 4,
    "resilience": 2,
    "resource-lifecycle": 7,
    "seed-taint": 3,
    "units": 2,
    "unused-ignore": 3,
    "worker-shared-state": 3,
}


def test_registry_exposes_all_rules():
    assert sorted(rule.rule_id for rule in all_rules()) == sorted(
        EXPECTED_BY_RULE)
    assert rule_by_id("units").rule_id == "units"
    with pytest.raises(KeyError):
        rule_by_id("no-such-rule")


def test_rule_by_id_error_lists_known_rules():
    with pytest.raises(KeyError) as exc:
        rule_by_id("no-such-rule")
    message = exc.value.args[0]
    assert "unknown rule 'no-such-rule'" in message
    for rule_id in EXPECTED_BY_RULE:
        assert rule_id in message


def test_corpus_totals_by_rule():
    findings = analyze_paths([CORPUS])
    assert Counter(f.rule for f in findings) == EXPECTED_BY_RULE


def test_good_fixtures_are_clean():
    findings = analyze_paths([CORPUS])
    offenders = [f for f in findings if "good" in f.path]
    assert offenders == []


def test_units_rule_flags_both_checks():
    findings = analyze_paths([CORPUS / "units_bad.py"])
    messages = sorted(f.message for f in findings)
    assert len(findings) == 2
    assert any("bare power-of-ten factor" in m for m in messages)
    assert any("unit-suffixed binding 'POWER_BUDGET_W'" in m
               for m in messages)


def test_units_rule_suppression_and_epsilons():
    assert analyze_paths([CORPUS / "units_good.py"]) == []


def test_units_rule_fires_without_suppression(tmp_path):
    clean = (CORPUS / "units_good.py").read_text(encoding="utf-8")
    # Built by concatenation so this line is not itself a suppression.
    marker = "  # lint: " + "ignore[units]"
    stripped = clean.replace(marker, "")
    target = tmp_path / "resuppressed.py"
    target.write_text(stripped, encoding="utf-8")
    findings = analyze_paths([target])
    assert [f.rule for f in findings] == ["units"]


def test_determinism_rule_catalogue():
    findings = analyze_paths([CORPUS / "determinism_bad.py"])
    assert len(findings) == 4
    blob = " | ".join(f.message for f in findings)
    assert "stdlib 'random'" in blob
    assert "np.random.seed" in blob
    assert "internal default_rng()" in blob
    assert "time-derived RNG seed" in blob
    assert analyze_paths([CORPUS / "determinism_good.py"]) == []


def test_parity_rule_untested_pair_and_stale_registry():
    findings = analyze_paths([CORPUS / "parity_bad"])
    assert len(findings) == 2
    blob = " | ".join(f.message for f in findings)
    assert "'assemble' has parity oracle 'assemble_reference'" in blob
    assert "PARITY_ORACLES names 'pack_fast'" in blob


def test_parity_rule_satisfied_by_covering_test():
    assert analyze_paths([CORPUS / "parity_good"]) == []


def test_contract_rule_broken_driver_and_missing_module():
    all_findings = analyze_paths([CORPUS / "contracts_bad"])
    findings = [f for f in all_findings if f.rule == "experiment-contract"]
    # broken.py also trips driver-telemetry (no span, no metric).
    assert len(all_findings) == 7
    assert len(findings) == 5
    blob = " | ".join(f.message for f in findings)
    assert "missing module-level def render()" in blob
    assert "missing non-empty COLUMNS" in blob
    assert "name= must be 'broken'" in blob
    assert "columns=COLUMNS" in blob
    assert "'ghost' has no module ghost.py" in blob


def test_contract_rule_clean_driver():
    assert analyze_paths([CORPUS / "contracts_good"]) == []


def test_contract_rule_dag_stage_declarations():
    findings = analyze_paths([CORPUS / "dag_bad"])
    assert [f.rule for f in findings] == ["experiment-contract"] * 4
    blob = " | ".join(f.message for f in findings)
    assert "declared values ['extra'] are not parameters" in blob
    assert "required parameters ['gain'] of stage_compute()" in blob
    assert "fn must be a module-level function" in blob
    assert "returns keys ['result', 'rows'] but declares outputs" in blob


def test_contract_rule_clean_dag_driver():
    assert analyze_paths([CORPUS / "dag_good"]) == []


def test_export_rule_catalogue():
    findings = analyze_paths([CORPUS / "exports_bad.py"])
    assert len(findings) == 3
    blob = " | ".join(f.message for f in findings)
    assert "__all__ exports 'missing_name'" in blob
    assert "public function 'decode' missing from __all__" in blob
    assert "mutable default argument (list) in encode" in blob
    assert analyze_paths([CORPUS / "exports_good.py"]) == []


def test_resilience_rule_catalogue():
    findings = analyze_paths([CORPUS / "resilience_bad.py"])
    assert len(findings) == 2
    blob = " | ".join(f.message for f in findings)
    assert "bare 'except:'" in blob
    assert "unbounded retry" in blob
    assert analyze_paths([CORPUS / "resilience_good.py"]) == []


def test_resilience_rule_accepts_escaping_while_true(tmp_path):
    target = tmp_path / "pump.py"
    target.write_text(
        "def pump(link):\n"
        "    while True:\n"
        "        try:\n"
        "            link.step()\n"
        "        except TimeoutError:\n"
        "            if link.done():\n"
        "                break\n"
        "            continue\n",
        encoding="utf-8")
    assert analyze_paths([target]) == []


def test_telemetry_rule_dark_driver_and_clean_fixture():
    findings = analyze_paths([CORPUS / "telemetry_bad"])
    assert len(findings) == 2
    blob = " | ".join(f.message for f in findings)
    assert "never opens a span" in blob
    assert "never exports a metric" in blob
    assert analyze_paths([CORPUS / "telemetry_good"]) == []


def test_lifecycle_rule_catalogue():
    findings = analyze_paths([CORPUS / "lifecycle_bad"])
    lifecycle = [f for f in findings if f.rule == "resource-lifecycle"]
    assert len(lifecycle) == 7
    blob = " | ".join(f.message for f in lifecycle)
    assert "shared-memory segment 'seg'" in blob
    assert "not unlinked (or ownership-transferred)" in blob
    assert "file handle 'handle'" in blob
    assert "fcntl lock acquired here is not released with LOCK_UN" in blob
    assert "tracer span 's'" in blob
    # The early-return segment leaks both protocol halves.
    seg_lines = [f.line for f in lifecycle
                 if "segments.py" in f.path and f.line == 15]
    assert len(seg_lines) == 2
    assert analyze_paths([CORPUS / "lifecycle_good"]) == []


def test_transfer_rule_flags_cross_file_spec_builder():
    findings = analyze_paths([CORPUS / "transfer_bad"])
    transfer = [f for f in findings if f.rule == "pipe-transfer"]
    assert len(transfer) == 4
    blob = " | ".join(f.message for f in transfer)
    assert "a lambda (unpicklable callable)" in blob
    assert "the function 'get_pool' (code reference)" in blob
    assert "an instance of project class 'Probe'" in blob
    # The open() handle is found inside the *sibling* builder module:
    # the dispatch is in dispatch.py, the dict literal in probes.py.
    handle = [f for f in transfer if "open file handle" in f.message]
    assert [f.path.rsplit("/", 1)[-1] for f in handle] == ["probes.py"]
    assert analyze_paths([CORPUS / "transfer_good"]) == []


def test_sharedstate_rule_reports_reachability_chain():
    findings = analyze_paths([CORPUS / "sharedstate_bad"])
    shared = [f for f in findings if f.rule == "worker-shared-state"]
    assert len(shared) == 3
    blob = " | ".join(f.message for f in shared)
    assert "mutates module global 'RESULTS' in place (.append())" in blob
    assert "rebinds module global 'TASK_COUNT'" in blob
    # Cross-file write: retune() mutates the sibling module's dict.
    assert "writes into module global 'globalstate.SETTINGS'" in blob
    assert "worker_main -> record" in blob
    assert analyze_paths([CORPUS / "sharedstate_good"]) == []


def test_seedtaint_rule_traces_interprocedural_provenance():
    findings = analyze_paths([CORPUS / "seedtaint_bad"])
    taint = [f for f in findings if f.rule == "seed-taint"]
    assert len(taint) == 3
    blob = " | ".join(f.message for f in taint)
    # Two call-graph hops away, in a sibling module.
    assert "'entropy:session_stamp' via wall_clock_tag" in blob
    assert "tainted local 'seed'" in blob
    assert "'os.urandom()' (wall-clock/entropy source)" in blob
    assert all("ExperimentResult" in f.message for f in taint)
    assert analyze_paths([CORPUS / "seedtaint_good"]) == []


def test_unused_ignore_rule_flags_dead_suppressions():
    findings = analyze_paths([CORPUS / "suppress_bad.py"])
    assert [f.rule for f in findings] == ["unused-ignore"] * 3
    blob = " | ".join(f.message for f in findings)
    assert "suppresses no units finding" in blob
    assert "suppresses no determinism finding" in blob
    assert "suppression names unknown rule 'no-such-rule'" in blob


def test_live_suppression_is_not_reported():
    assert analyze_paths([CORPUS / "suppress_good.py"]) == []


def test_default_scan_skips_corpus_directories():
    files = collect_files([Path(__file__).parent])
    assert files, "the analysis test package itself should be scanned"
    assert all("corpus" not in parsed.path.parts for parsed in files)


def test_syntax_errors_are_analysis_errors(tmp_path):
    bad = tmp_path / "broken_syntax.py"
    bad.write_text("def half:\n", encoding="utf-8")
    with pytest.raises(AnalysisError, match="syntax error"):
        analyze_paths([bad])


def test_missing_path_is_an_analysis_error():
    with pytest.raises(AnalysisError, match="no such path"):
        analyze_paths([CORPUS / "does_not_exist"])


def test_findings_are_sorted_and_stable():
    first = analyze_paths([CORPUS])
    second = analyze_paths([CORPUS])
    assert first == second
    assert first == sorted(first)
