"""Tests for the deterministic run timeline (repro.obs.events)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import events as ev


@pytest.fixture(autouse=True)
def _clean_global_log():
    ev.disable()
    ev.EVENTS.reset()
    yield
    ev.disable()
    ev.EVENTS.reset()


class TestEvent:
    def test_to_dict_sorts_attr_keys(self):
        event = ev.Event(seq=3, driver="fig7", kind="metric",
                         name="fig7.x", attrs={"b": 1, "a": 2})
        assert list(event.to_dict()["attrs"]) == ["a", "b"]

    def test_jsonl_is_one_canonical_line(self):
        event = ev.Event(seq=0, driver="", kind="cache", name="hit",
                         attrs={})
        line = event.to_jsonl()
        assert "\n" not in line
        assert json.loads(line) == event.to_dict()


class TestEventLog:
    def test_seq_is_monotonic_and_gapless(self):
        log = ev.EventLog()
        for i in range(5):
            log.emit("metric", f"m{i}")
        assert [e.seq for e in log.events] == list(range(5))

    def test_scope_tags_and_restores(self):
        log = ev.EventLog()
        log.emit("span_start", "outer")
        with log.scope("fig5"):
            log.emit("metric", "fig5.x")
            with log.scope("fig5"):  # reentrant, same driver
                log.emit("metric", "fig5.y")
        log.emit("span_end", "outer")
        drivers = [e.driver for e in log.events]
        assert drivers == [ev.ENGINE_SCOPE, "fig5", "fig5",
                           ev.ENGINE_SCOPE]

    def test_reset_clears_events_and_scope(self):
        log = ev.EventLog()
        with log.scope("fig4"):
            log.emit("metric", "fig4.x")
            log.reset()
        # reset dropped the scope even though the context was active
        log.emit("metric", "after")
        assert [e.driver for e in log.events] == [ev.ENGINE_SCOPE]

    def test_adopt_reassigns_seq_in_order(self):
        log = ev.EventLog()
        log.emit("span_start", "engine")
        worker = ev.EventLog()
        with worker.scope("fig9"):
            worker.emit("metric", "fig9.x", value=1.0)
            worker.emit("metric", "fig9.y", value=2.0)
        adopted = log.adopt(worker.to_dicts())
        assert adopted == 2
        assert [e.seq for e in log.events] == [0, 1, 2]
        assert [e.driver for e in log.events] == ["", "fig9", "fig9"]
        assert log.events[1].attrs == {"value": 1.0}

    def test_jsonl_round_trip_and_trailing_newline(self, tmp_path):
        log = ev.EventLog()
        log.emit("fault", "link.drop", domain="link")
        path = log.write_jsonl(tmp_path / "deep" / "events.jsonl")
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert [json.loads(line) for line in text.splitlines()] \
            == log.to_dicts()
        assert ev.EventLog().to_jsonl() == ""

    def test_thread_safety_no_lost_or_duplicate_seq(self):
        log = ev.EventLog()

        def hammer():
            for _ in range(200):
                log.emit("metric", "m")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [e.seq for e in log.events]
        assert seqs == list(range(800))


class TestModuleLevelGate:
    def test_emit_is_noop_until_enabled(self):
        ev.emit("metric", "dropped")
        assert len(ev.EVENTS) == 0
        ev.enable()
        ev.emit("metric", "kept")
        ev.disable()
        ev.emit("metric", "dropped-again")
        assert [e.name for e in ev.EVENTS.events] == ["kept"]

    def test_driver_scope_passthrough_when_disabled(self):
        with ev.driver_scope("fig8"):
            assert ev.current_driver() == ev.ENGINE_SCOPE
        ev.enable()
        with ev.driver_scope("fig8"):
            assert ev.current_driver() == "fig8"
        assert ev.current_driver() == ev.ENGINE_SCOPE

    def test_fixed_stream_is_byte_identical(self):
        def one_run() -> str:
            ev.EVENTS.reset()
            ev.enable()
            with ev.driver_scope("table1"):
                ev.emit("span_start", "experiment.table1")
                ev.emit("metric", "table1.n_designs", op="gauge",
                        value=14.0)
                ev.emit("span_end", "experiment.table1")
            ev.disable()
            return ev.EVENTS.to_jsonl()

        assert one_run() == one_run()
