"""Tests for benchmark history and the perf-trajectory regression gate."""

from __future__ import annotations

import json

import pytest

from repro.obs.bench import (append_history, check_regressions,
                             history_record, load_history, render_gate)

ENTRIES = [
    {"name": "rice_encode", "after_s": 0.010, "speedup": 12.0},
    {"name": "kalman_step", "after_s": 0.020, "speedup": 3.5},
]


def _record(after_s: float, quick: bool = True, sha: str = "abc") -> dict:
    entries = [{"name": "rice_encode", "after_s": after_s,
                "speedup": 10.0}]
    return history_record(entries, quick=quick, cpus=4, sha=sha)


class TestHistoryLedger:
    def test_record_shape_and_config_key(self):
        record = history_record(ENTRIES, quick=True, cpus=8, sha="deadbee")
        assert record["sha"] == "deadbee"
        assert record["config"] == {"quick": True, "cpus": 8}
        assert record["kernels"]["rice_encode"]["after_s"] == 0.010

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "deep" / "bench_history.jsonl"
        first = _record(0.010, sha="one")
        second = _record(0.011, sha="two")
        append_history(first, path)
        append_history(second, path)
        loaded = load_history(path)
        assert [r["sha"] for r in loaded] == ["one", "two"]
        assert loaded[0] == first

    def test_missing_ledger_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_corrupt_line_reports_location(self, tmp_path):
        path = tmp_path / "bench_history.jsonl"
        path.write_text('{"sha": "ok"}\nbroken\n', encoding="utf-8")
        with pytest.raises(ValueError, match=":2:"):
            load_history(path)


class TestRegressionGate:
    def test_no_baseline_passes(self):
        current = _record(0.010)
        report = check_regressions(current, history=[])
        assert report["ok"]
        assert report["rows"][0]["status"] == "no-baseline"
        assert "no baseline yet" in render_gate(report)

    def test_within_threshold_passes(self):
        history = [_record(0.010) for _ in range(3)]
        current = _record(0.011)  # 10% slower
        report = check_regressions(current, history)
        assert report["ok"]
        assert report["rows"][0]["status"] == "ok"

    def test_25pct_slowdown_fails(self):
        history = [_record(0.010) for _ in range(3)]
        current = _record(0.0125)
        report = check_regressions(current, history)
        assert not report["ok"]
        assert report["n_regressions"] == 1
        assert report["rows"][0]["ratio"] == 1.25
        rendered = render_gate(report)
        assert "FAIL" in rendered and "[regression]" in rendered

    def test_baseline_is_median_of_window(self):
        # one noisy fast outlier must not poison the baseline
        history = [_record(0.002), _record(0.010), _record(0.010),
                   _record(0.010)]
        current = _record(0.011)
        report = check_regressions(current, history, window=4)
        assert report["rows"][0]["baseline_s"] == 0.010
        assert report["ok"]

    def test_window_ignores_older_samples(self):
        history = [_record(0.001)] * 10 + [_record(0.010)] * 5
        current = _record(0.011)
        report = check_regressions(current, history, window=5)
        assert report["ok"]

    def test_different_config_never_compares(self):
        history = [_record(0.001, quick=False) for _ in range(5)]
        current = _record(0.010, quick=True)
        report = check_regressions(current, history)
        assert report["ok"]
        assert report["rows"][0]["status"] == "no-baseline"

    def test_current_excluded_from_its_own_baseline_by_identity(self,
                                                                tmp_path):
        path = tmp_path / "bench_history.jsonl"
        for _ in range(3):
            append_history(_record(0.010), path)
        append_history(_record(0.0125), path)
        history = load_history(path)
        report = check_regressions(history[-1], history)
        assert not report["ok"]

    def test_report_is_json_able(self):
        report = check_regressions(_record(0.010), [_record(0.010)])
        assert json.loads(json.dumps(report)) == report


class TestCpusConfigKeying:
    """Regression guard (ISSUE 7 satellite): parallel-engine timings
    scale with the host CPU count, so records taken on hosts with
    different ``cpus`` must never share a baseline — and legacy records
    without the ``cpus`` key must drop out of every baseline rather
    than pollute one."""

    def _cpu_record(self, after_s: float, cpus: int) -> dict:
        entries = [{"name": "run_all_warm_jobs4", "after_s": after_s,
                    "speedup": 3.0}]
        return history_record(entries, quick=False, cpus=cpus,
                              sha="abc")

    def test_different_cpu_counts_never_share_baselines(self):
        # Five fast samples on a 16-core host must not flag a slower
        # (but locally normal) 1-core run.
        history = [self._cpu_record(0.5, cpus=16) for _ in range(5)]
        report = check_regressions(self._cpu_record(4.0, cpus=1),
                                   history)
        assert report["ok"]
        assert report["rows"][0]["status"] == "no-baseline"

    def test_same_cpu_count_does_compare(self):
        history = [self._cpu_record(0.5, cpus=4) for _ in range(5)]
        report = check_regressions(self._cpu_record(4.0, cpus=4),
                                   history)
        assert not report["ok"]

    def test_legacy_records_without_cpus_are_excluded(self):
        legacy = {"sha": "old",
                  "config": {"quick": False},  # pre-cpus schema
                  "kernels": {"run_all_warm_jobs4":
                              {"after_s": 0.5, "speedup": 3.0}}}
        report = check_regressions(self._cpu_record(4.0, cpus=4),
                                   [legacy] * 5)
        assert report["ok"]
        assert report["rows"][0]["status"] == "no-baseline"


class TestGatedEntries:
    """Entries tagged gated (e.g. parallel benches on a 1-CPU host)
    skip the gate and never seed baselines."""

    def _gated_record(self, after_s: float, gated: bool = True,
                      sha: str = "abc") -> dict:
        entries = [{"name": "run_all_jobs4", "after_s": after_s,
                    "speedup": 0.9, "gated": gated}]
        return history_record(entries, quick=False, cpus=1, sha=sha)

    def test_gated_flag_propagates_to_history(self):
        record = self._gated_record(0.5)
        assert record["kernels"]["run_all_jobs4"]["gated"] is True
        ungated = self._gated_record(0.5, gated=False)
        assert "gated" not in ungated["kernels"]["run_all_jobs4"]

    def test_gated_current_entry_never_fails(self):
        history = [self._gated_record(0.1) for _ in range(5)]
        report = check_regressions(self._gated_record(9.9), history)
        assert report["ok"]
        assert report["rows"][0]["status"] == "gated"
        assert report["rows"][0]["baseline_s"] is None
        assert "gated on this host" in render_gate(report)

    def test_gated_samples_excluded_from_baselines(self):
        # Five gated (slow, 1-CPU) samples must not become the bar an
        # ungated run is compared against: with only gated history the
        # ungated run has no baseline at all.
        history = [self._gated_record(9.0) for _ in range(5)]
        report = check_regressions(
            self._gated_record(0.5, gated=False), history)
        assert report["ok"]
        assert report["rows"][0]["status"] == "no-baseline"

    def test_mixed_history_baselines_on_ungated_only(self):
        history = ([self._gated_record(9.0) for _ in range(3)]
                   + [self._gated_record(0.5, gated=False)
                      for _ in range(3)])
        report = check_regressions(
            self._gated_record(0.5, gated=False), history)
        assert report["ok"]
        row = report["rows"][0]
        assert row["status"] == "ok"
        assert row["baseline_s"] == pytest.approx(0.5)

    def test_committed_bench_perf_tags_single_cpu_parallel(self):
        from pathlib import Path
        path = Path(__file__).resolve().parents[2] / "BENCH_perf.json"
        data = json.loads(path.read_text())
        for entry in data["entries"]:
            if entry["name"].startswith("run_all") and entry.get(
                    "cpus", data["cpus"]) < 2:
                assert entry.get("gated") is True
