"""Tests for hotspot aggregation."""

import pytest

from repro.obs import trace
from repro.obs.profile import hotspots, render_hotspots
from repro.obs.trace import Tracer


@pytest.fixture()
def tracer():
    t = Tracer()
    with t.start("root"):
        with t.start("leaf"):
            pass
        with t.start("leaf"):
            pass
    return t


class TestHotspots:
    def test_aggregates_by_name(self, tracer):
        spots = {s.name: s for s in hotspots(tracer.roots)}
        assert spots["leaf"].calls == 2
        assert spots["root"].calls == 1
        assert spots["root"].total_s >= spots["leaf"].total_s

    def test_self_time_excludes_children(self, tracer):
        root = tracer.roots[0]
        spots = {s.name: s for s in hotspots(tracer.roots)}
        child_total = sum(c.duration_s for c in root.children)
        assert spots["root"].self_s == pytest.approx(
            root.duration_s - child_total, abs=1e-9)

    def test_top_n_truncates(self, tracer):
        assert len(hotspots(tracer.roots, top_n=1)) == 1

    def test_empty_forest(self):
        assert hotspots([]) == []


class TestRender:
    def test_render_contains_columns_and_names(self, tracer):
        text = render_hotspots(hotspots(tracer.roots))
        assert "span" in text and "calls" in text and "share" in text
        assert "root" in text and "leaf" in text

    def test_render_empty(self):
        assert render_hotspots([]) == "(no spans recorded)"


class TestEndToEnd:
    def test_profile_of_instrumented_experiment(self):
        from repro.experiments import fig8, run_module

        trace.enable()
        trace.TRACER.reset()
        try:
            run_module(fig8)
            spots = hotspots(trace.TRACER.roots)
        finally:
            trace.disable()
            trace.TRACER.reset()
        names = {s.name for s in spots}
        assert "experiment.fig8" in names
        assert "fig8.worked_examples" in names


class TestProfileCli:
    def test_profile_of_degraded_failure_run(self, monkeypatch, capsys):
        """``python -m repro profile`` must render a profile — not
        crash — when the driver dies and only FAILURE_COLUMNS rows are
        recorded (ISSUE 6 satellite)."""
        from repro.cli import main
        from repro.experiments import fig8

        def explode(seed=None):
            raise RuntimeError("injected driver failure")

        monkeypatch.setattr(fig8, "run", explode)
        assert main(["profile", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "== profile:" in out
        assert "failed" in out.lower() or "error" in out.lower()

    def test_profile_of_healthy_run(self, capsys):
        from repro.cli import main

        assert main(["profile", "fig8", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "experiment.fig8" in out
        assert "hotspots" in out
