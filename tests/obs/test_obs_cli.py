"""End-to-end tests of ``python -m repro obs`` and ``--events`` runs."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.bench import append_history, history_record


@pytest.fixture
def events_run(tmp_path, capsys):
    """One small --events run; yields (output_dir, events_path)."""
    out_dir = tmp_path / "run"
    assert main(["evaluate", "table1", "fig4", "--seed", "7", "--events",
                 "--quiet", "--output-dir", str(out_dir)]) == 0
    capsys.readouterr()
    return out_dir, out_dir / "events.jsonl"


class TestEventsFlag:
    def test_events_jsonl_written_and_parseable(self, events_run):
        _, events_path = events_run
        assert events_path.exists()
        events = [json.loads(line)
                  for line in events_path.read_text().splitlines()]
        assert events
        assert {e["driver"] for e in events} >= {"table1", "fig4"}
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_fixed_seed_events_byte_identical(self, tmp_path, capsys):
        paths = []
        for name in ("a", "b"):
            out_dir = tmp_path / name
            assert main(["evaluate", "table1", "--seed", "7", "--events",
                         "--quiet", "--output-dir", str(out_dir)]) == 0
            paths.append(out_dir / "events.jsonl")
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_no_events_file_without_flag(self, tmp_path, capsys):
        out_dir = tmp_path / "plain"
        assert main(["evaluate", "table1", "--quiet",
                     "--output-dir", str(out_dir)]) == 0
        capsys.readouterr()
        assert not (out_dir / "events.jsonl").exists()


class TestObsView:
    def test_view_census(self, events_run, capsys):
        _, events_path = events_run
        assert main(["obs", "view", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig4" in out

    def test_view_rollup_and_json(self, events_run, capsys):
        _, events_path = events_run
        assert main(["obs", "view", str(events_path), "--rollup",
                     "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert any(row["span"] == "experiment.table1" for row in rows)

    def test_view_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["obs", "view", str(tmp_path / "nope.jsonl")]) == 2
        assert "obs:" in capsys.readouterr().err


class TestObsQuery:
    def test_query_filters(self, events_run, capsys):
        _, events_path = events_run
        assert main(["obs", "query", str(events_path),
                     "--driver", "fig4", "--kind", "metric"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        events = [json.loads(line) for line in out]
        assert events
        assert all(e["driver"] == "fig4" and e["kind"] == "metric"
                   for e in events)


class TestObsDiff:
    def test_same_run_diffs_equal(self, events_run, capsys):
        _, events_path = events_run
        assert main(["obs", "diff", str(events_path),
                     str(events_path)]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_different_runs_exit_one(self, events_run, tmp_path, capsys):
        _, events_path = events_run
        other_dir = tmp_path / "other"
        assert main(["evaluate", "table1", "--seed", "7", "--events",
                     "--quiet", "--output-dir", str(other_dir)]) == 0
        capsys.readouterr()
        code = main(["obs", "diff", str(events_path),
                     str(other_dir / "events.jsonl")])
        out = capsys.readouterr().out
        assert code == 1
        assert "runs differ" in out


class TestObsCriticalPath:
    def test_structural_path(self, events_run, capsys):
        _, events_path = events_run
        assert main(["obs", "critical-path", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "share=" in out


class TestObsBenchGate:
    def _seed_history(self, path, after_s_list):
        for after_s in after_s_list:
            record = history_record(
                [{"name": "rice_encode", "after_s": after_s,
                  "speedup": 10.0}], quick=True, cpus=4, sha="seed")
            append_history(record, path)

    def test_gate_passes_on_stable_history(self, tmp_path, capsys):
        history = tmp_path / "bench_history.jsonl"
        self._seed_history(history, [0.010, 0.010, 0.010, 0.0101])
        assert main(["obs", "bench-gate", "--history",
                     str(history)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_gate_fails_on_25pct_slowdown(self, tmp_path, capsys):
        history = tmp_path / "bench_history.jsonl"
        self._seed_history(history, [0.010, 0.010, 0.010])
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps({"entries": [
            {"name": "rice_encode", "after_s": 0.0125,
             "speedup": 8.0}], "quick": True, "cpus": 4}),
            encoding="utf-8")
        code = main(["obs", "bench-gate", "--history", str(history),
                     "--input", str(slow)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out and "regression" in out

    def test_empty_history_exits_two(self, tmp_path, capsys):
        assert main(["obs", "bench-gate", "--history",
                     str(tmp_path / "none.jsonl")]) == 2


class TestObsReport:
    def test_markdown_report(self, events_run, capsys):
        out_dir, _ = events_run
        assert main(["obs", "report", "--output-dir",
                     str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "power_budget" in out and "Overall" in out

    def test_html_report_written(self, events_run, tmp_path, capsys):
        out_dir, _ = events_run
        target = tmp_path / "dash.html"
        assert main(["obs", "report", "--output-dir", str(out_dir),
                     "--format", "html", "--out", str(target)]) == 0
        assert target.read_text(encoding="utf-8").startswith(
            "<!DOCTYPE html>")
