"""Tests for the safety-envelope dashboard."""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.obs.report import (build_dashboard, fleet_stats, load_csv_rows,
                              render_html, render_markdown,
                              safety_envelopes)


def _write_csv(path: Path, rows: list[dict[str, object]]) -> None:
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)


def _write_fig4(directory: Path, power_mw: float = 1.0,
                area_mm2: float = 50.0, safe: bool = True) -> None:
    _write_csv(directory / "fig4.csv",
               [{"name": "demo-soc", "power_mw": power_mw,
                 "area_mm2": area_mm2, "safe": safe,
                 "power_density_mw_cm2": 2.0}])


def _write_fig7(directory: Path, feasible: bool = True) -> None:
    _write_csv(directory / "fig7.csv",
               [{"soc": "demo-soc", "channels": 1024,
                 "feasible": feasible}])


def _write_manifest(directory: Path, stem: str, duration_s: float,
                    rss: int) -> None:
    (directory / f"{stem}.manifest.json").write_text(
        json.dumps({"duration_s": duration_s, "peak_rss_bytes": rss}),
        encoding="utf-8")


class TestEnvelopes:
    def test_cool_design_passes_all_envelopes(self, tmp_path):
        _write_fig4(tmp_path, power_mw=1.0, area_mm2=100.0)
        _write_fig7(tmp_path, feasible=True)
        envelopes = {env["envelope"]: env
                     for env in safety_envelopes(tmp_path)}
        assert envelopes["power_budget"]["verdict"] == "PASS"
        assert envelopes["thermal_rise"]["verdict"] == "PASS"
        assert envelopes["link_ber_goodput"]["verdict"] == "PASS"
        assert envelopes["link_ber_goodput"]["n_within"] == 1

    def test_hot_design_fails_power_and_thermal(self, tmp_path):
        # 500 mW over 10 mm^2 = 5 W/cm^2, far beyond 40 mW/cm^2
        _write_fig4(tmp_path, power_mw=500.0, area_mm2=10.0, safe=False)
        _write_fig7(tmp_path)
        envelopes = {env["envelope"]: env
                     for env in safety_envelopes(tmp_path)}
        assert envelopes["power_budget"]["verdict"] == "FAIL"
        assert envelopes["power_budget"]["worst_margin_mw"] < 0
        assert envelopes["thermal_rise"]["verdict"] == "FAIL"

    def test_missing_csvs_report_no_data(self, tmp_path):
        verdicts = [env["verdict"] for env in safety_envelopes(tmp_path)]
        assert verdicts == ["NO-DATA"] * 3

    def test_infeasible_soc_is_context_not_failure(self, tmp_path):
        _write_fig4(tmp_path)
        _write_fig7(tmp_path, feasible=False)
        link = safety_envelopes(tmp_path)[2]
        assert link["n_within"] == 0
        assert link["worst_case"] == "demo-soc"
        # ARQ goodput at the BER target still holds, so the link
        # envelope passes; infeasibility is a paper result.
        assert link["verdict"] == "PASS"

    def test_load_csv_rows_missing_file_is_empty(self, tmp_path):
        assert load_csv_rows(tmp_path / "absent.csv") == []


class TestFleetStats:
    def test_percentiles_over_manifests(self, tmp_path):
        for i in range(10):
            _write_manifest(tmp_path, f"run{i}", duration_s=float(i + 1),
                            rss=(i + 1) * 1_000_000)
        stats = fleet_stats([tmp_path])
        assert stats["n_manifests"] == 10
        assert stats["duration_s"]["p50"] == 5.0
        assert stats["duration_s"]["p99"] == 10.0

    def test_corrupt_manifest_skipped(self, tmp_path):
        _write_manifest(tmp_path, "good", 1.0, 1_000_000)
        (tmp_path / "bad.manifest.json").write_text("{broken",
                                                    encoding="utf-8")
        stats = fleet_stats([tmp_path])
        assert stats["n_manifests"] == 1

    def test_empty_fleet(self, tmp_path):
        stats = fleet_stats([tmp_path])
        assert stats["n_manifests"] == 0
        assert stats["duration_s"] is None


class TestRendering:
    def _dashboard(self, tmp_path):
        _write_fig4(tmp_path)
        _write_fig7(tmp_path)
        _write_manifest(tmp_path, "fig4", 0.25, 50_000_000)
        return build_dashboard(tmp_path)

    def test_markdown_has_verdicts_and_overall(self, tmp_path):
        text = render_markdown(self._dashboard(tmp_path))
        assert "power_budget" in text
        assert "thermal_rise" in text
        assert "link_ber_goodput" in text
        assert "**Overall: PASS**" in text
        assert "| duration_s | 0.2500" in text

    def test_markdown_overall_fail_dominates(self, tmp_path):
        _write_fig4(tmp_path, power_mw=500.0, area_mm2=10.0, safe=False)
        _write_fig7(tmp_path)
        text = render_markdown(build_dashboard(tmp_path))
        assert "FAIL" in text and "Overall: FAIL" in text

    def test_html_is_standalone_page(self, tmp_path):
        html = render_html(self._dashboard(tmp_path))
        assert html.startswith("<!DOCTYPE html>")
        assert "power_budget" in html
        assert "peak_rss_mb" in html

    def test_dashboard_is_json_able_and_deterministic(self, tmp_path):
        first = self._dashboard(tmp_path)
        second = build_dashboard(tmp_path)
        assert json.loads(json.dumps(first)) == second
