"""Tests for run manifests and the process run seed."""

import json

import numpy as np
import pytest

from repro.obs import manifest
from repro.obs.manifest import (
    build_manifest,
    seeded_rng,
    set_run_seed,
    write_manifest,
)


@pytest.fixture(autouse=True)
def clear_seed():
    set_run_seed(None)
    yield
    set_run_seed(None)


class TestRunSeed:
    def test_seed_round_trip(self):
        assert manifest.current_seed() is None
        set_run_seed(123)
        assert manifest.current_seed() == 123

    def test_seeded_rng_is_reproducible(self):
        set_run_seed(7)
        a = seeded_rng().integers(0, 1000, size=8)
        b = seeded_rng().integers(0, 1000, size=8)
        assert np.array_equal(a, b)

    def test_unseeded_rng_still_works(self):
        values = seeded_rng().integers(0, 1000, size=8)
        assert values.shape == (8,)


class TestBuildManifest:
    def test_required_fields_present(self):
        record = build_manifest("fig5", duration_s=1.25)
        for key in ("schema_version", "name", "created_unix_s", "seed",
                    "duration_s", "peak_rss_bytes", "git_sha", "python",
                    "numpy", "platform"):
            assert key in record
        assert record["name"] == "fig5"
        assert record["duration_s"] == 1.25

    def test_seed_defaults_to_run_seed(self):
        set_run_seed(99)
        assert build_manifest("x")["seed"] == 99
        assert build_manifest("x", seed=5)["seed"] == 5

    def test_environment_identity(self):
        record = build_manifest("x")
        assert record["python"].count(".") == 2
        assert record["numpy"] == np.__version__

    def test_extra_fields_merge(self):
        record = build_manifest("x", extra={"n_rows": 12})
        assert record["n_rows"] == 12

    def test_peak_rss_positive_on_linux(self):
        rss = manifest.peak_rss_bytes()
        assert rss is None or rss > 0


class TestWriteManifest:
    def test_writes_json_creating_parents(self, tmp_path):
        target = tmp_path / "deep" / "run.manifest.json"
        path = write_manifest(target, build_manifest("run"))
        assert path == target
        loaded = json.loads(path.read_text())
        assert loaded["name"] == "run"


class TestExperimentResultManifest:
    def test_save_csv_writes_manifest(self, tmp_path):
        from repro.experiments.base import ExperimentResult

        result = ExperimentResult(name="demo", title="Demo",
                                  rows=[{"a": 1}, {"a": 2}],
                                  seed=11, duration_s=0.5)
        result.save_csv(tmp_path)
        assert (tmp_path / "demo.csv").exists()
        loaded = json.loads((tmp_path / "demo.manifest.json").read_text())
        assert loaded["name"] == "demo"
        assert loaded["seed"] == 11
        assert loaded["duration_s"] == 0.5
        assert loaded["n_rows"] == 2
        assert loaded["title"] == "Demo"
