"""Tests for trace analytics over the event timeline."""

from __future__ import annotations

import json

from repro.obs.analyze import (ENGINE_LABEL, build_span_tree, critical_path,
                               critical_path_spans, diff_runs, filter_events,
                               load_events, render_critical_path, render_diff,
                               render_rollup, render_summary, rollup,
                               split_by_driver, summarize)


def _e(seq, driver, kind, name, **attrs):
    return {"seq": seq, "driver": driver, "kind": kind, "name": name,
            "attrs": attrs}


def _driver_stream(driver, seq0=0):
    """A small run: outer span with one metric, nested span with two."""
    return [
        _e(seq0 + 0, driver, "span_start", f"experiment.{driver}"),
        _e(seq0 + 1, driver, "metric", f"{driver}.rows", op="inc",
           value=1.0),
        _e(seq0 + 2, driver, "span_start", f"{driver}.summary"),
        _e(seq0 + 3, driver, "metric", f"{driver}.a", op="gauge",
           value=2.0),
        _e(seq0 + 4, driver, "metric", f"{driver}.b", op="gauge",
           value=3.0),
        _e(seq0 + 5, driver, "span_end", f"{driver}.summary"),
        _e(seq0 + 6, driver, "span_end", f"experiment.{driver}"),
    ]


def _run(drivers=("fig4", "fig5")):
    events = [_e(0, "", "span_start", "experiments.run_all")]
    for name in drivers:
        events.extend(_driver_stream(name, seq0=len(events)))
    events.append(_e(len(events), "", "span_end", "experiments.run_all"))
    return events


class TestLoadingAndFiltering:
    def test_load_events_skips_blanks_and_keeps_order(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = [json.dumps(e) for e in _run()]
        path.write_text("\n".join(lines[:3]) + "\n\n"
                        + "\n".join(lines[3:]) + "\n", encoding="utf-8")
        events = load_events(path)
        assert [e["seq"] for e in events] == list(range(len(lines)))

    def test_load_events_rejects_garbage_with_location(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"seq": 0}\nnot json\n', encoding="utf-8")
        try:
            load_events(path)
        except ValueError as error:
            assert ":2:" in str(error)
        else:
            raise AssertionError("expected ValueError")

    def test_split_by_driver_preserves_first_appearance_order(self):
        streams = split_by_driver(_run(("fig7", "fig4")))
        assert list(streams) == ["", "fig7", "fig4"]

    def test_filter_events_by_driver_kind_and_name_substring(self):
        events = _run()
        metrics = filter_events(events, driver="fig5", kind="metric")
        assert all(e["driver"] == "fig5" and e["kind"] == "metric"
                   for e in metrics)
        assert len(metrics) == 3
        assert len(filter_events(events, name="summary")) == 4


class TestSpanTreeAndRollup:
    def test_build_span_tree_nesting_and_totals(self):
        roots = build_span_tree(_driver_stream("fig4"))
        assert len(roots) == 1
        outer = roots[0]
        assert outer["name"] == "experiment.fig4"
        assert outer["self_events"] == 1
        # nested span counts as 1 + its own 2 metrics
        assert outer["total_events"] == 4
        assert outer["children"][0]["total_events"] == 2

    def test_unmatched_span_end_is_tolerated(self):
        stream = [_e(0, "x", "span_end", "phantom"),
                  _e(1, "x", "metric", "orphan")]
        assert build_span_tree(stream) == []

    def test_rollup_orders_by_weight_and_can_drop_engine(self):
        rows = rollup(_run())
        # driver work is split out of the engine stream, so the engine
        # span weighs nothing and the experiment spans sort first
        assert rows[0]["span"] == "experiment.fig4"
        engine = [r for r in rows if r["driver"] == ENGINE_LABEL]
        assert engine and engine[0]["total_events"] == 0
        no_engine = rollup(_run(), include_engine=False)
        assert all(row["driver"] != ENGINE_LABEL for row in no_engine)
        fig4 = [r for r in no_engine if r["driver"] == "fig4"]
        assert {r["span"]: r["total_events"] for r in fig4} == {
            "experiment.fig4": 4, "fig4.summary": 2}

    def test_rollup_is_deterministic(self):
        assert rollup(_run()) == rollup(_run())


class TestCriticalPath:
    def test_descends_heaviest_chain(self):
        path = critical_path(_run())
        assert [step["span"] for step in path] == [
            "experiment.fig4", "fig4.summary"]
        assert path[0]["driver"] == "fig4"
        assert path[0]["share_pct"] == 50.0

    def test_driver_filter_selects_that_driver(self):
        path = critical_path(_run(), driver="fig5")
        assert path[0]["driver"] == "fig5"

    def test_empty_timeline_gives_empty_path(self):
        assert critical_path([]) == []
        assert render_critical_path([]) == "(no spans recorded)"

    def test_timed_mode_uses_durations(self):
        records = [
            {"name": "root", "duration_s": 1.0, "children": [
                {"name": "fast", "duration_s": 0.1, "children": []},
                {"name": "slow", "duration_s": 0.8, "children": []},
            ]},
        ]
        path = critical_path_spans(records)
        assert [step["span"] for step in path] == ["root", "slow"]
        assert path[0]["self_s"] == 0.1


class TestDiff:
    def test_identical_runs_are_equal(self):
        report = diff_runs(_run(), _run())
        assert report["equal"] and report["n_deltas"] == 0
        assert render_diff(report) == "runs are equivalent: 0 deltas"

    def test_engine_scope_excluded_by_default(self):
        serial = _run()
        parallel = [e for e in _run() if e["driver"] != ""]
        parallel.append(_e(99, "", "span_start",
                           "experiments.run_parallel"))
        assert diff_runs(serial, parallel)["equal"]
        assert not diff_runs(serial, parallel,
                             include_engine=True)["equal"]

    def test_added_and_removed_events_reported(self):
        a = _run(("fig4",))
        b = _run(("fig4",))
        b.insert(3, _e(98, "fig4", "fault", "link.drop", domain="link"))
        report = diff_runs(a, b)
        assert report["n_deltas"] == 1
        entry = report["drivers"]["fig4"]
        assert entry["added"][0]["name"] == "link.drop"
        assert "+1 -0" in render_diff(report)

    def test_reorder_detected_without_multiset_change(self):
        a = _run(("fig4",))
        b = _run(("fig4",))
        # swap the two gauge metrics inside the summary span
        b[4], b[5] = b[5], b[4]
        report = diff_runs(a, b)
        assert report["drivers"]["fig4"]["reordered"]
        assert "different order" in render_diff(report)


class TestSummaries:
    def test_summarize_counts_by_kind(self):
        rows = summarize(_run(("fig4",)))
        by_driver = {row["driver"]: row for row in rows}
        assert by_driver["fig4"]["spans"] == 2
        assert by_driver["fig4"]["metrics"] == 3
        assert by_driver[ENGINE_LABEL]["events"] == 2

    def test_renderers_handle_empty_input(self):
        assert render_summary([]) == "(no events)"
        assert render_rollup([]) == "(no events)"
