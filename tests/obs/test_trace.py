"""Tests for the span tracer."""

import json
import threading

import pytest

from repro.obs import trace
from repro.obs.trace import Tracer, span, traced


@pytest.fixture(autouse=True)
def clean_tracer():
    """Each test starts and ends with a disabled, empty global tracer."""
    trace.disable()
    trace.TRACER.reset()
    yield
    trace.disable()
    trace.TRACER.reset()


class TestDisabled:
    def test_span_is_noop_and_records_nothing(self):
        with span("outer") as sp:
            sp.set(anything=1)
        assert trace.TRACER.roots == []

    def test_disabled_span_returns_shared_sentinel(self):
        assert span("a") is span("b")

    def test_traced_decorator_passes_through(self):
        @traced("f")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert trace.TRACER.roots == []


class TestRecording:
    def test_nesting_builds_a_tree(self):
        trace.enable()
        with span("outer"):
            with span("inner_a"):
                pass
            with span("inner_b", key="v"):
                pass
        roots = trace.TRACER.roots
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner_a",
                                                       "inner_b"]
        assert roots[0].children[1].attrs == {"key": "v"}

    def test_durations_are_positive_and_nested(self):
        trace.enable()
        with span("outer"):
            with span("inner"):
                pass
        outer = trace.TRACER.roots[0]
        inner = outer.children[0]
        assert outer.duration_s >= inner.duration_s >= 0.0
        assert outer.self_time_s >= 0.0

    def test_set_attaches_attributes(self):
        trace.enable()
        with span("s") as sp:
            sp.set(rows=3)
        assert trace.TRACER.roots[0].attrs == {"rows": 3}

    def test_traced_decorator_records(self):
        trace.enable()

        @traced("decorated")
        def f():
            return 7

        assert f() == 7
        assert trace.TRACER.roots[0].name == "decorated"

    def test_span_count(self):
        trace.enable()
        with span("a"):
            with span("b"):
                pass
        with span("c"):
            pass
        assert trace.TRACER.span_count() == 3


class TestThreadSafety:
    def test_threads_keep_independent_stacks(self):
        tracer = Tracer()
        errors = []

        def work(i):
            try:
                with tracer.start(f"thread{i}.outer"):
                    with tracer.start(f"thread{i}.inner"):
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        roots = tracer.roots
        assert len(roots) == 8
        for root in roots:
            assert len(root.children) == 1
            assert root.children[0].name.endswith("inner")


class TestExport:
    def test_to_json_round_trips(self):
        trace.enable()
        with span("root", n=2):
            with span("child"):
                pass
        data = json.loads(trace.TRACER.to_json())
        assert data[0]["name"] == "root"
        assert data[0]["attrs"] == {"n": 2}
        assert data[0]["children"][0]["name"] == "child"
        assert data[0]["duration_s"] >= 0.0

    def test_render_tree_shows_names_and_durations(self):
        trace.enable()
        with span("root"):
            with span("child"):
                pass
        tree = trace.TRACER.render_tree()
        assert "root" in tree and "child" in tree
        assert "s" in tree  # some duration unit is printed

    def test_render_tree_empty(self):
        assert trace.TRACER.render_tree() == "(no spans recorded)"

    def test_reset_drops_spans(self):
        trace.enable()
        with span("root"):
            pass
        assert trace.TRACER.roots
        trace.TRACER.reset()
        assert trace.TRACER.roots == []
