"""Tests for the metrics registry."""

import threading

import pytest

from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def clean_registry():
    metrics.disable()
    metrics.REGISTRY.reset()
    yield
    metrics.disable()
    metrics.REGISTRY.reset()


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2.5)
        assert reg.counter("a") == 3.5
        assert reg.counter("missing") == 0.0

    def test_gauge_keeps_latest(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", -4.0)
        assert reg.snapshot()["gauges"]["g"] == -4.0

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0, 10.0):
            reg.observe("h", v)
        summary = reg.snapshot()["histograms"]["h"]
        assert summary["count"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0
        assert summary["mean"] == pytest.approx(4.0)
        assert summary["sum"] == pytest.approx(16.0)

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_render_lists_all_kinds(self):
        reg = MetricsRegistry()
        reg.inc("count.things", 3)
        reg.set_gauge("gauge.level", 0.5)
        reg.observe("hist.vals", 2.0)
        text = reg.render()
        assert "count.things" in text
        assert "gauge.level" in text
        assert "hist.vals" in text

    def test_render_empty(self):
        assert MetricsRegistry().render() == "(no metrics recorded)"

    def test_thread_safety_of_counters(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.inc("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n") == 4000


class TestModuleHelpers:
    def test_disabled_helpers_record_nothing(self):
        metrics.inc("a")
        metrics.set_gauge("g", 1.0)
        metrics.observe("h", 1.0)
        snap = metrics.REGISTRY.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_enabled_helpers_record_into_global_registry(self):
        metrics.enable()
        metrics.inc("a", 2)
        metrics.observe("h", 1.5)
        metrics.set_gauge("g", 9.0)
        snap = metrics.REGISTRY.snapshot()
        assert snap["counters"]["a"] == 2
        assert snap["gauges"]["g"] == 9.0
        assert snap["histograms"]["h"]["count"] == 1

    def test_enable_disable_flag(self):
        assert not metrics.metrics_enabled()
        metrics.enable()
        assert metrics.metrics_enabled()
        metrics.disable()
        assert not metrics.metrics_enabled()
