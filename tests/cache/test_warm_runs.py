"""Warm-run contract: cached artifacts are byte-identical to uncached.

The headline guarantees from the issue's acceptance criteria:

* a warm ``evaluate --seed 7`` writes CSVs byte-identical to a cold
  (and to an entirely uncached) run, with every driver reporting a hit;
* parallel warm runs (``--jobs 4``) against the shared store produce
  the same bytes with no lock errors;
* manifests record per-driver hit/miss and key provenance.
"""

from __future__ import annotations

import json

from repro.cache.stages import encode_result
from repro.experiments import ALL_EXPERIMENTS, run_all


def _csv_bytes(directory):
    return {path.name: path.read_bytes()
            for path in sorted(directory.glob("*.csv"))}


class TestWarmSerialRuns:
    def test_cold_then_warm_matches_uncached(self, tmp_path):
        plain_dir = tmp_path / "plain"
        cached_dir = tmp_path / "cached"
        run_all(output_dir=plain_dir, seed=7)
        cold = run_all(output_dir=cached_dir, seed=7, cache=True)
        assert all(not r.cache_info["hit"] for r in cold)
        assert _csv_bytes(plain_dir) == _csv_bytes(cached_dir)

        warm = run_all(output_dir=cached_dir, seed=7, cache=True)
        assert all(r.cache_info["hit"] for r in warm)
        assert len(warm) == len(ALL_EXPERIMENTS)
        assert _csv_bytes(plain_dir) == _csv_bytes(cached_dir)
        # Summaries agree up to the JSON encoding (tuples come back as
        # lists; the CSV bytes above are the strict contract).
        assert ([encode_result(r.summary) for r in cold]
                == [encode_result(r.summary) for r in warm])

    def test_different_seed_misses(self, tmp_path):
        run_all(output_dir=tmp_path, seed=7, cache=True)
        other = run_all(output_dir=tmp_path, seed=8, cache=True)
        assert all(not r.cache_info["hit"] for r in other)

    def test_manifests_record_cache_provenance(self, tmp_path):
        run_all(output_dir=tmp_path, seed=7, cache=True)
        warm = run_all(output_dir=tmp_path, seed=7, cache=True)
        for result in warm:
            manifest = json.loads(
                (tmp_path / f"{result.name}.manifest.json").read_text())
            assert manifest["cache"]["hit"] is True
            assert manifest["cache"]["key"] == result.cache_info["key"]
            assert len(manifest["cache"]["fingerprint"]) == 64

    def test_uncached_runs_leave_no_store(self, tmp_path):
        run_all(output_dir=tmp_path, seed=7)
        assert not (tmp_path / ".cache").exists()


class TestWarmParallelRuns:
    def test_parallel_warm_hits_and_matches_serial_bytes(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        run_all(output_dir=serial_dir, seed=7)
        # Cold parallel populate, then warm parallel against the same
        # shared store — all four workers read it concurrently.
        cold = run_all(output_dir=parallel_dir, seed=7, jobs=4,
                       cache=True)
        assert all(not r.cache_info["hit"] for r in cold)
        warm = run_all(output_dir=parallel_dir, seed=7, jobs=4,
                       cache=True)
        assert all(r.cache_info["hit"] for r in warm)
        assert _csv_bytes(serial_dir) == _csv_bytes(parallel_dir)

    def test_serial_cold_feeds_parallel_warm(self, tmp_path):
        run_all(output_dir=tmp_path, seed=7, cache=True)
        warm = run_all(output_dir=tmp_path, seed=7, jobs=4, cache=True)
        assert all(r.cache_info["hit"] for r in warm)
