"""Cache corruption self-healing: quarantine, counters, stale temps.

Chaos-suite counterpart of ``test_store.py``: every way an entry can be
damaged on disk — truncated JSON from a torn write, garbage bytes, a
stored key that does not match its filename, a temp file orphaned by a
killed writer — must read as a miss, increment ``cache.corruption``,
and leave the slot healable by the next put.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro import obs
from repro.cache.keys import value_digest
from repro.cache.store import CacheStore


@pytest.fixture
def store(tmp_path):
    return CacheStore(tmp_path / ".cache")


@pytest.fixture
def metrics():
    obs.enable_metrics()
    try:
        yield obs.REGISTRY
    finally:
        obs.disable_metrics()
        obs.REGISTRY.reset()


def _seed_entry(store: CacheStore, tag: str = "corruption"):
    key = value_digest({"test": tag})
    store.put(key, {"tag": tag}, kind="stage", label="test")
    return key, store.entry_path(key)


def _corruption(registry) -> dict[str, float]:
    counters = registry.snapshot()["counters"]
    return {name: value for name, value in counters.items()
            if name.startswith("cache.corruption")}


class TestCorruptEntries:
    def test_truncated_json_misses_and_quarantines(self, store, metrics):
        key, path = _seed_entry(store)
        text = path.read_text(encoding="utf-8")
        path.write_text(text[:len(text) // 2], encoding="utf-8")

        assert store.get(key) is None
        assert not path.exists()
        quarantined = store.quarantine_dir / path.name
        assert quarantined.is_file()  # damaged bytes stay inspectable
        assert quarantined.read_text(
            encoding="utf-8") == text[:len(text) // 2]
        assert _corruption(metrics) == {
            "cache.corruption": 1, "cache.corruption.unparseable": 1}

    def test_garbage_bytes_miss(self, store, metrics):
        key, path = _seed_entry(store)
        path.write_text("{this is not json", encoding="utf-8")
        assert store.get(key) is None
        assert _corruption(metrics)["cache.corruption.unparseable"] == 1

    def test_non_object_document_misses(self, store, metrics):
        key, path = _seed_entry(store)
        path.write_text("[1, 2, 3]", encoding="utf-8")
        assert store.get(key) is None
        assert _corruption(metrics)["cache.corruption.not_object"] == 1

    def test_bad_sha_misses(self, store, metrics):
        """An entry whose stored key disagrees with the requested one
        (renamed file, hash collision damage) must not be served."""
        key, path = _seed_entry(store)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["key"] = "0" * 64
        path.write_text(json.dumps(entry, sort_keys=True),
                        encoding="utf-8")
        assert store.get(key) is None
        assert _corruption(metrics)["cache.corruption.key_mismatch"] == 1

    def test_next_put_heals_the_slot(self, store, metrics):
        key, path = _seed_entry(store)
        path.write_text("{torn", encoding="utf-8")
        assert store.get(key) is None
        store.put(key, {"tag": "healed"}, kind="stage", label="test")
        entry = store.get(key)
        assert entry is not None
        assert entry["payload"] == {"tag": "healed"}
        assert _corruption(metrics)["cache.corruption"] == 1

    def test_intact_entries_count_no_corruption(self, store, metrics):
        key, _ = _seed_entry(store)
        assert store.get(key) is not None
        assert _corruption(metrics) == {}


def _dead_pid() -> int:
    """A pid guaranteed dead: a child process that already exited."""
    child = multiprocessing.Process(target=lambda: None)
    child.start()
    child.join()
    return child.pid


class TestStaleTempFiles:
    def test_dead_writers_wreckage_is_swept_on_put(self, store, metrics):
        key, path = _seed_entry(store)
        stale = path.parent / f"{path.name}.tmp-{_dead_pid()}"
        stale.write_text("{half-written", encoding="utf-8")

        # Any put into the same shard sweeps the wreckage first.
        store.put(key, {"tag": "again"}, kind="stage", label="test")

        assert not stale.exists()
        assert store.get(key) is not None
        assert _corruption(metrics)["cache.corruption.stale_tmp"] == 1

    def test_live_writers_temp_file_is_left_alone(self, store, metrics):
        key, path = _seed_entry(store)
        live = path.parent / f"other.json.tmp-{os.getpid()}"
        live.write_text("{in-flight", encoding="utf-8")
        store.put(key, {"tag": "again"}, kind="stage", label="test")
        assert live.exists()
        assert _corruption(metrics) == {}

    def test_explicit_sweep_covers_every_shard(self, store, metrics):
        paths = []
        for tag in ("one", "two", "three"):
            _, path = _seed_entry(store, tag=tag)
            stale = path.parent / f"{path.name}.tmp-{_dead_pid()}"
            stale.write_text("{", encoding="utf-8")
            paths.append(stale)
        removed = store.sweep_stale_tmp()
        assert removed == 3
        assert not any(path.exists() for path in paths)
        assert _corruption(metrics)["cache.corruption.stale_tmp"] == 3

    def test_non_pid_suffix_is_not_swept(self, store):
        _, path = _seed_entry(store)
        odd = path.parent / "entry.json.tmp-not-a-pid"
        odd.write_text("{", encoding="utf-8")
        assert store.sweep_stale_tmp() == 0
        assert odd.exists()
