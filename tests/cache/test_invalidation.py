"""Invalidation semantics: an edit invalidates exactly what it touched.

Two layers of evidence, matching the acceptance criteria:

* **fingerprint/key level** — in a private copy of the source tree,
  editing one driver changes that driver's cache key and no other's;
  editing shared infrastructure (``experiments/base.py``) changes all
  of them.
* **runner level** — with a populated store, a changed fingerprint for
  one driver makes exactly that driver re-run while the others still
  hit.
"""

from __future__ import annotations

import shutil

import pytest

from repro.cache.fingerprint import (
    clear_cached_fingerprints,
    default_root,
    fingerprint,
)
from repro.cache.keys import driver_key
from repro.cache.runner import run_and_save_cached, store_for
from repro.experiments import ALL_EXPERIMENTS, experiment_name
from repro.perf.seeds import derive_driver_seed

DRIVERS = [experiment_name(module) for module in ALL_EXPERIMENTS]


@pytest.fixture
def tmp_tree(tmp_path):
    root = tmp_path / "src"
    shutil.copytree(default_root() / "repro", root / "repro",
                    ignore=shutil.ignore_patterns("__pycache__"))
    clear_cached_fingerprints()
    yield root
    clear_cached_fingerprints()


def _driver_keys(root, seed=7):
    return {name: driver_key(
        name, fingerprint(f"repro.experiments.{name}", root=root),
        seed, derive_driver_seed(seed, name)) for name in DRIVERS}


def _append(path):
    path.write_text(path.read_text() + "\n# edited\n")


class TestKeyLevelInvalidation:
    def test_editing_one_driver_changes_only_its_key(self, tmp_tree):
        before = _driver_keys(tmp_tree)
        _append(tmp_tree / "repro" / "experiments" / "fig5.py")
        clear_cached_fingerprints()
        after = _driver_keys(tmp_tree)
        assert after["fig5"] != before["fig5"]
        unchanged = {name for name in DRIVERS
                     if after[name] == before[name]}
        assert unchanged == set(DRIVERS) - {"fig5"}

    def test_editing_shared_base_changes_every_key(self, tmp_tree):
        before = _driver_keys(tmp_tree)
        _append(tmp_tree / "repro" / "experiments" / "base.py")
        clear_cached_fingerprints()
        after = _driver_keys(tmp_tree)
        assert all(after[name] != before[name] for name in DRIVERS)

    def test_seed_is_part_of_the_key(self, tmp_tree):
        assert _driver_keys(tmp_tree, seed=7) != _driver_keys(tmp_tree,
                                                              seed=8)


class TestRunnerLevelInvalidation:
    def test_only_touched_driver_reruns(self, tmp_path, monkeypatch):
        modules = list(ALL_EXPERIMENTS[:3])
        store = store_for(tmp_path)
        for module in modules:
            result = run_and_save_cached(module, tmp_path, seed=7,
                                         store=store)
            assert result.cache_info == {
                "hit": False, "key": result.cache_info["key"],
                "fingerprint": result.cache_info["fingerprint"]}

        # Simulate an edit to the second driver: its source fingerprint
        # changes, every other module's stays put.
        touched = modules[1].__name__
        real_fingerprint = fingerprint

        def edited_fingerprint(module, root=None):
            value = real_fingerprint(module, root=root)
            return "f" * 64 if module == touched else value

        monkeypatch.setattr("repro.cache.runner.fingerprint",
                            edited_fingerprint)
        hits = {}
        for module in modules:
            result = run_and_save_cached(module, tmp_path, seed=7,
                                         store=store)
            hits[experiment_name(module)] = result.cache_info["hit"]
        expected = {experiment_name(m): m.__name__ != touched
                    for m in modules}
        assert hits == expected
