"""Tests for transitive source fingerprinting (repro.cache.fingerprint).

The fingerprint is the provenance half of every cache key: it must be
deterministic, must cover the full in-package import closure, and must
change exactly when a closure member changes.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.analysis.engine import AnalysisError
from repro.cache.fingerprint import (
    clear_cached_fingerprints,
    default_root,
    fingerprint,
    import_closure,
    module_source_path,
)


@pytest.fixture
def tmp_tree(tmp_path):
    """A private copy of the repro package, safe to edit in place."""
    root = tmp_path / "src"
    shutil.copytree(default_root() / "repro", root / "repro",
                    ignore=shutil.ignore_patterns("__pycache__"))
    clear_cached_fingerprints()
    yield root
    clear_cached_fingerprints()


class TestModuleSourcePath:
    def test_package_resolves_to_init(self):
        path = module_source_path("repro.link", default_root())
        assert path is not None and path.name == "__init__.py"

    def test_module_resolves_to_file(self):
        path = module_source_path("repro.link.channel", default_root())
        assert path is not None and path.name == "channel.py"

    def test_missing_module_is_none(self):
        assert module_source_path("repro.nope", default_root()) is None


class TestImportClosure:
    def test_contains_module_and_transitive_imports(self):
        closure = import_closure("repro.link.channel")
        assert "repro.link.channel" in closure
        assert "repro.link.modulation" in closure
        # channel -> obs.trace (spans) is a transitive dependency.
        assert "repro.obs.trace" in closure

    def test_contains_parent_packages(self):
        closure = import_closure("repro.link.channel")
        assert "repro" in closure
        assert "repro.link" in closure

    def test_unknown_module_raises(self):
        with pytest.raises(AnalysisError):
            import_closure("repro.does_not_exist")


class TestFingerprint:
    def test_deterministic(self):
        assert (fingerprint("repro.link.channel")
                == fingerprint("repro.link.channel"))

    def test_differs_across_modules(self):
        assert (fingerprint("repro.link.channel")
                != fingerprint("repro.thermal.grid"))

    def test_tmp_tree_matches_real_tree(self, tmp_tree):
        # Byte-identical trees agree, independently of their location.
        assert (fingerprint("repro.link.channel", root=tmp_tree)
                == fingerprint("repro.link.channel"))

    def test_editing_module_changes_own_fingerprint(self, tmp_tree):
        before = fingerprint("repro.link.channel", root=tmp_tree)
        target = tmp_tree / "repro" / "link" / "channel.py"
        target.write_text(target.read_text() + "\n# edited\n")
        clear_cached_fingerprints()
        assert fingerprint("repro.link.channel", root=tmp_tree) != before

    def test_editing_module_leaves_nonimporters_alone(self, tmp_tree):
        untouched = fingerprint("repro.thermal.grid", root=tmp_tree)
        target = tmp_tree / "repro" / "link" / "channel.py"
        target.write_text(target.read_text() + "\n# edited\n")
        clear_cached_fingerprints()
        assert fingerprint("repro.thermal.grid",
                           root=tmp_tree) == untouched

    def test_editing_dependency_propagates(self, tmp_tree):
        before = fingerprint("repro.link.channel", root=tmp_tree)
        dep = tmp_tree / "repro" / "link" / "modulation.py"
        dep.write_text(dep.read_text() + "\n# edited\n")
        clear_cached_fingerprints()
        assert fingerprint("repro.link.channel", root=tmp_tree) != before

    def test_memoized_until_cleared(self, tmp_tree):
        before = fingerprint("repro.link.channel", root=tmp_tree)
        target = tmp_tree / "repro" / "link" / "channel.py"
        target.write_text(target.read_text() + "\n# edited\n")
        # Without clearing, the memo still answers (documented).
        assert fingerprint("repro.link.channel", root=tmp_tree) == before
        clear_cached_fingerprints()
        assert fingerprint("repro.link.channel", root=tmp_tree) != before


class TestDefaultRoot:
    def test_points_at_importable_tree(self):
        root = default_root()
        assert (root / "repro" / "__init__.py").is_file()
        assert isinstance(root, Path)
