"""Tests for stage-level memoization (repro.cache.stages).

Covers the decorator runtime (inert without a store, hit/miss
discipline, RNG fast-forward) and the three production stages it backs:
BER sweeps, DNN decoder training, and thermal solves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.stages import (
    active_store,
    cached_stage,
    decode_result,
    encode_result,
    stage_caching,
)
from repro.cache.store import CacheStore
from repro.decoders.dnn_decoder import DnnDecoder
from repro.dnn.layers import Dense, Tanh
from repro.dnn.network import Network
from repro.link.channel import measure_ber_sweep
from repro.link.modulation import QPSK
from repro.thermal.grid import ChipThermalGrid


@pytest.fixture
def store(tmp_path):
    return CacheStore(tmp_path / ".cache")


class TestEncodeDecode:
    def test_ndarray_roundtrips_exactly(self):
        array = np.random.default_rng(0).standard_normal((3, 5))
        again = decode_result(encode_result(array))
        assert again.dtype == array.dtype
        assert np.array_equal(again, array)

    def test_nested_structures(self):
        value = {"a": [np.arange(4), {"b": np.float64(2.5)}],
                 "c": "text", "d": None}
        again = decode_result(encode_result(value))
        assert np.array_equal(again["a"][0], np.arange(4))
        assert again["a"][1]["b"] == 2.5
        assert again["c"] == "text" and again["d"] is None

    def test_int_dtypes_survive(self):
        array = np.array([[1, 2], [3, 4]], dtype=np.int16)
        again = decode_result(encode_result(array))
        assert again.dtype == np.int16
        assert np.array_equal(again, array)


class TestActivation:
    def test_inactive_by_default(self):
        assert active_store() is None

    def test_window_scoped(self, store):
        with stage_caching(store):
            assert active_store() is store
        assert active_store() is None

    def test_none_store_is_noop(self):
        with stage_caching(None):
            assert active_store() is None

    def test_nesting(self, store, tmp_path):
        inner = CacheStore(tmp_path / "inner")
        with stage_caching(store):
            with stage_caching(inner):
                assert active_store() is inner
            assert active_store() is store


class TestCachedStageDecorator:
    def test_calls_through_without_store(self):
        calls = []

        @cached_stage("test.plain")
        def stage(x):
            calls.append(x)
            return x * 2

        assert stage(3) == 6 and stage(3) == 6
        assert calls == [3, 3]  # no memoization outside a window

    def test_second_call_hits(self, store):
        calls = []

        @cached_stage("test.hit")
        def stage(x):
            calls.append(x)
            return np.full(4, x, dtype=float)

        with stage_caching(store):
            first = stage(5)
            second = stage(5)
        assert calls == [5]  # second call served from the store
        assert np.array_equal(first, second)

    def test_distinct_args_miss(self, store):
        calls = []

        @cached_stage("test.args")
        def stage(x):
            calls.append(x)
            return x

        with stage_caching(store):
            stage(1), stage(2), stage(1)
        assert calls == [1, 2]

    def test_rng_fast_forward_matches_cold_run(self, store):
        @cached_stage("test.rng", rng_arg="rng")
        def stage(n, rng=None):
            return rng.standard_normal(n)

        cold_rng = np.random.default_rng(9)
        with stage_caching(store):
            cold = stage(8, rng=cold_rng)
        cold_followup = cold_rng.standard_normal(3)

        warm_rng = np.random.default_rng(9)
        with stage_caching(store):
            warm = stage(8, rng=warm_rng)
        warm_followup = warm_rng.standard_normal(3)

        assert np.array_equal(cold, warm)
        # The hit fast-forwarded the generator: later draws line up too.
        assert np.array_equal(cold_followup, warm_followup)


class TestBerSweepStage:
    def test_hit_reproduces_sweep_and_rng_state(self, store):
        scheme = QPSK()
        grid = np.array([2.0, 4.0, 6.0])

        cold_rng = np.random.default_rng(7)
        with stage_caching(store):
            cold = measure_ber_sweep(scheme, grid, 20_000, rng=cold_rng)
        warm_rng = np.random.default_rng(7)
        with stage_caching(store):
            warm = measure_ber_sweep(scheme, grid, 20_000, rng=warm_rng)

        assert np.array_equal(cold, warm)
        assert cold_rng.bit_generator.state == warm_rng.bit_generator.state
        assert store.stats()["by_label"] == {"link.measure_ber_sweep": 1}

    def test_uncached_behavior_unchanged(self):
        scheme = QPSK()
        grid = np.array([4.0])
        a = measure_ber_sweep(scheme, grid, 10_000,
                              rng=np.random.default_rng(3))
        b = measure_ber_sweep(scheme, grid, 10_000,
                              rng=np.random.default_rng(3))
        assert np.array_equal(a, b)


def _decoder(rng):
    net = Network([Dense(8, 16, rng=rng), Tanh(),
                   Dense(16, 2, rng=rng)], input_shape=(8,))
    return DnnDecoder(net, epochs=3, batch_size=16, learning_rate=0.1)


class TestDecoderFitStage:
    def test_hit_restores_params_history_and_rng(self, store):
        data_rng = np.random.default_rng(0)
        features = data_rng.standard_normal((64, 8))
        targets = data_rng.standard_normal((64, 2))

        cold_rng = np.random.default_rng(11)
        cold = _decoder(np.random.default_rng(5))
        with stage_caching(store):
            cold_history = cold.fit(features, targets, cold_rng)

        warm_rng = np.random.default_rng(11)
        warm = _decoder(np.random.default_rng(5))
        with stage_caching(store):
            warm_history = warm.fit(features, targets, warm_rng)

        assert warm_history == cold_history
        assert warm.fitted
        for cold_param, warm_param in zip(cold._parameters(),
                                          warm._parameters()):
            assert np.array_equal(cold_param, warm_param)
        assert (cold_rng.bit_generator.state
                == warm_rng.bit_generator.state)
        assert store.stats()["by_label"] == {"decoders.dnn.fit": 1}

    def test_different_init_misses(self, store):
        rng = np.random.default_rng(0)
        features = rng.standard_normal((32, 8))
        targets = rng.standard_normal((32, 2))
        with stage_caching(store):
            _decoder(np.random.default_rng(1)).fit(
                features, targets, np.random.default_rng(2))
            _decoder(np.random.default_rng(3)).fit(
                features, targets, np.random.default_rng(2))
        assert store.stats()["by_label"] == {"decoders.dnn.fit": 2}


class TestThermalSolveStage:
    def test_hit_matches_cold_solve(self, store):
        grid = ChipThermalGrid(nx=12, ny=12)
        power = grid.hotspot_map(0.03)
        with stage_caching(store):
            cold = grid.solve(power)
        with stage_caching(store):
            warm = grid.solve(power)
        assert np.array_equal(cold, warm)
        assert store.stats()["by_label"] == {"thermal.solve": 1}

    def test_different_grid_misses(self, store):
        power = np.zeros((12, 12))
        with stage_caching(store):
            ChipThermalGrid(nx=12, ny=12).solve(power)
            ChipThermalGrid(nx=12, ny=12,
                            thickness_m=5e-5).solve(power)
        assert store.stats()["by_label"]["thermal.solve"] == 2
