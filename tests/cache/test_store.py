"""Tests for the on-disk cache store (repro.cache.store)."""

from __future__ import annotations

import json

import pytest

from repro.cache.keys import value_digest
from repro.cache.store import STORE_SCHEMA_VERSION, CacheStore


@pytest.fixture
def store(tmp_path):
    return CacheStore(tmp_path / ".cache")


def _key(tag: str) -> str:
    return value_digest({"tag": tag})


class TestPutGet:
    def test_roundtrip(self, store):
        key = _key("a")
        store.put(key, {"x": 1.5, "y": [1, 2]}, kind="stage", label="s")
        entry = store.get(key)
        assert entry is not None
        assert entry["schema"] == STORE_SCHEMA_VERSION
        assert entry["kind"] == "stage"
        assert entry["label"] == "s"
        assert entry["payload"] == {"x": 1.5, "y": [1, 2]}

    def test_miss_is_none(self, store):
        assert store.get(_key("missing")) is None

    def test_contains(self, store):
        key = _key("b")
        assert not store.contains(key)
        store.put(key, {}, kind="driver", label="d")
        assert store.contains(key)

    def test_sharded_layout(self, store):
        key = _key("c")
        path = store.put(key, {}, kind="driver", label="d")
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.json"

    def test_no_temp_files_left(self, store):
        for tag in ("d", "e", "f"):
            store.put(_key(tag), {"tag": tag}, kind="stage", label="s")
        leftovers = [p for p in store.root.rglob("*")
                     if p.is_file() and ".tmp-" in p.name]
        assert leftovers == []

    def test_overwrite_wins(self, store):
        key = _key("g")
        store.put(key, {"v": 1}, kind="stage", label="s")
        store.put(key, {"v": 2}, kind="stage", label="s")
        assert store.get(key)["payload"] == {"v": 2}

    def test_non_finite_floats_roundtrip(self, store):
        key = _key("inf")
        store.put(key, {"v": float("inf")}, kind="stage", label="s")
        assert store.get(key)["payload"]["v"] == float("inf")


class TestCorruptEntries:
    def test_corrupt_entry_is_miss_and_healed(self, store):
        key = _key("h")
        path = store.put(key, {"v": 1}, kind="stage", label="s")
        path.write_text("{not json")
        assert store.get(key) is None
        assert not path.exists()  # removed so a later put can heal it
        store.put(key, {"v": 2}, kind="stage", label="s")
        assert store.get(key)["payload"] == {"v": 2}


class TestStats:
    def test_empty(self, store):
        stats = store.stats()
        assert stats["entries"] == 0
        assert stats["total_bytes"] == 0

    def test_breakdowns(self, store):
        store.put(_key("i"), {}, kind="driver", label="fig5")
        store.put(_key("j"), {}, kind="stage", label="thermal.solve")
        store.put(_key("k"), {}, kind="stage", label="thermal.solve")
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["by_kind"] == {"driver": 1, "stage": 2}
        assert stats["by_label"] == {"fig5": 1, "thermal.solve": 2}
        assert stats["total_bytes"] > 0
        assert stats["oldest_unix_s"] <= stats["newest_unix_s"]


class TestClearAndGc:
    def test_clear(self, store):
        for tag in ("l", "m"):
            store.put(_key(tag), {}, kind="stage", label="s")
        assert store.clear() == 2
        assert store.stats()["entries"] == 0
        # Clearing an already-empty store is a no-op.
        assert store.clear() == 0

    def _backdate(self, store, key, days):
        path = store.entry_path(key)
        entry = json.loads(path.read_text())
        entry["created_unix_s"] -= days * 86400.0
        path.write_text(json.dumps(entry))

    def test_gc_by_age(self, store):
        old, new = _key("old"), _key("new")
        store.put(old, {}, kind="stage", label="s")
        store.put(new, {}, kind="stage", label="s")
        self._backdate(store, old, days=30)
        report = store.gc(max_age_days=7)
        assert report["removed"] == 1
        assert report["kept"] == 1
        assert store.contains(new) and not store.contains(old)

    def test_gc_by_size_drops_oldest_first(self, store):
        first, second = _key("n"), _key("o")
        store.put(first, {"pad": "x" * 64}, kind="stage", label="s")
        store.put(second, {"pad": "y" * 64}, kind="stage", label="s")
        self._backdate(store, first, days=1)
        total = store.stats()["total_bytes"]
        report = store.gc(max_bytes=total - 1)
        assert report["removed"] == 1
        assert not store.contains(first) and store.contains(second)
        assert report["kept_bytes"] <= total - 1

    def test_gc_without_limits_keeps_everything(self, store):
        store.put(_key("p"), {}, kind="stage", label="s")
        report = store.gc()
        assert report == {"removed": 0, "kept": 1,
                          "kept_bytes": store.stats()["total_bytes"]}
