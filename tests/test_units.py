"""Unit-conversion and constant tests."""

import math

import pytest

from repro import units


class TestPowerConversions:
    def test_mw_round_trip(self):
        assert units.to_mw(units.mw(38.9)) == pytest.approx(38.9)

    def test_uw_round_trip(self):
        assert units.to_uw(units.uw(5.0)) == pytest.approx(5.0)

    def test_nw_is_small(self):
        assert units.nw(1.0) == pytest.approx(1e-9)

    def test_mw_magnitude(self):
        assert units.mw(1.0) == pytest.approx(1e-3)


class TestAreaConversions:
    def test_mm2_round_trip(self):
        assert units.to_mm2(units.mm2(144.0)) == pytest.approx(144.0)

    def test_cm2_round_trip(self):
        assert units.to_cm2(units.cm2(1.44)) == pytest.approx(1.44)

    def test_mm2_vs_cm2(self):
        assert units.cm2(1.0) == pytest.approx(units.mm2(100.0))

    def test_um_round_trip(self):
        assert units.to_um(units.um(20.0)) == pytest.approx(20.0)


class TestDensity:
    def test_safe_density_value(self):
        # 40 mW/cm^2 == 400 W/m^2.
        assert units.SAFE_POWER_DENSITY == pytest.approx(400.0)

    def test_density_round_trip(self):
        assert units.to_mw_per_cm2(units.mw_per_cm2(27.0)) == pytest.approx(
            27.0)


class TestEnergyAndRates:
    def test_pj_round_trip(self):
        assert units.to_pj(units.pj(50.0)) == pytest.approx(50.0)

    def test_khz(self):
        assert units.khz(8.0) == pytest.approx(8000.0)

    def test_mbps_round_trip(self):
        assert units.to_mbps(units.mbps(82.0)) == pytest.approx(82.0)

    def test_time_units(self):
        assert units.ns(2.0) == pytest.approx(2e-9)
        assert units.us(3.0) == pytest.approx(3e-6)
        assert units.ms(4.0) == pytest.approx(4e-3)


class TestDecibels:
    def test_db_to_linear_zero(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)

    def test_db_to_linear_80(self):
        assert units.db_to_linear(80.0) == pytest.approx(1e8)

    def test_linear_to_db_round_trip(self):
        assert units.linear_to_db(units.db_to_linear(13.5)) == pytest.approx(
            13.5)

    def test_linear_to_db_rejects_non_positive(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)
        with pytest.raises(ValueError):
            units.linear_to_db(-1.0)


class TestThermalNoise:
    def test_body_temperature_floor(self):
        n0 = units.thermal_noise_density()
        assert n0 == pytest.approx(units.BOLTZMANN * 310.0)

    def test_noise_figure_scales(self):
        base = units.thermal_noise_density(noise_figure_db=0.0)
        with_nf = units.thermal_noise_density(noise_figure_db=10.0)
        assert with_nf == pytest.approx(10.0 * base)

    def test_rejects_non_positive_temperature(self):
        with pytest.raises(ValueError):
            units.thermal_noise_density(temperature_k=0.0)

    def test_constants_are_sane(self):
        assert math.isclose(units.BOLTZMANN, 1.380649e-23)
        assert units.TARGET_CHANNEL_SPACING == pytest.approx(20e-6)
